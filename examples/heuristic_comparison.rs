//! Compare all four heuristics, unfiltered vs fully filtered, over several
//! trials — a miniature of the paper's Figures 2–6.
//!
//! ```text
//! cargo run --release --example heuristic_comparison
//! ```

use ecds::prelude::*;

const TRIALS: u64 = 8;

fn main() {
    let scenario = Scenario::small_for_tests(1353);
    let traces: Vec<WorkloadTrace> = (0..TRIALS).map(|t| scenario.trace(t)).collect();

    let mut series = Vec::new();
    let mut table = MarkdownTable::new(&["configuration", "median missed", "mean missed"]);

    for kind in HeuristicKind::ALL {
        for variant in [FilterVariant::None, FilterVariant::EnergyAndRobustness] {
            let missed: Vec<f64> = traces
                .iter()
                .enumerate()
                .map(|(trial, trace)| {
                    let mut mapper = build_scheduler(kind, variant, &scenario, trial as u64);
                    Simulation::new(&scenario, trace)
                        .run(mapper.as_mut())
                        .missed() as f64
                })
                .collect();
            let stats = BoxStats::from_samples(&missed).expect("non-empty");
            table.push_row(vec![
                format!("{}/{}", kind.label(), variant.label()),
                format!("{:.1}", stats.median),
                format!("{:.1}", stats.mean),
            ]);
            series.push((format!("{}/{}", kind.label(), variant.label()), stats));
        }
    }

    println!(
        "Missed deadlines over {TRIALS} trials ({} tasks each):\n",
        scenario.workload().window
    );
    println!("{}", render_boxplots(&series, 56));
    println!("{}", table.render());
    println!(
        "The paper's headline: filtering improves every heuristic by >=13%,\n\
         and even Random with filters lands within a few percent of the best\n\
         heuristic — the filters, not the heuristic, drive performance."
    );
}
