//! Quickstart: run one simulated trial with the paper's best-performing
//! configuration (Lightest Load + energy and robustness filters) and
//! inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ecds::prelude::*;

fn main() {
    // A scenario bundles everything held constant across trials: the
    // heterogeneous cluster, the execution-time pmf table, and the energy
    // budget ζ_max = t_avg × p_avg × window. Everything derives from one
    // master seed.
    let scenario = Scenario::small_for_tests(42);
    println!(
        "cluster: {} nodes, {} cores; energy budget {:.3e}",
        scenario.cluster().num_nodes(),
        scenario.cluster().total_cores(),
        scenario.energy_budget().unwrap(),
    );

    // A trace is one trial's dynamically-arriving task window.
    let trace = scenario.trace(0);
    println!(
        "trace: {} tasks arriving over {:.0} time units",
        trace.len(),
        trace.last_arrival()
    );

    // The paper's winner: LL heuristic behind both filters.
    let mut mapper = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::EnergyAndRobustness,
        &scenario,
        0,
    );
    let result = Simulation::new(&scenario, &trace).run(mapper.as_mut());

    println!(
        "\ncompleted on time within energy: {} / {}",
        result.completed(),
        result.window()
    );
    println!("missed deadlines:               {}", result.missed());
    println!("discarded by filters:           {}", result.discarded());
    println!(
        "energy consumed:                {:.3e} (budget {:.3e}, exhausted: {})",
        result.total_energy(),
        scenario.energy_budget().unwrap(),
        match result.exhausted_at() {
            Some(t) => format!("at t={t:.0}"),
            None => "never".to_string(),
        }
    );

    println!("\nfirst five task outcomes:");
    for outcome in result.outcomes().iter().take(5) {
        let (core, pstate) = outcome.assignment.expect("assigned");
        let core_id = scenario.cluster().core(core);
        println!(
            "  {:>6}  arrival {:7.1}  deadline {:7.1}  -> core {core_id} in {pstate}, \
             finished {:7.1} ({})",
            format!("{}", outcome.task),
            outcome.arrival,
            outcome.deadline,
            outcome.completion.unwrap_or(f64::NAN),
            if outcome.counted(result.exhausted_at()) {
                "on time"
            } else {
                "missed"
            },
        );
    }
}
