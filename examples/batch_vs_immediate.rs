//! Immediate-mode mapping (the paper's model) vs batch-mode rescheduling
//! (its future-work extension): same cluster, same traces, same energy
//! budget — different commitment discipline. Also prints the exact
//! busy/idle energy decomposition for each.
//!
//! ```text
//! cargo run --release --example batch_vs_immediate
//! ```

use ecds::ext::{run_batch, BatchEdf, BatchMaxRho};
use ecds::prelude::*;

const TRIALS: u64 = 6;

fn main() {
    let scenario = Scenario::small_for_tests(1353);
    let mut table = MarkdownTable::new(&[
        "configuration",
        "mean missed",
        "mean energy",
        "busy fraction",
        "utilization",
    ]);

    type Runner<'a> = Box<dyn Fn(&WorkloadTrace, u64) -> TrialResult + 'a>;
    let configs: Vec<(&str, Runner<'_>)> = vec![
        (
            "immediate LL/en+rob (paper)",
            Box::new(|trace: &WorkloadTrace, trial: u64| {
                let mut m = build_scheduler(
                    HeuristicKind::LightestLoad,
                    FilterVariant::EnergyAndRobustness,
                    &scenario,
                    trial,
                );
                Simulation::new(&scenario, trace).run(m.as_mut())
            }),
        ),
        (
            "batch max-rho (reschedule)",
            Box::new(|trace: &WorkloadTrace, _| {
                run_batch(&scenario, trace, &mut BatchMaxRho::default())
            }),
        ),
        (
            "batch EDF (reschedule)",
            Box::new(|trace: &WorkloadTrace, _| run_batch(&scenario, trace, &mut BatchEdf)),
        ),
    ];

    for (name, run) in &configs {
        let mut missed = 0.0;
        let mut energy = 0.0;
        let mut busy_frac = 0.0;
        let mut util = 0.0;
        for trial in 0..TRIALS {
            let trace = scenario.trace(trial);
            let result = run(&trace, trial);
            let breakdown = EnergyBreakdown::compute(&scenario, &result);
            missed += result.missed() as f64;
            energy += result.total_energy();
            busy_frac += breakdown.busy_fraction();
            util += breakdown.utilization();
        }
        let n = TRIALS as f64;
        table.push_row(vec![
            name.to_string(),
            format!("{:.1}", missed / n),
            format!("{:.3e}", energy / n),
            format!("{:.2}", busy_frac / n),
            format!("{:.2}", util / n),
        ]);
    }

    println!(
        "Immediate vs batch commitment over {TRIALS} trials of {} tasks:\n",
        scenario.workload().window
    );
    println!("{}", table.render());
    println!(
        "Batch mode defers commitment until a core is free, so it never\n\
         strands a task behind a slow queue — at the cost of leaving cores\n\
         idle when the bag is empty. The busy-fraction column shows where\n\
         each discipline actually spends the budget."
    );
}
