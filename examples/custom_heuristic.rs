//! Extending the library: write your own heuristic and your own filter,
//! and run them through the same simulation harness as the paper's.
//!
//! The custom heuristic below is **MaxRho** — assign each task where its
//! probability of finishing on time is highest. Section IV-C of the paper
//! proves this is the immediate-mode-optimal choice for maximizing the
//! robustness metric ρ(t_l); it ignores energy entirely, which is exactly
//! why it needs the energy filter.
//!
//! ```text
//! cargo run --release --example custom_heuristic
//! ```

use ecds::prelude::*;
use ecds_workload::Task;

/// Assigns the task to the candidate with the highest robustness value
/// ρ(i,j,k,π,t_l,z) — maximizing the expected number of on-time
/// completions one task at a time.
struct MaxRho;

impl Heuristic for MaxRho {
    fn name(&self) -> &'static str {
        "MaxRho"
    }

    fn choose(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            // Tie-break toward the cheaper assignment: deadlines are often
            // comfortably met by several P-states (all with rho ~= 1), and
            // the cheaper one banks energy.
            .max_by(|(_, a), (_, b)| {
                a.est
                    .rho
                    .total_cmp(&b.est.rho)
                    .then(b.est.eec.total_cmp(&a.est.eec))
            })
            .map(|(idx, _)| idx)
    }
}

/// A custom filter: cap the *queue depth* of the target core, forcing
/// spatial load balancing regardless of the heuristic.
struct MaxDepthFilter {
    max_depth: usize,
}

impl Filter for MaxDepthFilter {
    fn name(&self) -> &'static str {
        "depth"
    }

    fn retain(
        &self,
        _task: &Task,
        view: &SystemView<'_>,
        _ctx: &FilterCtx,
        candidates: &mut Vec<EvaluatedCandidate>,
    ) {
        candidates.retain(|c| view.core_state(c.core).depth() <= self.max_depth);
    }
}

fn main() {
    let scenario = Scenario::small_for_tests(7);
    let budget = scenario.energy_budget().unwrap();
    let mut table = MarkdownTable::new(&["configuration", "missed", "energy used"]);

    let configs: Vec<(&str, Box<Scheduler>)> = vec![
        (
            "MaxRho/none",
            Box::new(Scheduler::new(
                Box::new(MaxRho),
                vec![],
                budget,
                ReductionPolicy::default(),
            )),
        ),
        (
            "MaxRho/en+depth",
            Box::new(Scheduler::new(
                Box::new(MaxRho),
                vec![
                    Box::new(EnergyFilter::paper()),
                    Box::new(MaxDepthFilter { max_depth: 3 }),
                ],
                budget,
                ReductionPolicy::default(),
            )),
        ),
        (
            "LL/en+rob (paper's best)",
            build_scheduler(
                HeuristicKind::LightestLoad,
                FilterVariant::EnergyAndRobustness,
                &scenario,
                0,
            ),
        ),
    ];

    let trace = scenario.trace(0);
    for (name, mut scheduler) in configs {
        let result = Simulation::new(&scenario, &trace).run(scheduler.as_mut());
        table.push_row(vec![
            name.to_string(),
            format!("{}", result.missed()),
            format!("{:.3e}", result.total_energy()),
        ]);
    }

    println!(
        "Custom heuristic + custom filter vs the paper's best, one trial of {} tasks:\n",
        trace.len()
    );
    println!("{}", table.render());
    println!(
        "Anything implementing the `Heuristic` or `Filter` trait plugs into\n\
         the same Scheduler/Simulation harness the paper's figures use."
    );
}
