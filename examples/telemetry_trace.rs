//! Watch a trial unfold: queue depth, busy cores, and cluster power drawn
//! as sparklines over the trial timeline — the burst/lull/burst shape of
//! the paper's workload made visible.
//!
//! ```text
//! cargo run --release --example telemetry_trace
//! ```

use ecds::prelude::*;
use ecds::stats::sparkline_row;
use ecds_sim::Telemetry;

const BUCKETS: usize = 60;

fn main() {
    let scenario = Scenario::small_for_tests(1353);
    let trace = scenario.trace(0);

    for (name, variant) in [
        ("MECT/none   ", FilterVariant::None),
        ("MECT/en+rob ", FilterVariant::EnergyAndRobustness),
    ] {
        let mut mapper = build_scheduler(HeuristicKind::Mect, variant, &scenario, 0);
        let result = Simulation::new(&scenario, &trace).run(mapper.as_mut());
        let telemetry = result.telemetry();

        let depth = Telemetry::resample(&telemetry.queue_depth, BUCKETS);
        let busy: Vec<(f64, f64)> = telemetry
            .busy_cores
            .iter()
            .map(|&(t, n)| (t, n as f64))
            .collect();
        let busy = Telemetry::resample(&busy, BUCKETS);

        println!(
            "\n=== {name} — missed {} of {}, energy {:.3e}{} ===",
            result.missed(),
            result.window(),
            result.total_energy(),
            match result.exhausted_at() {
                Some(t) => format!(", budget exhausted at t={t:.0}"),
                None => String::new(),
            }
        );
        let power = Telemetry::resample(&telemetry.power, BUCKETS);
        println!("{}", sparkline_row("avg queue depth", &depth, 16));
        println!("{}", sparkline_row("busy cores", &busy, 16));
        println!("{}", sparkline_row("cluster watts", &power, 16));
        println!(
            "{:<16} (time axis: 0 .. {:.0}, {} buckets)",
            "",
            result.makespan(),
            BUCKETS
        );
        if let Some(rate) = telemetry.mapper.prefix_cache_hit_rate() {
            println!(
                "{:<16} prefix cache: {:.1}% hit rate ({} hits / {} lookups)",
                "",
                rate * 100.0,
                telemetry.mapper.prefix_cache_hits(),
                telemetry.mapper.prefix_cache_lookups()
            );
        }
        if telemetry.mapper.fused_kernel_calls > 0 {
            println!(
                "{:<16} fused kernel: {} allocation-free convolutions this trial",
                "", telemetry.mapper.fused_kernel_calls
            );
        }
        if let Some(per_event) = telemetry.mapper.classes_per_event() {
            println!(
                "{:<16} candidate dedup: {:.1} classes per mapping event, \
                 {} duplicate evaluations skipped",
                "", per_event, telemetry.mapper.dedup_skipped_evaluations
            );
        }
    }

    println!(
        "\nThe two bursts bookending the lull are visible in both series;\n\
         the filtered variant holds lower queue depths through the second\n\
         burst because it still has budget left to spend."
    );
}
