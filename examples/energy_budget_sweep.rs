//! Sweep the energy budget from starvation to abundance and watch the
//! constraint stop binding: with a large enough budget the filters stop
//! mattering and unfiltered MECT catches up.
//!
//! ```text
//! cargo run --release --example energy_budget_sweep
//! ```

use ecds::prelude::*;

const TRIALS: u64 = 4;

fn main() {
    let base = Scenario::small_for_tests(1353);
    let mut table = MarkdownTable::new(&[
        "budget factor",
        "MECT/none missed",
        "MECT/en+rob missed",
        "budget exhausted (none)",
    ]);

    for factor in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0] {
        let scenario = base.with_budget_factor(factor);
        let mut none_missed = 0.0;
        let mut filt_missed = 0.0;
        let mut exhausted = 0usize;
        for trial in 0..TRIALS {
            let trace = scenario.trace(trial);
            let mut none =
                build_scheduler(HeuristicKind::Mect, FilterVariant::None, &scenario, trial);
            let none_result = Simulation::new(&scenario, &trace).run(none.as_mut());
            none_missed += none_result.missed() as f64;
            exhausted += usize::from(none_result.exhausted_at().is_some());
            let mut filt = build_scheduler(
                HeuristicKind::Mect,
                FilterVariant::EnergyAndRobustness,
                &scenario,
                trial,
            );
            filt_missed += Simulation::new(&scenario, &trace)
                .run(filt.as_mut())
                .missed() as f64;
        }
        table.push_row(vec![
            format!("{factor:.2}"),
            format!("{:.1}", none_missed / TRIALS as f64),
            format!("{:.1}", filt_missed / TRIALS as f64),
            format!("{exhausted}/{TRIALS} trials"),
        ]);
    }

    println!(
        "Mean missed deadlines (of {}) over {TRIALS} trials vs energy budget:\n",
        base.workload().window
    );
    println!("{}", table.render());
    println!(
        "Expected shape: at tiny budgets everything misses (the cutoff\n\
         dominates); at the paper's budget (factor 1.0) filtering wins; with\n\
         abundant energy the constraint stops binding and the gap closes —\n\
         the crossover is where energy-awareness stops being worth paying\n\
         execution time for."
    );
}
