//! How does filtering behave as the system moves from undersubscribed to
//! heavily oversubscribed? Sweeps a constant arrival rate across the
//! paper's λ_slow → λ_fast range (the paper's future-work question about
//! "a variety of arrival rates").
//!
//! ```text
//! cargo run --release --example oversubscription_study
//! ```

use ecds::prelude::*;

const TRIALS: u64 = 4;

fn main() {
    let window = 60;
    let mut table = MarkdownTable::new(&[
        "arrival rate",
        "x lambda_eq",
        "MECT/none missed",
        "LL/en+rob missed",
    ]);

    // λ_eq = 1/28 is the paper's equilibrium; sweep from half to 4x.
    let lambda_eq = 1.0 / 28.0;
    for factor in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let rate = lambda_eq * factor;
        let mut workload = WorkloadConfig::small_for_tests();
        workload.window = window;
        workload.arrivals = BurstPattern::constant(window, rate);
        let scenario = Scenario::with_configs(
            1353,
            ecds::cluster::ClusterGenConfig::small_for_tests(),
            workload,
        );

        let mean_missed = |kind: HeuristicKind, variant: FilterVariant| -> f64 {
            (0..TRIALS)
                .map(|trial| {
                    let trace = scenario.trace(trial);
                    let mut mapper = build_scheduler(kind, variant, &scenario, trial);
                    Simulation::new(&scenario, &trace)
                        .run(mapper.as_mut())
                        .missed() as f64
                })
                .sum::<f64>()
                / TRIALS as f64
        };

        table.push_row(vec![
            format!("{rate:.4}"),
            format!("{factor:.1}"),
            format!(
                "{:.1}",
                mean_missed(HeuristicKind::Mect, FilterVariant::None)
            ),
            format!(
                "{:.1}",
                mean_missed(
                    HeuristicKind::LightestLoad,
                    FilterVariant::EnergyAndRobustness
                )
            ),
        ]);
    }

    println!("Mean missed deadlines (of {window}) over {TRIALS} trials, constant arrival rates:\n");
    println!("{}", table.render());
    println!(
        "Expected shape: both configurations degrade as the arrival rate\n\
         passes the cluster's service capacity; the filtered LL degrades\n\
         more gracefully because it banks energy during slack periods."
    );
}
