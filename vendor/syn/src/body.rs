//! Statement-level parsing of function bodies (see DESIGN.md §14).
//!
//! The item-level parser in the crate root keeps function bodies as raw
//! token streams; this module turns such a stream into a [`Block`] of
//! spanned statements with structured control flow — `if`/`match`/
//! `loop`/`while`/`for`/`return`/`break`/`continue`, `let`-`else`, and
//! `?` occurrence counts — which is exactly what `ecds-lint` needs to
//! build per-function control-flow graphs.
//!
//! The grammar modeled here is deliberately partial. Anything that is
//! not control flow is kept as an opaque [`ExprLeaf`] token run, so the
//! parser is total over well-formed bodies and degrades to leaves rather
//! than guessing. Known approximations (documented in DESIGN.md §14):
//!
//! - A structured expression embedded mid-leaf (`1 + if c { a } else
//!   { b }`) stays opaque; its branches are not split into CFG nodes.
//! - `?` operators are counted anywhere inside a leaf, including inside
//!   closure bodies, so closures can introduce spurious early-exit
//!   edges (an over-approximation that errs toward flagging).
//! - Nested items inside bodies are kept opaque and contribute no
//!   control flow.
//!
//! Inputs the parser cannot shape (a `match` arm without `=>`, an `if`
//! without a brace body) produce an [`Error`] so the caller can count
//! the body as skipped instead of silently certifying it.

use proc_macro2::{Delimiter, Spacing, Span, TokenTree};

use crate::{Error, Result};

/// A `{ ... }` block: a sequence of statements.
#[derive(Debug, Clone)]
pub struct Block {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
    /// The block's source location (first statement, or the enclosing
    /// span for an empty block).
    pub span: Span,
}

/// One statement in a block.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A `let` binding, possibly `let ... else { ... }`.
    Let(StmtLet),
    /// An expression statement or trailing expression.
    Expr(StmtExpr),
    /// A nested item (`fn`, `struct`, `use`, ...), kept opaque.
    Item(StmtItem),
}

impl Stmt {
    /// The statement's source location.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let(s) => s.span,
            Stmt::Expr(s) => s.expr.span(),
            Stmt::Item(s) => s.span,
        }
    }
}

/// A `let` statement. Pattern and type tokens are discarded (they
/// cannot contain expressions relevant to flow analysis); the
/// initializer is parsed as an expression.
#[derive(Debug, Clone)]
pub struct StmtLet {
    /// The initializer, if present (`let x;` has none).
    pub init: Option<Box<Expr>>,
    /// The diverging `else { ... }` block of a `let`-`else`.
    pub else_block: Option<Block>,
    /// Source location of the `let` keyword.
    pub span: Span,
}

/// An expression statement.
#[derive(Debug, Clone)]
pub struct StmtExpr {
    /// The expression.
    pub expr: Expr,
    /// Whether a `;` followed (a trailing expression has none).
    pub semi: bool,
}

/// A nested item inside a body, kept as opaque tokens.
#[derive(Debug, Clone)]
pub struct StmtItem {
    /// Every token of the item.
    pub tokens: Vec<TokenTree>,
    /// Source location of the item's first token.
    pub span: Span,
}

/// An expression, modeled only as far as control flow requires.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `if cond { ... } else ...`, including `if let`.
    If(ExprIf),
    /// `match scrutinee { arms }`.
    Match(ExprMatch),
    /// `while cond { ... }`, including `while let`.
    While(ExprWhile),
    /// `loop { ... }`.
    Loop(ExprLoop),
    /// `for pat in iter { ... }`.
    ForLoop(ExprFor),
    /// A plain, `unsafe`, or labeled block used as an expression.
    Block(ExprBlock),
    /// `return expr?`.
    Return(ExprReturn),
    /// `break 'label expr?`.
    Break(ExprBreak),
    /// `continue 'label?`.
    Continue(ExprContinue),
    /// Any other expression, kept as an opaque token run.
    Leaf(ExprLeaf),
}

impl Expr {
    /// The expression's source location.
    pub fn span(&self) -> Span {
        match self {
            Expr::If(e) => e.span,
            Expr::Match(e) => e.span,
            Expr::While(e) => e.span,
            Expr::Loop(e) => e.span,
            Expr::ForLoop(e) => e.span,
            Expr::Block(e) => e.span,
            Expr::Return(e) => e.span,
            Expr::Break(e) => e.span,
            Expr::Continue(e) => e.span,
            Expr::Leaf(e) => e.span,
        }
    }
}

/// An `if` expression.
#[derive(Debug, Clone)]
pub struct ExprIf {
    /// Condition tokens (for `if let`, the full `let pat = scrutinee`).
    pub cond: ExprLeaf,
    /// The `then` block.
    pub then_branch: Block,
    /// `else` branch: another [`Expr::If`] or an [`Expr::Block`].
    pub else_branch: Option<Box<Expr>>,
    /// Source location of the `if` keyword.
    pub span: Span,
}

/// A `match` expression.
#[derive(Debug, Clone)]
pub struct ExprMatch {
    /// The scrutinee tokens.
    pub scrutinee: ExprLeaf,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
    /// Source location of the `match` keyword.
    pub span: Span,
}

/// One `pat (if guard)? => body` arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Pattern and guard tokens before `=>`, kept together.
    pub prelude: ExprLeaf,
    /// The arm body.
    pub body: Box<Expr>,
    /// Source location of the arm's first token.
    pub span: Span,
}

/// A `while` loop.
#[derive(Debug, Clone)]
pub struct ExprWhile {
    /// Condition tokens (for `while let`, the full binding).
    pub cond: ExprLeaf,
    /// The loop body.
    pub body: Block,
    /// The loop label, without the leading `'`.
    pub label: Option<String>,
    /// Source location of the `while` keyword.
    pub span: Span,
}

/// A `loop`.
#[derive(Debug, Clone)]
pub struct ExprLoop {
    /// The loop body.
    pub body: Block,
    /// The loop label, without the leading `'`.
    pub label: Option<String>,
    /// Source location of the `loop` keyword.
    pub span: Span,
}

/// A `for` loop.
#[derive(Debug, Clone)]
pub struct ExprFor {
    /// The iterator expression tokens after `in`.
    pub iter: ExprLeaf,
    /// The loop body.
    pub body: Block,
    /// The loop label, without the leading `'`.
    pub label: Option<String>,
    /// Source location of the `for` keyword.
    pub span: Span,
}

/// A block expression (`{ ... }`, `unsafe { ... }`, `'a: { ... }`).
#[derive(Debug, Clone)]
pub struct ExprBlock {
    /// The block.
    pub block: Block,
    /// The block label, without the leading `'`.
    pub label: Option<String>,
    /// Source location of the block's first token.
    pub span: Span,
}

/// A `return` expression.
#[derive(Debug, Clone)]
pub struct ExprReturn {
    /// The returned value, if any.
    pub value: Option<Box<Expr>>,
    /// Source location of the `return` keyword.
    pub span: Span,
}

/// A `break` expression.
#[derive(Debug, Clone)]
pub struct ExprBreak {
    /// The target label, without the leading `'`.
    pub label: Option<String>,
    /// The break value, if any.
    pub value: Option<Box<Expr>>,
    /// Source location of the `break` keyword.
    pub span: Span,
}

/// A `continue` expression.
#[derive(Debug, Clone)]
pub struct ExprContinue {
    /// The target label, without the leading `'`.
    pub label: Option<String>,
    /// Source location of the `continue` keyword.
    pub span: Span,
}

/// An opaque expression: a token run with its `?` occurrences counted.
#[derive(Debug, Clone)]
pub struct ExprLeaf {
    /// The raw tokens, groups included.
    pub tokens: Vec<TokenTree>,
    /// How many `?` operators occur at any nesting depth. Each adds a
    /// potential early function exit.
    pub tries: usize,
    /// Source location of the first token (or the enclosing context for
    /// an empty run).
    pub span: Span,
}

impl ExprLeaf {
    fn from_tokens(tokens: Vec<TokenTree>, fallback: Span) -> Self {
        let span = tokens.first().map(|t| t.span()).unwrap_or(fallback);
        let tries = count_tries(&tokens);
        ExprLeaf {
            tokens,
            tries,
            span,
        }
    }
}

/// Counts `?` puncts at every nesting depth.
fn count_tries(tokens: &[TokenTree]) -> usize {
    tokens
        .iter()
        .map(|t| match t {
            TokenTree::Punct(p) if p.as_char() == '?' => 1,
            TokenTree::Group(g) => count_tries(g.tokens()),
            _ => 0,
        })
        .sum()
}

/// Parses the token stream of a function body (the contents of its
/// brace group) into a [`Block`]. `span` anchors empty blocks and
/// end-of-input errors; the function signature's span works well.
pub fn parse_block(tokens: &[TokenTree], span: Span) -> Result<Block> {
    let mut p = BodyParser { tokens, pos: 0 };
    p.parse_stmts(span)
}

/// Item-introducing keywords that start a nested item statement.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "use",
    "static",
    "type",
    "union",
    "macro_rules",
];

struct BodyParser<'a> {
    tokens: &'a [TokenTree],
    pos: usize,
}

impl<'a> BodyParser<'a> {
    fn peek(&self) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn here_span(&self, fallback: Span) -> Span {
        self.peek().map(|t| t.span()).unwrap_or(fallback)
    }

    fn error(&self, message: impl Into<String>, fallback: Span) -> Error {
        Error {
            message: message.into(),
            span: self.here_span(fallback),
        }
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.as_str() == word && !i.is_raw())
    }

    fn is_ident_at(&self, offset: usize, word: &str) -> bool {
        matches!(
            self.peek_at(offset),
            Some(TokenTree::Ident(i)) if i.as_str() == word && !i.is_raw()
        )
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_brace(&self) -> bool {
        matches!(
            self.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace
        )
    }

    /// Consumes `#[...]` attribute pairs; their tokens carry no control
    /// flow and are dropped (the raw body stream still holds them for
    /// token-level rules).
    fn skip_outer_attrs(&mut self) {
        while self.is_punct('#')
            && matches!(
                self.peek_at(1),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket
            )
        {
            self.bump();
            self.bump();
        }
    }

    fn parse_stmts(&mut self, span: Span) -> Result<Block> {
        let mut stmts = Vec::new();
        let block_span = self.here_span(span);
        while self.peek().is_some() {
            if self.is_punct(';') {
                self.bump();
                continue;
            }
            self.skip_outer_attrs();
            if self.peek().is_none() {
                break;
            }
            if let Some(item) = self.try_parse_item_stmt() {
                stmts.push(Stmt::Item(item));
                continue;
            }
            if self.is_ident("let") {
                stmts.push(Stmt::Let(self.parse_let(span)?));
                continue;
            }
            let expr = self.parse_expr(false, span)?;
            let semi = if self.is_punct(';') {
                self.bump();
                true
            } else {
                false
            };
            stmts.push(Stmt::Expr(StmtExpr { expr, semi }));
        }
        let span = stmts_span(&stmts).unwrap_or(block_span);
        Ok(Block { stmts, span })
    }

    /// Recognizes a nested item at statement position and consumes it
    /// to its natural end (`;` or a brace body). Returns `None` when
    /// the tokens here are an expression instead.
    fn try_parse_item_stmt(&mut self) -> Option<StmtItem> {
        let first = self.peek()?;
        let kw = match first {
            TokenTree::Ident(i) if !i.is_raw() => i.as_str(),
            _ => return None,
        };
        let is_item = match kw {
            "pub" => true,
            "const" | "async" | "unsafe" | "extern" => {
                // Qualifier chains end in `fn` for items; `const {`,
                // `unsafe {`, and `async {` blocks are expressions.
                let mut off = 1;
                while matches!(
                    self.peek_at(off),
                    Some(TokenTree::Ident(i))
                        if matches!(i.as_str(), "const" | "async" | "unsafe" | "move" | "extern")
                ) || matches!(self.peek_at(off), Some(TokenTree::Literal(_)))
                {
                    off += 1;
                }
                self.is_ident_at(off, "fn")
                    || (kw == "const" && matches!(self.peek_at(1), Some(TokenTree::Ident(_))))
                    || (kw == "extern" && self.is_ident_at(1, "crate"))
            }
            "macro_rules" => {
                matches!(self.peek_at(1), Some(TokenTree::Punct(p)) if p.as_char() == '!')
            }
            "union" => matches!(self.peek_at(1), Some(TokenTree::Ident(_))),
            _ => ITEM_KEYWORDS.contains(&kw),
        };
        if !is_item {
            return None;
        }
        let span = first.span();
        let mut tokens = Vec::new();
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ';' => {
                    tokens.push(self.bump().expect("peeked").clone());
                    break;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    tokens.push(self.bump().expect("peeked").clone());
                    break;
                }
                _ => tokens.push(self.bump().expect("peeked").clone()),
            }
        }
        Some(StmtItem { tokens, span })
    }

    fn parse_let(&mut self, fallback: Span) -> Result<StmtLet> {
        let span = self.here_span(fallback);
        self.bump(); // `let`
                     // Pattern and optional type run to a standalone `=` (or `;` for
                     // an uninitialized binding). Multi-char operators lex with
                     // joint spacing, so a lone `=` is unambiguous.
        let mut prev_joint = false;
        loop {
            match self.peek() {
                None => {
                    return Ok(StmtLet {
                        init: None,
                        else_block: None,
                        span,
                    })
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    self.bump();
                    return Ok(StmtLet {
                        init: None,
                        else_block: None,
                        span,
                    });
                }
                Some(TokenTree::Punct(p))
                    if p.as_char() == '=' && p.spacing() == Spacing::Alone && !prev_joint =>
                {
                    self.bump();
                    break;
                }
                Some(TokenTree::Punct(p)) => {
                    prev_joint = p.spacing() == Spacing::Joint;
                    self.bump();
                }
                Some(_) => {
                    prev_joint = false;
                    self.bump();
                }
            }
        }
        let init = self.parse_expr_stop_else(span)?;
        // `let ... else { diverge }`: what remains before `;` must be
        // exactly `else` + a brace block.
        let else_block = if self.is_ident("else") {
            self.bump();
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g_span = g.span();
                    let inner = parse_block(g.tokens(), g_span)?;
                    self.bump();
                    Some(inner)
                }
                _ => return Err(self.error("expected `{` after `let ... else`", span)),
            }
        } else {
            None
        };
        if self.is_punct(';') {
            self.bump();
        }
        Ok(StmtLet {
            init: Some(Box::new(init)),
            else_block,
            span,
        })
    }

    /// Parses a let-initializer: like [`parse_expr`], but an opaque
    /// leaf also stops at a sibling-level bare `else` so `let`-`else`
    /// can be recognized by the caller.
    fn parse_expr_stop_else(&mut self, fallback: Span) -> Result<Expr> {
        if self.starts_structured() {
            self.parse_expr(false, fallback)
        } else {
            Ok(Expr::Leaf(self.parse_leaf(false, true, fallback)))
        }
    }

    fn starts_structured(&self) -> bool {
        if self.is_brace() {
            return true;
        }
        match self.peek() {
            Some(TokenTree::Ident(i)) if !i.is_raw() => matches!(
                i.as_str(),
                "if" | "match"
                    | "while"
                    | "loop"
                    | "for"
                    | "return"
                    | "break"
                    | "continue"
                    | "unsafe"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                // A label: `'name : loop/while/for/{`.
                matches!(self.peek_at(1), Some(TokenTree::Ident(_)))
                    && matches!(self.peek_at(2), Some(TokenTree::Punct(q)) if q.as_char() == ':')
            }
            _ => false,
        }
    }

    /// Parses one expression. `stop_comma` ends opaque leaves at a
    /// sibling-level `,` (match-arm position).
    fn parse_expr(&mut self, stop_comma: bool, fallback: Span) -> Result<Expr> {
        self.skip_outer_attrs();
        // Leading label.
        let mut label = None;
        if let (Some(TokenTree::Punct(q)), Some(TokenTree::Ident(name))) =
            (self.peek(), self.peek_at(1))
        {
            if q.as_char() == '\''
                && matches!(self.peek_at(2), Some(TokenTree::Punct(c)) if c.as_char() == ':')
                && (self.is_ident_at(3, "loop")
                    || self.is_ident_at(3, "while")
                    || self.is_ident_at(3, "for")
                    || matches!(
                        self.peek_at(3),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace
                    ))
            {
                label = Some(name.as_str().to_string());
                self.bump();
                self.bump();
                self.bump();
            }
        }

        if self.is_ident("if") {
            return self.parse_if(fallback);
        }
        if self.is_ident("match") {
            return self.parse_match(fallback);
        }
        if self.is_ident("while") {
            let span = self.here_span(fallback);
            self.bump();
            let cond = self.parse_cond(span)?;
            let body = self.expect_block(span)?;
            return Ok(Expr::While(ExprWhile {
                cond,
                body,
                label,
                span,
            }));
        }
        if self.is_ident("loop") {
            let span = self.here_span(fallback);
            self.bump();
            let body = self.expect_block(span)?;
            return Ok(Expr::Loop(ExprLoop { body, label, span }));
        }
        if self.is_ident("for") {
            let span = self.here_span(fallback);
            self.bump();
            // Pattern runs to the sibling-level `in` keyword.
            loop {
                match self.peek() {
                    None => return Err(self.error("`for` without `in`", span)),
                    Some(TokenTree::Ident(i)) if i.as_str() == "in" && !i.is_raw() => {
                        self.bump();
                        break;
                    }
                    _ => {
                        self.bump();
                    }
                }
            }
            let iter_tokens = self.take_until_sibling_brace(span)?;
            let iter = ExprLeaf::from_tokens(iter_tokens, span);
            let body = self.expect_block(span)?;
            return Ok(Expr::ForLoop(ExprFor {
                iter,
                body,
                label,
                span,
            }));
        }
        if self.is_ident("return") {
            let span = self.here_span(fallback);
            self.bump();
            let value = self.parse_trailing_value(stop_comma, span)?;
            return Ok(Expr::Return(ExprReturn { value, span }));
        }
        if self.is_ident("break") {
            let span = self.here_span(fallback);
            self.bump();
            let target = self.parse_label_ref();
            let value = self.parse_trailing_value(stop_comma, span)?;
            return Ok(Expr::Break(ExprBreak {
                label: target,
                value,
                span,
            }));
        }
        if self.is_ident("continue") {
            let span = self.here_span(fallback);
            self.bump();
            let target = self.parse_label_ref();
            return Ok(Expr::Continue(ExprContinue {
                label: target,
                span,
            }));
        }
        if self.is_ident("unsafe")
            && matches!(
                self.peek_at(1),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace
            )
        {
            let span = self.here_span(fallback);
            self.bump();
            let block = self.expect_block(span)?;
            return Ok(Expr::Block(ExprBlock { block, label, span }));
        }
        if self.is_brace() {
            let span = self.here_span(fallback);
            let block = self.expect_block(span)?;
            return Ok(Expr::Block(ExprBlock { block, label, span }));
        }
        Ok(Expr::Leaf(self.parse_leaf(stop_comma, false, fallback)))
    }

    fn parse_if(&mut self, fallback: Span) -> Result<Expr> {
        let span = self.here_span(fallback);
        self.bump(); // `if`
        let cond = self.parse_cond(span)?;
        let then_branch = self.expect_block(span)?;
        let else_branch = if self.is_ident("else") {
            self.bump();
            if self.is_ident("if") {
                Some(Box::new(self.parse_if(span)?))
            } else if self.is_brace() {
                let else_span = self.here_span(span);
                let block = self.expect_block(span)?;
                Some(Box::new(Expr::Block(ExprBlock {
                    block,
                    label: None,
                    span: else_span,
                })))
            } else {
                return Err(self.error("expected `if` or `{` after `else`", span));
            }
        } else {
            None
        };
        Ok(Expr::If(ExprIf {
            cond,
            then_branch,
            else_branch,
            span,
        }))
    }

    fn parse_match(&mut self, fallback: Span) -> Result<Expr> {
        let span = self.here_span(fallback);
        self.bump(); // `match`
        let scrutinee_tokens = self.take_until_sibling_brace(span)?;
        let scrutinee = ExprLeaf::from_tokens(scrutinee_tokens, span);
        let body = match self.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                self.bump();
                g
            }
            _ => return Err(self.error("expected `{` after `match` scrutinee", span)),
        };
        let mut arm_parser = BodyParser {
            tokens: body.tokens(),
            pos: 0,
        };
        let mut arms = Vec::new();
        while arm_parser.peek().is_some() {
            if arm_parser.is_punct(',') {
                arm_parser.bump();
                continue;
            }
            arm_parser.skip_outer_attrs();
            if arm_parser.peek().is_none() {
                break;
            }
            let arm_span = arm_parser.here_span(span);
            // Pattern + optional guard run to the sibling-level `=>`
            // (`=` joint, `>` following).
            let mut prelude = Vec::new();
            loop {
                match arm_parser.peek() {
                    None => {
                        return Err(arm_parser.error("match arm without `=>`", arm_span));
                    }
                    Some(TokenTree::Punct(p))
                        if p.as_char() == '=' && p.spacing() == Spacing::Joint =>
                    {
                        if matches!(
                            arm_parser.peek_at(1),
                            Some(TokenTree::Punct(q)) if q.as_char() == '>'
                        ) && !prelude_last_is_joint_punct(&prelude)
                        {
                            arm_parser.bump();
                            arm_parser.bump();
                            break;
                        }
                        prelude.push(arm_parser.bump().expect("peeked").clone());
                    }
                    Some(_) => prelude.push(arm_parser.bump().expect("peeked").clone()),
                }
            }
            let body_expr = arm_parser.parse_expr(true, arm_span)?;
            arms.push(Arm {
                prelude: ExprLeaf::from_tokens(prelude, arm_span),
                body: Box::new(body_expr),
                span: arm_span,
            });
        }
        Ok(Expr::Match(ExprMatch {
            scrutinee,
            arms,
            span,
        }))
    }

    /// Parses the condition of an `if`/`while`, which ends at the first
    /// sibling-level brace group. `if let` / `while let` patterns may
    /// themselves contain brace groups (struct patterns), so for `let`
    /// forms the pattern is first skipped up to its standalone `=`.
    fn parse_cond(&mut self, fallback: Span) -> Result<ExprLeaf> {
        let span = self.here_span(fallback);
        let mut tokens = Vec::new();
        if self.is_ident("let") {
            tokens.push(self.bump().expect("peeked").clone());
            let mut prev_joint = false;
            loop {
                match self.peek() {
                    None => return Err(self.error("unterminated `let` condition", span)),
                    Some(TokenTree::Punct(p))
                        if p.as_char() == '=' && p.spacing() == Spacing::Alone && !prev_joint =>
                    {
                        tokens.push(self.bump().expect("peeked").clone());
                        break;
                    }
                    Some(TokenTree::Punct(p)) => {
                        prev_joint = p.spacing() == Spacing::Joint;
                        tokens.push(self.bump().expect("peeked").clone());
                    }
                    Some(_) => {
                        prev_joint = false;
                        tokens.push(self.bump().expect("peeked").clone());
                    }
                }
            }
        }
        let rest = self.take_until_sibling_brace(span)?;
        tokens.extend(rest);
        Ok(ExprLeaf::from_tokens(tokens, span))
    }

    /// Consumes tokens up to (not including) the first sibling-level
    /// brace group.
    fn take_until_sibling_brace(&mut self, fallback: Span) -> Result<Vec<TokenTree>> {
        let mut tokens = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.error("expected a `{` block", fallback)),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    return Ok(tokens);
                }
                Some(_) => tokens.push(self.bump().expect("peeked").clone()),
            }
        }
    }

    fn expect_block(&mut self, fallback: Span) -> Result<Block> {
        match self.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g_span = g.span();
                let block = parse_block(g.tokens(), g_span)?;
                self.bump();
                Ok(block)
            }
            _ => Err(self.error("expected a `{` block", fallback)),
        }
    }

    /// Parses the optional value of `return`/`break`.
    fn parse_trailing_value(
        &mut self,
        stop_comma: bool,
        fallback: Span,
    ) -> Result<Option<Box<Expr>>> {
        match self.peek() {
            None => Ok(None),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(None),
            Some(TokenTree::Punct(p)) if stop_comma && p.as_char() == ',' => Ok(None),
            Some(TokenTree::Ident(i)) if i.as_str() == "else" => Ok(None),
            _ => Ok(Some(Box::new(self.parse_expr(stop_comma, fallback)?))),
        }
    }

    /// Parses a `'label` reference after `break`/`continue`.
    fn parse_label_ref(&mut self) -> Option<String> {
        if let (Some(TokenTree::Punct(q)), Some(TokenTree::Ident(name))) =
            (self.peek(), self.peek_at(1))
        {
            if q.as_char() == '\'' && q.spacing() == Spacing::Joint {
                let label = name.as_str().to_string();
                self.bump();
                self.bump();
                return Some(label);
            }
        }
        None
    }

    /// Collects an opaque expression run. Stops at a sibling-level `;`,
    /// end of input, `,` when `stop_comma`, and bare `else` when
    /// `stop_else` (let-initializer position).
    fn parse_leaf(&mut self, stop_comma: bool, stop_else: bool, fallback: Span) -> ExprLeaf {
        let span = self.here_span(fallback);
        let mut tokens = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => break,
                Some(TokenTree::Punct(p)) if stop_comma && p.as_char() == ',' => break,
                Some(TokenTree::Ident(i)) if stop_else && i.as_str() == "else" && !i.is_raw() => {
                    break;
                }
                Some(_) => tokens.push(self.bump().expect("peeked").clone()),
            }
        }
        ExprLeaf::from_tokens(tokens, span)
    }
}

fn prelude_last_is_joint_punct(prelude: &[TokenTree]) -> bool {
    // Guards against `>=`-style runs: the `=` of `>=` is Alone, so the
    // only risk is a joint punct directly before our candidate `=`,
    // e.g. the `<` of `<=`... which lexes `<`(Joint) `=`(Alone) and is
    // already excluded by the Joint requirement on `=` itself. Kept as
    // a cheap extra guard for exotic operator runs like `>>=`.
    matches!(
        prelude.last(),
        Some(TokenTree::Punct(p)) if p.spacing() == Spacing::Joint
    )
}

fn stmts_span(stmts: &[Stmt]) -> Option<Span> {
    stmts.first().map(|s| s.span())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proc_macro2::TokenStream;

    fn block_of(src: &str) -> Block {
        let stream: TokenStream = src.parse().expect("lex");
        parse_block(stream.tokens(), Span::call_site()).expect("parse")
    }

    #[test]
    fn flat_statements_parse_as_leaves() {
        let b = block_of("self.epoch += 1; let x = f(2); x");
        assert_eq!(b.stmts.len(), 3);
        assert!(matches!(&b.stmts[0], Stmt::Expr(e) if e.semi));
        assert!(matches!(&b.stmts[1], Stmt::Let(l) if l.init.is_some()));
        assert!(matches!(&b.stmts[2], Stmt::Expr(e) if !e.semi));
    }

    #[test]
    fn if_else_chains_parse_structured() {
        let b = block_of("if a { f(); } else if b { g(); } else { h(); }");
        let Stmt::Expr(s) = &b.stmts[0] else {
            panic!("expected expr stmt")
        };
        let Expr::If(i) = &s.expr else {
            panic!("expected if")
        };
        assert_eq!(i.then_branch.stmts.len(), 1);
        let Some(els) = &i.else_branch else {
            panic!("expected else")
        };
        let Expr::If(i2) = els.as_ref() else {
            panic!("expected else-if")
        };
        assert!(matches!(i2.else_branch.as_deref(), Some(Expr::Block(_))));
    }

    #[test]
    fn if_let_with_struct_pattern_finds_the_body() {
        let b = block_of("if let Point { x, .. } = p { use_x(x); }");
        let Stmt::Expr(s) = &b.stmts[0] else {
            panic!("expected expr stmt")
        };
        let Expr::If(i) = &s.expr else {
            panic!("expected if")
        };
        assert_eq!(i.then_branch.stmts.len(), 1);
        assert!(i
            .cond
            .tokens
            .iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.as_str() == "let")));
    }

    #[test]
    fn match_arms_split_at_fat_arrows() {
        let b =
            block_of("match x { Some(v) if v >= 3 => use_it(v), None => return Err(e), _ => {} }");
        let Stmt::Expr(s) = &b.stmts[0] else {
            panic!("expected expr stmt")
        };
        let Expr::Match(m) = &s.expr else {
            panic!("expected match")
        };
        assert_eq!(m.arms.len(), 3);
        assert!(matches!(m.arms[1].body.as_ref(), Expr::Return(_)));
        assert!(matches!(m.arms[2].body.as_ref(), Expr::Block(_)));
    }

    #[test]
    fn loops_breaks_and_labels_parse() {
        let b = block_of(
            "'outer: loop { while cond() { break 'outer; } for x in xs { continue; } break; }",
        );
        let Stmt::Expr(s) = &b.stmts[0] else {
            panic!("expected expr stmt")
        };
        let Expr::Loop(l) = &s.expr else {
            panic!("expected loop")
        };
        assert_eq!(l.label.as_deref(), Some("outer"));
        let Stmt::Expr(w) = &l.body.stmts[0] else {
            panic!("expected while")
        };
        let Expr::While(w) = &w.expr else {
            panic!("expected while")
        };
        let Stmt::Expr(brk) = &w.body.stmts[0] else {
            panic!("expected break")
        };
        let Expr::Break(brk) = &brk.expr else {
            panic!("expected break")
        };
        assert_eq!(brk.label.as_deref(), Some("outer"));
    }

    #[test]
    fn question_marks_are_counted_per_leaf() {
        let b = block_of("let v = parse(input)?.finish()?; g(v)");
        let Stmt::Let(l) = &b.stmts[0] else {
            panic!("expected let")
        };
        let Some(init) = &l.init else {
            panic!("expected init")
        };
        let Expr::Leaf(leaf) = init.as_ref() else {
            panic!("expected leaf")
        };
        assert_eq!(leaf.tries, 2);
    }

    #[test]
    fn let_else_records_the_diverging_block() {
        let b = block_of("let Some(x) = opt else { return Err(e); }; use_it(x);");
        let Stmt::Let(l) = &b.stmts[0] else {
            panic!("expected let")
        };
        assert!(l.init.is_some());
        let Some(else_block) = &l.else_block else {
            panic!("expected let-else block")
        };
        assert_eq!(else_block.stmts.len(), 1);
    }

    #[test]
    fn let_with_if_initializer_keeps_else_with_the_if() {
        let b = block_of("let x = if c { 1 } else { 2 }; use_it(x);");
        assert_eq!(b.stmts.len(), 2);
        let Stmt::Let(l) = &b.stmts[0] else {
            panic!("expected let")
        };
        assert!(l.else_block.is_none());
        assert!(matches!(l.init.as_deref(), Some(Expr::If(_))));
    }

    #[test]
    fn nested_items_stay_opaque() {
        let b = block_of("fn helper(x: u32) -> u32 { x + 1 } helper(2);");
        assert_eq!(b.stmts.len(), 2);
        assert!(matches!(&b.stmts[0], Stmt::Item(_)));
    }

    #[test]
    fn spans_anchor_statements_to_source_lines() {
        let src = "first();\nif c {\n    second();\n}\n";
        let stream: TokenStream = src.parse().expect("lex");
        let b = parse_block(stream.tokens(), Span::call_site()).expect("parse");
        assert_eq!(b.stmts[0].span().start().line, 1);
        assert_eq!(b.stmts[1].span().start().line, 2);
    }

    #[test]
    fn malformed_control_flow_is_an_error_not_a_panic() {
        let stream: TokenStream = "if cond".parse().expect("lex");
        assert!(parse_block(stream.tokens(), Span::call_site()).is_err());
        let stream: TokenStream = "match x".parse().expect("lex");
        assert!(parse_block(stream.tokens(), Span::call_site()).is_err());
    }
}
