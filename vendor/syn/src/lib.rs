//! Offline stand-in for the `syn` crate (see DESIGN.md §6, §9).
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the external `syn` dependency is replaced by this vendored subset: an
//! **item-level** Rust parser over the vendored `proc-macro2` token trees.
//! It recognizes exactly the structure the `ecds-lint` static-analysis pass
//! needs to enforce its rules:
//!
//! - [`parse_file`] → [`File`] with a recursive list of [`Item`]s;
//! - functions ([`ItemFn`]) with outer attributes, visibility, a parsed
//!   receiver (`&mut self` detection for the epoch rule), and the body kept
//!   as a raw token stream for rule scanning;
//! - impl blocks ([`ItemImpl`]) with the implemented trait (if any), the
//!   base identifier of the self type, and recursively parsed members;
//! - modules ([`ItemMod`]) with recursively parsed inline content, so
//!   `#[cfg(test)] mod tests { ... }` regions can be classified;
//! - everything else ([`ItemVerbatim`]): structs, enums, traits, consts,
//!   macros — kept as spanned token streams so token-level rules still see
//!   their contents.
//!
//! Expression-level parsing, generics modeling, and the `parse_quote!` /
//! visitor machinery of the real crate are intentionally absent: the lint
//! rules operate on token patterns with item context, which this subset
//! provides. A file that fails to parse yields an [`Error`] so the linter
//! can refuse to certify it rather than silently passing.

#![warn(missing_docs)]

pub mod body;

use std::fmt;

use proc_macro2::{Delimiter, Spacing, Span, TokenStream, TokenTree};

/// A parse failure, with the source position where it occurred.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    span: Span,
}

impl Error {
    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where parsing failed.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.span.start().line,
            self.span.start().column,
            self.message
        )
    }
}

impl std::error::Error for Error {}

/// Convenience alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// An outer (`#[...]`) or inner (`#![...]`) attribute.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// The attribute path as written (`cfg`, `derive`, `allow`,
    /// `cfg_attr`, ...). Multi-segment paths join with `::`.
    pub path: String,
    /// The tokens following the path (usually one parenthesized group or
    /// `= value` tokens); empty for bare attributes like `#[test]`.
    pub tokens: TokenStream,
    /// Whether this was an inner attribute (`#![...]`).
    pub inner: bool,
    /// The attribute's source location.
    pub span: Span,
}

impl Attribute {
    /// Whether any token inside the attribute arguments equals `word` —
    /// e.g. `attr.path == "cfg" && attr.contains_word("test")` detects
    /// `#[cfg(test)]`, `#[cfg(all(test, unix))]`, etc.
    pub fn contains_word(&self, word: &str) -> bool {
        fn walk(tokens: &[TokenTree], word: &str) -> bool {
            tokens.iter().any(|t| match t {
                TokenTree::Ident(i) => i.as_str() == word,
                TokenTree::Group(g) => walk(g.tokens(), word),
                _ => false,
            })
        }
        walk(self.tokens.tokens(), word)
    }
}

/// Item visibility: only the public/private distinction is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub`, `pub(crate)`, `pub(super)`, `pub(in ...)`.
    Public,
    /// No visibility qualifier.
    Inherited,
}

/// The self parameter of a method, when present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receiver {
    /// `&self` / `&mut self` (as opposed to by-value `self`).
    pub reference: bool,
    /// `&mut self` or `mut self`.
    pub mutable: bool,
}

/// A function signature: name, receiver, and raw input/output tokens.
#[derive(Debug, Clone)]
pub struct Signature {
    /// The function name.
    pub ident: String,
    /// The self parameter, if this is a method.
    pub receiver: Option<Receiver>,
    /// The parenthesized argument tokens (including the receiver).
    pub inputs: TokenStream,
    /// The tokens after `->`, empty for `()` returns.
    pub output: TokenStream,
    /// The signature's source location (at the `fn` keyword).
    pub span: Span,
}

/// A function item (free function or impl/trait method).
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// `pub` or inherited.
    pub vis: Visibility,
    /// Name, receiver, inputs, output.
    pub sig: Signature,
    /// The body tokens (contents of the brace group), or `None` for
    /// bodyless trait-method declarations.
    pub body: Option<TokenStream>,
    /// The item's source location.
    pub span: Span,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// `Some(path)` for trait impls (`impl Trait for Type`), rendered as
    /// the trait path's display string.
    pub trait_path: Option<String>,
    /// The base identifier of the self type: `CoreState` for
    /// `impl<'a> ecds_sim::CoreState`, ignoring generics.
    pub self_ty: String,
    /// The impl members, recursively parsed (methods become
    /// [`Item::Fn`]).
    pub items: Vec<Item>,
    /// The item's source location.
    pub span: Span,
}

/// A `mod` item.
#[derive(Debug, Clone)]
pub struct ItemMod {
    /// Outer attributes (where `#[cfg(test)]` lives).
    pub attrs: Vec<Attribute>,
    /// The module name.
    pub ident: String,
    /// Inline content, recursively parsed; `None` for `mod name;`.
    pub content: Option<Vec<Item>>,
    /// The item's source location.
    pub span: Span,
}

/// A `use` declaration, tree kept as raw tokens.
#[derive(Debug, Clone)]
pub struct ItemUse {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The tokens between `use` and `;`.
    pub tree: TokenStream,
    /// The item's source location.
    pub span: Span,
}

/// Any item this subset does not model structurally (structs, enums,
/// traits, consts, statics, type aliases, macros). The tokens are kept so
/// token-level rules still scan their contents.
#[derive(Debug, Clone)]
pub struct ItemVerbatim {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The leading keyword (`struct`, `enum`, `trait`, `const`, ...) or
    /// `"tokens"` for unrecognized forms.
    pub kind: String,
    /// The item's name, when one directly follows the keyword.
    pub ident: Option<String>,
    /// Every token of the item after the attributes.
    pub tokens: TokenStream,
    /// The item's source location.
    pub span: Span,
}

/// One top-level (or impl/mod-nested) item.
#[derive(Debug, Clone)]
pub enum Item {
    /// A function or method.
    Fn(ItemFn),
    /// An impl block.
    Impl(ItemImpl),
    /// A module.
    Mod(ItemMod),
    /// A use declaration.
    Use(ItemUse),
    /// Anything else, kept as tokens.
    Verbatim(ItemVerbatim),
}

impl Item {
    /// The item's outer attributes.
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Item::Fn(i) => &i.attrs,
            Item::Impl(i) => &i.attrs,
            Item::Mod(i) => &i.attrs,
            Item::Use(i) => &i.attrs,
            Item::Verbatim(i) => &i.attrs,
        }
    }

    /// The item's source location.
    pub fn span(&self) -> Span {
        match self {
            Item::Fn(i) => i.span,
            Item::Impl(i) => i.span,
            Item::Mod(i) => i.span,
            Item::Use(i) => i.span,
            Item::Verbatim(i) => i.span,
        }
    }
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner attributes of the file (`#![warn(missing_docs)]`, ...).
    pub attrs: Vec<Attribute>,
    /// The file's items, in source order.
    pub items: Vec<Item>,
}

/// Parses Rust source text into a [`File`].
pub fn parse_file(src: &str) -> Result<File> {
    let stream: TokenStream = src.parse().map_err(|e: proc_macro2::LexError| Error {
        message: e.message().to_string(),
        span: e.span(),
    })?;
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut parser = Parser::new(&tokens);
    let mut inner_attrs = Vec::new();
    let items = parser.parse_items(&mut inner_attrs)?;
    Ok(File {
        attrs: inner_attrs,
        items,
    })
}

/// Keywords that may precede `fn` in a qualified function item.
const FN_QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern", "default"];

struct Parser<'a> {
    tokens: &'a [TokenTree],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [TokenTree]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn here_span(&self) -> Span {
        self.peek()
            .or_else(|| self.tokens.last())
            .map(|t| t.span())
            .unwrap_or_else(Span::call_site)
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
            span: self.here_span(),
        }
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.as_str() == word && !i.is_raw())
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    /// Parses items until the tokens are exhausted. Inner attributes
    /// encountered at the start are pushed to `inner_attrs`.
    fn parse_items(&mut self, inner_attrs: &mut Vec<Attribute>) -> Result<Vec<Item>> {
        let mut items = Vec::new();
        while self.peek().is_some() {
            // Inner attributes: `#` `!` `[...]`.
            if self.is_punct('#')
                && matches!(self.peek_at(1), Some(TokenTree::Punct(p)) if p.as_char() == '!')
                && matches!(
                    self.peek_at(2),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket
                )
            {
                let span = self
                    .peek()
                    .map(|t| t.span())
                    .unwrap_or_else(Span::call_site);
                self.bump();
                self.bump();
                let Some(TokenTree::Group(g)) = self.bump() else {
                    unreachable!("peeked bracket group")
                };
                inner_attrs.push(attribute_from_group(g, true, span));
                continue;
            }
            items.push(self.parse_item()?);
        }
        Ok(items)
    }

    fn parse_item(&mut self) -> Result<Item> {
        let attrs = self.parse_outer_attrs()?;
        let span = self.here_span();
        let vis = self.parse_visibility();

        // Look past fn qualifiers (`pub const unsafe extern "C" fn ...`).
        let mut probe = 0usize;
        loop {
            match self.peek_at(probe) {
                Some(TokenTree::Ident(i)) if FN_QUALIFIERS.contains(&i.as_str()) => {
                    probe += 1;
                    // `extern "C"` carries an ABI string literal.
                    if i.as_str() == "extern"
                        && matches!(self.peek_at(probe), Some(TokenTree::Literal(_)))
                    {
                        probe += 1;
                    }
                }
                _ => break,
            }
        }
        if matches!(self.peek_at(probe), Some(TokenTree::Ident(i)) if i.as_str() == "fn") {
            for _ in 0..probe {
                self.bump();
            }
            return self.parse_fn(attrs, vis, span).map(Item::Fn);
        }

        if self.is_ident("impl") {
            return self.parse_impl(attrs, span).map(Item::Impl);
        }
        if self.is_ident("mod") && matches!(self.peek_at(1), Some(TokenTree::Ident(_))) {
            return self.parse_mod(attrs, span).map(Item::Mod);
        }
        if self.is_ident("use") {
            self.bump();
            let tree = self.take_until_semi();
            return Ok(Item::Use(ItemUse { attrs, tree, span }));
        }
        self.parse_verbatim(attrs, span).map(Item::Verbatim)
    }

    fn parse_outer_attrs(&mut self) -> Result<Vec<Attribute>> {
        let mut attrs = Vec::new();
        while self.is_punct('#') {
            let span = self.here_span();
            match self.peek_at(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.bump();
                    let Some(TokenTree::Group(g)) = self.bump() else {
                        unreachable!("peeked bracket group")
                    };
                    attrs.push(attribute_from_group(g, false, span));
                }
                _ => return Err(self.error("expected `[` after `#`")),
            }
        }
        Ok(attrs)
    }

    fn parse_visibility(&mut self) -> Visibility {
        if self.is_ident("pub") {
            self.bump();
            // `pub(crate)` / `pub(super)` / `pub(in path)`.
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.bump();
            }
            Visibility::Public
        } else {
            Visibility::Inherited
        }
    }

    /// Parses from the `fn` keyword (qualifiers already consumed).
    fn parse_fn(&mut self, attrs: Vec<Attribute>, vis: Visibility, span: Span) -> Result<ItemFn> {
        let fn_span = self.here_span();
        self.bump(); // `fn`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.as_str().to_string(),
            _ => return Err(self.error("expected function name after `fn`")),
        };
        self.skip_generics();
        let inputs = match self.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                self.bump();
                stream
            }
            _ => return Err(self.error(format!("expected `(` after `fn {ident}`"))),
        };
        // Return type + where clause: everything up to the body brace or a
        // terminating `;` (bodyless trait method / extern declaration).
        let mut output = Vec::new();
        let body = loop {
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let stream = g.stream();
                    self.bump();
                    break Some(stream);
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    self.bump();
                    break None;
                }
                Some(t) => {
                    output.push(t.clone());
                    self.bump();
                }
                None => return Err(self.error(format!("unterminated function `{ident}`"))),
            }
        };
        let receiver = parse_receiver(inputs.tokens());
        Ok(ItemFn {
            attrs,
            vis,
            sig: Signature {
                ident,
                receiver,
                inputs,
                output: TokenStream::from(output),
                span: fn_span,
            },
            body,
            span,
        })
    }

    fn parse_impl(&mut self, attrs: Vec<Attribute>, span: Span) -> Result<ItemImpl> {
        self.bump(); // `impl`
        self.skip_generics();
        // Collect type tokens until the brace body; split at a top-level
        // `for` (not `for<` HRTB) into trait path and self type.
        let mut head: Vec<TokenTree> = Vec::new();
        let body = loop {
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let stream = g.stream();
                    self.bump();
                    break stream;
                }
                Some(t) => {
                    head.push(t.clone());
                    self.bump();
                }
                None => return Err(self.error("unterminated impl block")),
            }
        };
        // `where` clauses live between the type and the brace; drop them
        // from the head before splitting.
        if let Some(w) = head
            .iter()
            .position(|t| matches!(t, TokenTree::Ident(i) if i.as_str() == "where"))
        {
            head.truncate(w);
        }
        let for_pos = head.iter().enumerate().position(|(i, t)| {
            matches!(t, TokenTree::Ident(id) if id.as_str() == "for")
                && !matches!(
                    head.get(i + 1),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<'
                )
        });
        let (trait_path, ty_tokens) = match for_pos {
            Some(i) => (
                Some(TokenStream::from(head[..i].to_vec()).to_string()),
                &head[i + 1..],
            ),
            None => (None, &head[..]),
        };
        let self_ty = type_base_ident(ty_tokens)
            .ok_or_else(|| self.error("impl block with no self-type identifier"))?;
        let mut body_parser = Parser::new(body.tokens());
        let mut inner = Vec::new();
        let items = body_parser.parse_items(&mut inner)?;
        Ok(ItemImpl {
            attrs,
            trait_path,
            self_ty,
            items,
            span,
        })
    }

    fn parse_mod(&mut self, attrs: Vec<Attribute>, span: Span) -> Result<ItemMod> {
        self.bump(); // `mod`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i.as_str().to_string(),
            _ => return Err(self.error("expected module name after `mod`")),
        };
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                self.bump();
                Ok(ItemMod {
                    attrs,
                    ident,
                    content: None,
                    span,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                self.bump();
                let mut body_parser = Parser::new(stream.tokens());
                let mut inner = Vec::new();
                let items = body_parser.parse_items(&mut inner)?;
                Ok(ItemMod {
                    attrs,
                    ident,
                    content: Some(items),
                    span,
                })
            }
            _ => Err(self.error(format!("expected `;` or `{{` after `mod {ident}`"))),
        }
    }

    /// Parses an unmodeled item by consuming tokens to its natural end:
    /// a top-level `;`, or a brace group for brace-terminated forms
    /// (struct/enum/trait/macro definitions). `const`/`static`/`type`
    /// items always run to the `;` so brace-delimited initializer
    /// expressions are not mistaken for item bodies.
    fn parse_verbatim(&mut self, attrs: Vec<Attribute>, span: Span) -> Result<ItemVerbatim> {
        let kind = match self.peek() {
            Some(TokenTree::Ident(i)) => i.as_str().to_string(),
            _ => "tokens".to_string(),
        };
        let ident = match self.peek_at(1) {
            Some(TokenTree::Ident(i)) if !matches!(kind.as_str(), "tokens") => {
                Some(i.as_str().to_string())
            }
            _ => None,
        };
        let semi_only = matches!(kind.as_str(), "const" | "static" | "type" | "use")
            || (kind == "extern"
                && matches!(self.peek_at(1), Some(TokenTree::Ident(i)) if i.as_str() == "crate"));
        let mut tokens = Vec::new();
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    tokens.push(self.bump().unwrap().clone());
                    break;
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && !semi_only => {
                    tokens.push(self.bump().unwrap().clone());
                    break;
                }
                Some(_) => tokens.push(self.bump().unwrap().clone()),
                None => {
                    if tokens.is_empty() {
                        return Err(self.error("expected an item"));
                    }
                    break;
                }
            }
        }
        Ok(ItemVerbatim {
            attrs,
            kind,
            ident,
            tokens: TokenStream::from(tokens),
            span,
        })
    }

    /// Skips a generic parameter list `<...>` if one starts here. Nested
    /// angle brackets are tracked; `->` inside fn-pointer bounds is
    /// handled by ignoring a `>` that closes an arrow.
    fn skip_generics(&mut self) {
        if !self.is_punct('<') {
            return;
        }
        let mut depth = 0i32;
        let mut prev_arrow_head = false;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let ch = p.as_char();
                    if ch == '<' {
                        depth += 1;
                    } else if ch == '>' && !prev_arrow_head {
                        depth -= 1;
                    }
                    prev_arrow_head = ch == '-' && p.spacing() == Spacing::Joint;
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                _ => {
                    prev_arrow_head = false;
                    self.bump();
                }
            }
        }
    }

    fn take_until_semi(&mut self) -> TokenStream {
        let mut tokens = Vec::new();
        while let Some(t) = self.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ';') {
                self.bump();
                break;
            }
            tokens.push(self.bump().unwrap().clone());
        }
        TokenStream::from(tokens)
    }
}

fn attribute_from_group(group: &proc_macro2::Group, inner: bool, span: Span) -> Attribute {
    let tokens: Vec<TokenTree> = group.tokens().to_vec();
    // Path: leading idents joined by `::`.
    let mut path = String::new();
    let mut rest_start = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push_str(id.as_str());
                rest_start = i + 1;
                // A `::` continues the path.
                if matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':')
                    && matches!(tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == ':')
                {
                    i += 3;
                    continue;
                }
            }
            _ => break,
        }
        break;
    }
    Attribute {
        path,
        tokens: TokenStream::from(tokens[rest_start..].to_vec()),
        inner,
        span,
    }
}

/// Extracts the receiver from a parenthesized argument list, if the first
/// argument is a form of `self`.
fn parse_receiver(tokens: &[TokenTree]) -> Option<Receiver> {
    let mut i = 0usize;
    let mut reference = false;
    if matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '&') {
        reference = true;
        i += 1;
        // Optional lifetime: `'` `a`.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '\'') {
            i += 2;
        }
    }
    let mut mutable = false;
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.as_str() == "mut") {
        mutable = true;
        i += 1;
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.as_str() == "self" => {
            Some(Receiver { reference, mutable })
        }
        _ => None,
    }
}

/// The base identifier of a type token sequence: the last path segment
/// ident outside any angle brackets (`ecds_sim::CoreState<'a>` →
/// `CoreState`).
fn type_base_ident(tokens: &[TokenTree]) -> Option<String> {
    let mut depth = 0i32;
    let mut base = None;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Ident(i) if depth == 0 => base = Some(i.as_str().to_string()),
            // Tuple, array, and slice self-types (`impl Trait for (A, B)`)
            // have no base identifier; synthesize a placeholder so such
            // impls parse (they can never match an epoch-guarded name).
            TokenTree::Group(_) if depth == 0 && base.is_none() => {
                base = Some("(non-path)".to_string());
            }
            _ => {}
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_functions_with_receivers() {
        let file = parse_file(
            "pub struct S;\n\
             impl S {\n\
                 pub fn read(&self) -> u32 { 0 }\n\
                 pub fn write(&mut self, x: u32) { self.epoch += 1; }\n\
                 fn consume(self) {}\n\
                 pub fn free() {}\n\
             }",
        )
        .unwrap();
        assert_eq!(file.items.len(), 2);
        let Item::Impl(imp) = &file.items[1] else {
            panic!("expected impl")
        };
        assert_eq!(imp.self_ty, "S");
        assert!(imp.trait_path.is_none());
        let fns: Vec<&ItemFn> = imp
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(fns.len(), 4);
        assert_eq!(
            fns[0].sig.receiver,
            Some(Receiver {
                reference: true,
                mutable: false
            })
        );
        assert_eq!(
            fns[1].sig.receiver,
            Some(Receiver {
                reference: true,
                mutable: true
            })
        );
        assert_eq!(
            fns[2].sig.receiver,
            Some(Receiver {
                reference: false,
                mutable: false
            })
        );
        assert_eq!(fns[3].sig.receiver, None);
        assert!(fns[1].body.as_ref().unwrap().to_string().contains("epoch"));
    }

    #[test]
    fn trait_impls_record_the_trait_path() {
        let file = parse_file(
            "impl Ord for Event { fn cmp(&self, other: &Self) -> Ordering { todo!() } }",
        )
        .unwrap();
        let Item::Impl(imp) = &file.items[0] else {
            panic!("expected impl")
        };
        assert_eq!(imp.trait_path.as_deref(), Some("Ord"));
        assert_eq!(imp.self_ty, "Event");
    }

    #[test]
    fn generic_impls_resolve_the_base_type() {
        let file =
            parse_file("impl<'a, T: Clone> Wrapper<'a, T> { fn get(&self) -> &T { &self.0 } }")
                .unwrap();
        let Item::Impl(imp) = &file.items[0] else {
            panic!("expected impl")
        };
        assert_eq!(imp.self_ty, "Wrapper");
    }

    #[test]
    fn cfg_test_modules_parse_recursively() {
        let file = parse_file(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use super::*;\n\
                 #[test]\n\
                 fn t() { prod(); }\n\
             }",
        )
        .unwrap();
        let Item::Mod(m) = &file.items[1] else {
            panic!("expected mod")
        };
        assert_eq!(m.ident, "tests");
        assert_eq!(m.attrs.len(), 1);
        assert_eq!(m.attrs[0].path, "cfg");
        assert!(m.attrs[0].contains_word("test"));
        let content = m.content.as_ref().unwrap();
        assert_eq!(content.len(), 2);
        let Item::Fn(f) = &content[1] else {
            panic!("expected fn")
        };
        assert_eq!(f.attrs[0].path, "test");
    }

    #[test]
    fn fn_qualifiers_and_where_clauses_parse() {
        let file = parse_file(
            "pub const unsafe fn dangerous() -> u8 { 0 }\n\
             pub fn generic<T>(x: T) -> T where T: Clone { x }\n\
             extern \"C\" { fn ffi(); }",
        )
        .unwrap();
        assert_eq!(file.items.len(), 3);
        let Item::Fn(f) = &file.items[0] else {
            panic!("expected fn")
        };
        assert_eq!(f.sig.ident, "dangerous");
        let Item::Fn(g) = &file.items[1] else {
            panic!("expected fn")
        };
        assert_eq!(g.sig.ident, "generic");
        assert!(g.sig.output.to_string().contains("where"));
    }

    #[test]
    fn verbatim_items_keep_tokens_and_kind() {
        let file = parse_file(
            "const LIMIT: usize = { 3 + 4 };\n\
             pub struct Tuple(pub f64);\n\
             pub enum E { A, B }\n\
             macro_rules! m { () => {}; }\n\
             static S: u8 = 1;",
        )
        .unwrap();
        assert_eq!(file.items.len(), 5);
        let kinds: Vec<&str> = file
            .items
            .iter()
            .map(|i| match i {
                Item::Verbatim(v) => v.kind.as_str(),
                _ => "?",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["const", "struct", "enum", "macro_rules", "static"]
        );
        let Item::Verbatim(c) = &file.items[0] else {
            panic!("expected const")
        };
        assert_eq!(c.ident.as_deref(), Some("LIMIT"));
        assert!(c.tokens.to_string().ends_with(';'));
    }

    #[test]
    fn file_and_item_attributes_are_separated() {
        let file = parse_file(
            "#![warn(missing_docs)]\n\
             #[derive(Debug, Clone)]\n\
             pub struct S { pub x: f64 }",
        )
        .unwrap();
        assert_eq!(file.attrs.len(), 1);
        assert_eq!(file.attrs[0].path, "warn");
        assert!(file.attrs[0].inner);
        let Item::Verbatim(s) = &file.items[0] else {
            panic!("expected struct")
        };
        assert_eq!(s.attrs.len(), 1);
        assert_eq!(s.attrs[0].path, "derive");
    }

    #[test]
    fn spans_point_at_source_lines() {
        let file = parse_file("fn a() {}\n\nfn b() {}\n").unwrap();
        assert_eq!(file.items[0].span().start().line, 1);
        assert_eq!(file.items[1].span().start().line, 3);
    }

    #[test]
    fn parse_errors_surface_instead_of_passing() {
        assert!(parse_file("fn broken( {").is_err());
        assert!(parse_file("impl {}").is_err());
    }
}
