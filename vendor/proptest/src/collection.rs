//! Collection strategies (`vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive size bound for collection strategies, converted from the
/// range types test code passes to [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let strat = vec(0u64..10, 2..5);
        let mut rng = TestRng::deterministic("vec_respects_size_bounds");
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_inclusive_size() {
        let strat = vec(0i32..3, 1..=1);
        let mut rng = TestRng::deterministic("vec_inclusive_size");
        assert_eq!(strat.sample(&mut rng).len(), 1);
    }
}
