//! Offline stand-in for the `proptest` crate (see DESIGN.md §6).
//!
//! Provides the API subset this workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range / tuple /
//! collection / bool strategies, the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for hermetic builds:
//! no shrinking (failing inputs are printed instead of minimized), no
//! persisted failure seeds (runs are deterministic per test name), and no
//! `any::<T>()` / `Arbitrary` machinery (use explicit range strategies).

#![warn(missing_docs)]

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors upstream's `prop` module re-exports.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let values = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut rng),)+
                );
                // Capture inputs *before* the body may move them, so a
                // failure can report what was drawn (no shrinking here).
                let described = format!("{values:#?}");
                let ($($arg,)+) = values;
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {case}/{} with inputs:\n{described}",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in prop::collection::vec((0usize..4, 0.0f64..1.0), 1..=8),
            flag in prop::bool::weighted(0.5),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 8);
            prop_assert!(v.iter().all(|&(a, b)| a < 4 && (0.0..1.0).contains(&b)));
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_controls_case_count(_x in 0i32..3) {
            // Body runs exactly `cases` times; nothing to assert per case.
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (1u64..5).prop_map(|x| x * 10);
        let mut rng = TestRng::deterministic("prop_map_transforms_values");
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    fn just_yields_its_value() {
        use crate::strategy::{Just, Strategy};
        use crate::test_runner::TestRng;
        let mut rng = TestRng::deterministic("just");
        assert_eq!(Just(42).sample(&mut rng), 42);
    }
}
