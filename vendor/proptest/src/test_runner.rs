//! Test configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// Matches upstream proptest's default of 256 cases.
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies. Seeded from the test name so every test
/// has its own reproducible stream (there is no failure-seed persistence).
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A deterministic RNG for the named test.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion in seed_from_u64.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// The underlying generator (used by strategy implementations).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_name_same_stream() {
        let a = TestRng::deterministic("alpha").rng().next_u64();
        let b = TestRng::deterministic("alpha").rng().next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let a = TestRng::deterministic("alpha").rng().next_u64();
        let b = TestRng::deterministic("beta").rng().next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn default_matches_upstream_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
