//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding `true` with probability `probability_true`.
pub fn weighted(probability_true: f64) -> Weighted {
    assert!(
        (0.0..=1.0).contains(&probability_true),
        "probability must be in [0, 1]"
    );
    Weighted { probability_true }
}

/// Strategy returned by [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    probability_true: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(self.probability_true)
    }
}

/// Fair-coin strategy (mirrors upstream `prop::bool::ANY`).
pub const ANY: Any = Any;

/// Strategy behind [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

impl Strategy for Any {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_extremes_are_certain() {
        let mut rng = TestRng::deterministic("weighted_extremes");
        for _ in 0..50 {
            assert!(weighted(1.0).sample(&mut rng));
            assert!(!weighted(0.0).sample(&mut rng));
        }
    }

    #[test]
    fn weighted_low_probability_is_mostly_false() {
        let mut rng = TestRng::deterministic("weighted_low");
        let trues = (0..10_000)
            .filter(|_| weighted(0.2).sample(&mut rng))
            .count();
        assert!((1_500..2_500).contains(&trues), "trues = {trues}");
    }
}
