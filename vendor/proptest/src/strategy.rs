//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a second strategy to draw
    /// from (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
