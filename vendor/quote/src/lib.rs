//! Offline stand-in for the `quote` crate (see DESIGN.md §6, §9).
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the external `quote` dependency is replaced by this vendored subset:
//! a [`quote!`] macro that stringifies its token arguments and relexes them
//! through the vendored `proc-macro2`, producing a
//! [`proc_macro2::TokenStream`]. That is exactly the surface the `ecds-lint`
//! fixtures use to build token streams for rule tests.
//!
//! Unlike the real crate there is **no interpolation** — `#var` inside the
//! macro body is passed through literally rather than spliced. None of the
//! workspace's uses need interpolation; the stand-in exists so fixture code
//! can construct token streams with source-like syntax.

#![warn(missing_docs)]

// Re-exported so the macro expansion can name the crate unambiguously.
pub use proc_macro2;

/// Builds a [`proc_macro2::TokenStream`] from literal Rust tokens.
///
/// The tokens are stringified at compile time and relexed at runtime;
/// interpolation (`#var`) is not supported.
#[macro_export]
macro_rules! quote {
    () => {
        $crate::proc_macro2::TokenStream::new()
    };
    ($($tt:tt)+) => {
        stringify!($($tt)+)
            .parse::<$crate::proc_macro2::TokenStream>()
            .expect("quote! body relexes")
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn empty_quote_is_empty() {
        let ts = quote!();
        assert!(ts.is_empty());
    }

    #[test]
    fn tokens_roundtrip_through_stringify() {
        let ts = quote!(
            pub fn f(x: f64) -> bool {
                x == 0.0
            }
        );
        assert_eq!(ts.tokens().len(), 8);
        assert!(ts.to_string().contains("0.0"));
    }
}
