//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++
/// (Blackman & Vigna), 256 bits of state, passes BigCrush.
///
/// Upstream `rand`'s `StdRng` is ChaCha12; this stand-in keeps the name so
/// call sites compile unchanged, and keeps the guarantees the study needs
/// (determinism, platform independence, long period). Numeric streams
/// differ from upstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The exact 256-bit generator state, for checkpointing. Feeding the
    /// returned words back through [`StdRng::from_state`] resumes the
    /// stream at precisely this position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator at the exact position captured by
    /// [`StdRng::state`]. The all-zero state (unreachable from any seeded
    /// generator, but representable in a corrupted checkpoint) is escaped
    /// to the same constants as [`SeedableRng::from_seed`] so the generator
    /// can never lock up on a zero cycle.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return <Self as SeedableRng>::from_seed([0u8; 32]);
        }
        Self { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_escaped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn from_seed_reads_le_words() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let a = StdRng::from_seed(seed);
        assert_eq!(a.s[0], 1);
    }
}
