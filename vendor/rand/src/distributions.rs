//! Distributions and range sampling.

use crate::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::Range;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// One draw.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// An infinite iterator of draws, consuming `rng`.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: Rng,
        Self: Sized,
    {
        DistIter {
            distr: self,
            rng,
            phantom: PhantomData,
        }
    }
}

/// Iterator returned by [`Distribution::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    phantom: PhantomData<T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: Rng,
{
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// The "natural" distribution per type: uniform over all values for
/// integers, uniform on `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (the receiver of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty float range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Guard the half-open contract against FP rounding at the top end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty float range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Uniform integer draw from `[0, span)` by widening multiply, with a
/// rejection loop to remove modulo bias (Lemire's method).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        let low = wide as u64;
        if low >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: u64 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&w));
        }
    }

    #[test]
    fn lemire_is_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty integer range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: usize = rng.gen_range(5..5);
    }
}
