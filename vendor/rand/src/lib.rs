//! Offline stand-in for the `rand` crate (see DESIGN.md §6).
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the external `rand` dependency is replaced by this vendored subset:
//! the `RngCore`/`Rng`/`SeedableRng` traits, `rngs::StdRng`, uniform range
//! sampling, and the `Standard` distribution — exactly the surface the
//! simulator uses. `StdRng` here is xoshiro256++ seeded through SplitMix64
//! rather than ChaCha12, so streams differ numerically from upstream
//! `rand`'s, but every guarantee the study relies on holds: deterministic,
//! platform-independent, statistically well-mixed substreams.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::{DistIter, Distribution, SampleRange, Standard};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform draw from `range` (half-open ranges exclude the end).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// One draw from `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// An infinite iterator of draws from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from fixed bytes or a single `u64`.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding `state` through SplitMix64 — the
    /// standard remedy for low-entropy seeds.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let a: Vec<u64> = (0..8)
            .map(|_| StdRng::seed_from_u64(7).next_u64())
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| StdRng::seed_from_u64(7).next_u64())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            StdRng::seed_from_u64(1).next_u64(),
            StdRng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn gen_range_float_is_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_covers_support() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_in_range_and_mix() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sample_iter_streams_standard_draws() {
        let xs: Vec<u64> = StdRng::seed_from_u64(6)
            .sample_iter(Standard)
            .take(4)
            .collect();
        let ys: Vec<u64> = StdRng::seed_from_u64(6)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(xs, ys);
        assert_eq!(xs.len(), 4);
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
