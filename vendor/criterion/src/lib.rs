//! Offline stand-in for the `criterion` crate (see DESIGN.md §6).
//!
//! Implements the API subset this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Two run modes, matching upstream's behaviour under cargo:
//! * `cargo bench` passes `--bench`, selecting full measurement: a warm-up
//!   phase, then `sample_size` timed samples, reporting mean / min / max
//!   per-iteration wall time.
//! * `cargo test` passes no `--bench`, selecting smoke mode: each benchmark
//!   body runs once so broken benches fail fast without burning CI time.
//!
//! No plotting, no statistical regression analysis, no saved baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

const WARM_UP: Duration = Duration::from_millis(300);
const MEASUREMENT: Duration = Duration::from_secs(1);

/// How a benchmark executable was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full timing (`cargo bench` passes `--bench`).
    Bench,
    /// Run each body once (`cargo test` on a `harness = false` bench).
    Test,
}

/// The benchmark driver handed to each registered function.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Test;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Bench,
                // Flags cargo's test harness protocol may pass; ignore them.
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self { mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self.mode, &self.filter, &id, 100, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `{group}/{id}`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(
            self.criterion.mode,
            &self.criterion.filter,
            &full,
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `{group}/{id}`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (Upstream emits summary plots here; we have none.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` / `bench_with_input` id slots.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_count: usize,
    /// Per-iteration times of the final measurement, once recorded.
    elapsed: Option<MeasuredTimes>,
}

#[derive(Debug, Clone, Copy)]
struct MeasuredTimes {
    mean: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    // Timing benchmark bodies is this crate's whole job; the workspace-wide
    // wall-clock ban (clippy.toml, ecds-lint R2) exempts bench harnesses.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.mode == Mode::Test {
            black_box(routine());
            return;
        }

        // Warm-up: run until the warm-up budget elapses, counting iterations
        // to size the per-sample batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);

        // Batch iterations so each of the `sample_count` samples spends
        // roughly MEASUREMENT / sample_count of wall time.
        let sample_count = self.sample_count;
        let target_sample_ns = (MEASUREMENT.as_nanos() as u64 / sample_count as u64).max(1);
        let batch = (target_sample_ns / per_iter.max(1)).clamp(1, 1 << 24);

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let sample = start.elapsed() / batch as u32;
            min = min.min(sample);
            max = max.max(sample);
            total += sample;
        }
        self.elapsed = Some(MeasuredTimes {
            mean: total / sample_count as u32,
            min,
            max,
        });
    }
}

impl Bencher {
    fn new(mode: Mode, sample_count: usize) -> Self {
        Self {
            mode,
            elapsed: None,
            sample_count,
        }
    }
}

/// Runs one benchmark in the appropriate mode and prints its report line.
fn run_benchmark<F>(mode: Mode, filter: &Option<String>, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher::new(mode, sample_size);
    f(&mut bencher);
    match mode {
        Mode::Test => println!("{id}: ok (smoke)"),
        Mode::Bench => match bencher.elapsed {
            Some(t) => println!(
                "{id:<48} time: [{} {} {}]",
                fmt_duration(t.min),
                fmt_duration(t.mean),
                fmt_duration(t.max),
            ),
            None => println!("{id}: no measurement (Bencher::iter never called)"),
        },
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($fun(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("conv", 64).id, "conv/64");
        assert_eq!(BenchmarkId::from_parameter("LL/en+rob").id, "LL/en+rob");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut runs = 0;
        let mut bencher = Bencher::new(Mode::Test, 10);
        bencher.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(bencher.elapsed.is_none());
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
    }

    #[test]
    fn group_filter_skips_nonmatching() {
        let mode = Mode::Test;
        let filter = Some("match-me".to_string());
        let mut ran = false;
        run_benchmark(mode, &filter, "other/bench", 10, |_| ran = true);
        assert!(!ran);
        run_benchmark(mode, &filter, "group/match-me", 10, |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(ran);
    }
}
