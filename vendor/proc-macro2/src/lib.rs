//! Offline stand-in for the `proc-macro2` crate (see DESIGN.md §6, §9).
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the external `proc-macro2` dependency is replaced by this vendored
//! subset: a standalone Rust lexer that turns source text into the familiar
//! [`TokenStream`] / [`TokenTree`] shape with line/column [`Span`]s. It
//! implements exactly the surface the `ecds-lint` static-analysis pass (and
//! the vendored `syn`/`quote` stand-ins built on top of it) consume:
//!
//! - [`TokenStream`]: `FromStr` lexing, iteration, `Display`.
//! - [`TokenTree`]: `Group` / `Ident` / `Punct` / `Literal`, all spanned.
//! - [`Span`]: 1-based line, 0-based column of the token start and end.
//!
//! Unlike the real crate there is no `proc_macro` bridge, no call-site
//! hygiene, and no span joining — spans are plain source coordinates, which
//! is precisely what a file-oriented linter needs for `file:line:col`
//! diagnostics.
//!
//! The lexer understands the full token-level grammar the workspace uses:
//! line/doc and nested block comments (skipped), raw identifiers, raw /
//! byte / C strings, char literals vs. lifetimes, float literals vs. range
//! and method-call dots (`1.0` vs `1..2` vs `1.max(2)`), and joint/alone
//! punctuation spacing so multi-character operators (`==`, `!=`, `+=`,
//! `->`) can be reassembled faithfully.

#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

/// A line/column pair identifying a position in the lexed source.
///
/// `line` is 1-based and `column` is 0-based, matching the real
/// `proc-macro2` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineColumn {
    /// 1-based source line.
    pub line: usize,
    /// 0-based UTF-8 character column within the line.
    pub column: usize,
}

/// The source region a token was lexed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start: LineColumn,
    end: LineColumn,
}

impl Span {
    /// A span pointing at the start of the source (used for synthesized
    /// tokens).
    pub fn call_site() -> Self {
        Span {
            start: LineColumn { line: 1, column: 0 },
            end: LineColumn { line: 1, column: 0 },
        }
    }

    /// Where the token begins.
    pub fn start(&self) -> LineColumn {
        self.start
    }

    /// Where the token ends (exclusive).
    pub fn end(&self) -> LineColumn {
        self.end
    }
}

/// How a [`Punct`] relates to the following token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// The next character continues a multi-character operator (`=` in
    /// `==` before the final char).
    Joint,
    /// The operator ends here.
    Alone,
}

/// The delimiter of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
    /// An implicit delimiter (never produced by this lexer; kept for API
    /// parity).
    None,
}

/// A word: keyword, identifier, or raw identifier (`r#type` is stored as
/// `type` with [`Ident::is_raw`] set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    sym: String,
    raw: bool,
    span: Span,
}

impl Ident {
    /// Creates an identifier with the given span.
    pub fn new(sym: &str, span: Span) -> Self {
        Ident {
            sym: sym.to_string(),
            raw: false,
            span,
        }
    }

    /// The identifier text, without any `r#` prefix.
    pub fn as_str(&self) -> &str {
        &self.sym
    }

    /// Whether this was written as a raw identifier (`r#ident`).
    pub fn is_raw(&self) -> bool {
        self.raw
    }

    /// The source location.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.raw {
            write!(f, "r#{}", self.sym)
        } else {
            f.write_str(&self.sym)
        }
    }
}

/// A single punctuation character plus its [`Spacing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Punct {
    ch: char,
    spacing: Spacing,
    span: Span,
}

impl Punct {
    /// Creates a punctuation token with the given span.
    pub fn new(ch: char, spacing: Spacing, span: Span) -> Self {
        Punct { ch, spacing, span }
    }

    /// The punctuation character.
    pub fn as_char(&self) -> char {
        self.ch
    }

    /// Whether the next token continues this operator.
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// The source location.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ch)
    }
}

/// A literal token: number, string, raw string, byte string, or char. The
/// exact source text is preserved and returned by its `Display` impl.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    repr: String,
    span: Span,
}

impl Literal {
    /// Creates a literal from its source text.
    pub fn new(repr: &str, span: Span) -> Self {
        Literal {
            repr: repr.to_string(),
            span,
        }
    }

    /// The source location.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A delimited token sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    delimiter: Delimiter,
    stream: TokenStream,
    span: Span,
}

impl Group {
    /// Creates a group from a delimiter and inner stream.
    pub fn new(delimiter: Delimiter, stream: TokenStream) -> Self {
        Group {
            delimiter,
            stream,
            span: Span::call_site(),
        }
    }

    /// Which bracket pair delimits the group.
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    /// The tokens between the delimiters.
    pub fn stream(&self) -> TokenStream {
        self.stream.clone()
    }

    /// Borrow the inner tokens without cloning (lint extension; the real
    /// crate only offers the cloning [`Group::stream`]).
    pub fn tokens(&self) -> &[TokenTree] {
        self.stream.tokens()
    }

    /// The source location, from opening to closing delimiter.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (open, close) = match self.delimiter {
            Delimiter::Parenthesis => ("(", ")"),
            Delimiter::Brace => ("{ ", " }"),
            Delimiter::Bracket => ("[", "]"),
            Delimiter::None => ("", ""),
        };
        write!(f, "{open}{}{close}", self.stream)
    }
}

/// One node of the token tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenTree {
    /// A delimited subsequence.
    Group(Group),
    /// A word.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The source location of the token.
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span(),
            TokenTree::Ident(i) => i.span(),
            TokenTree::Punct(p) => p.span(),
            TokenTree::Literal(l) => l.span(),
        }
    }
}

impl fmt::Display for TokenTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenTree::Group(g) => g.fmt(f),
            TokenTree::Ident(i) => i.fmt(f),
            TokenTree::Punct(p) => p.fmt(f),
            TokenTree::Literal(l) => l.fmt(f),
        }
    }
}

/// A sequence of [`TokenTree`]s, producible from source text via
/// [`FromStr`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenStream {
    tokens: Vec<TokenTree>,
}

impl TokenStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Borrow the tokens (lint extension; the real crate requires
    /// `clone().into_iter()`).
    pub fn tokens(&self) -> &[TokenTree] {
        &self.tokens
    }
}

impl From<Vec<TokenTree>> for TokenStream {
    fn from(tokens: Vec<TokenTree>) -> Self {
        TokenStream { tokens }
    }
}

impl IntoIterator for TokenStream {
    type Item = TokenTree;
    type IntoIter = std::vec::IntoIter<TokenTree>;
    fn into_iter(self) -> Self::IntoIter {
        self.tokens.into_iter()
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.tokens {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            t.fmt(f)?;
        }
        Ok(())
    }
}

/// A lexing failure: unbalanced delimiters, an unterminated literal or
/// comment, or a character outside the token grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    message: String,
    span: Span,
}

impl LexError {
    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where lexing failed.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.span.start.line, self.span.start.column, self.message
        )
    }
}

impl std::error::Error for LexError {}

impl FromStr for TokenStream {
    type Err = LexError;

    fn from_str(src: &str) -> Result<Self, LexError> {
        Lexer::new(src).lex_all()
    }
}

/// Characters that may participate in multi-character operators; a punct
/// immediately followed by one of these is [`Spacing::Joint`].
const OP_CHARS: &[char] = &[
    '+', '-', '*', '/', '%', '^', '!', '&', '|', '<', '>', '=', '.', ':', '#', '?', '@', '~', '$',
];

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        // Strip an optional BOM and shebang line, which are legal file
        // prefixes but not tokens.
        let src = src.strip_prefix('\u{feff}').unwrap_or(src);
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            column: 0,
            src,
        }
    }

    fn here(&self) -> LineColumn {
        LineColumn {
            line: self.line,
            column: self.column,
        }
    }

    fn span_from(&self, start: LineColumn) -> Span {
        Span {
            start,
            end: self.here(),
        }
    }

    fn error(&self, start: LineColumn, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            span: Span {
                start,
                end: self.here(),
            },
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 0;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn lex_all(mut self) -> Result<TokenStream, LexError> {
        if self.src.starts_with("#!") && !self.src.starts_with("#![") {
            while let Some(c) = self.peek() {
                if c == '\n' {
                    break;
                }
                self.bump();
            }
        }
        let tokens = self.lex_until(None)?;
        Ok(TokenStream { tokens })
    }

    /// Lexes tokens until the closing delimiter (or end of input when
    /// `close` is `None`).
    fn lex_until(&mut self, close: Option<char>) -> Result<Vec<TokenTree>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.here();
            let Some(c) = self.peek() else {
                return match close {
                    None => Ok(out),
                    Some(c) => {
                        Err(self.error(start, format!("unclosed delimiter, expected `{c}`")))
                    }
                };
            };
            match c {
                ')' | ']' | '}' => {
                    return if Some(c) == close {
                        self.bump();
                        Ok(out)
                    } else {
                        Err(self.error(start, format!("unexpected closing delimiter `{c}`")))
                    };
                }
                '(' | '[' | '{' => {
                    self.bump();
                    let (delim, closer) = match c {
                        '(' => (Delimiter::Parenthesis, ')'),
                        '[' => (Delimiter::Bracket, ']'),
                        _ => (Delimiter::Brace, '}'),
                    };
                    let inner = self.lex_until(Some(closer))?;
                    out.push(TokenTree::Group(Group {
                        delimiter: delim,
                        stream: TokenStream { tokens: inner },
                        span: self.span_from(start),
                    }));
                }
                _ if is_ident_start(c) => out.push(self.lex_word(start)?),
                _ if c.is_ascii_digit() => out.push(self.lex_number(start)?),
                '"' => out.push(self.lex_string(start)?),
                '\'' => self.lex_quote(start, &mut out)?,
                _ if OP_CHARS.contains(&c) || c == ',' || c == ';' => {
                    self.bump();
                    let joint = matches!(self.peek(), Some(n) if OP_CHARS.contains(&n));
                    out.push(TokenTree::Punct(Punct {
                        ch: c,
                        spacing: if joint {
                            Spacing::Joint
                        } else {
                            Spacing::Alone
                        },
                        span: self.span_from(start),
                    }));
                }
                _ => return Err(self.error(start, format!("unexpected character `{c}`"))),
            }
        }
    }

    /// Skips whitespace, line comments (including doc comments), and
    /// nested block comments.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_at(1) == Some('*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.error(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes an identifier, keyword, raw identifier, or prefixed literal
    /// (`r"..."`, `b"..."`, `b'x'`, `br#"..."#`).
    fn lex_word(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        // Raw identifier.
        if self.peek() == Some('r')
            && self.peek_at(1) == Some('#')
            && self.peek_at(2).is_some_and(is_ident_start)
        {
            self.bump();
            self.bump();
            let sym = self.take_ident_body();
            return Ok(TokenTree::Ident(Ident {
                sym,
                raw: true,
                span: self.span_from(start),
            }));
        }
        // Raw / byte / C string prefixes.
        let prefix: String = {
            let mut p = String::new();
            for off in 0..3 {
                match self.peek_at(off) {
                    Some(c @ ('r' | 'b' | 'c')) if !p.contains(c) => p.push(c),
                    _ => break,
                }
            }
            p
        };
        if !prefix.is_empty() {
            let after = self.peek_at(prefix.len());
            if after == Some('"') || (prefix.ends_with('r') && after == Some('#')) {
                for _ in 0..prefix.len() {
                    self.bump();
                }
                return if prefix.contains('r') {
                    self.lex_raw_string(start, &prefix)
                } else {
                    self.lex_string_body(start, &prefix)
                };
            }
            if prefix == "b" && after == Some('\'') {
                self.bump();
                self.bump();
                return self.lex_char_body(start, "b'");
            }
        }
        let sym = self.take_ident_body();
        Ok(TokenTree::Ident(Ident {
            sym,
            raw: false,
            span: self.span_from(start),
        }))
    }

    fn take_ident_body(&mut self) -> String {
        let mut sym = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                sym.push(c);
                self.bump();
            } else {
                break;
            }
        }
        sym
    }

    /// Lexes a number literal: integer or float, with radix prefixes,
    /// underscores, exponents, and type suffixes. Dots are consumed only
    /// when they begin a fraction — `1..2` and `1.max(2)` leave the dot to
    /// the punct lexer.
    fn lex_number(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        let mut repr = String::new();
        let radix_prefixed = self.peek() == Some('0')
            && matches!(self.peek_at(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'));
        if radix_prefixed {
            repr.push(self.bump().unwrap());
            repr.push(self.bump().unwrap());
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    repr.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(TokenTree::Literal(Literal {
                repr,
                span: self.span_from(start),
            }));
        }
        self.take_digits(&mut repr);
        // Fraction: a dot followed by neither a second dot (range) nor an
        // identifier start (method call / field access).
        if self.peek() == Some('.') {
            let next = self.peek_at(1);
            let is_fraction = !matches!(next, Some(c) if c == '.' || is_ident_start(c));
            if is_fraction {
                repr.push('.');
                self.bump();
                self.take_digits(&mut repr);
            }
        }
        // Exponent: e/E [+-] digits; only if digits follow, otherwise the
        // `e` belongs to a suffix (or is a lone ident, which Rust rejects
        // but we tolerate as a suffix).
        if matches!(self.peek(), Some('e' | 'E')) {
            let (sign, digit_off) = match self.peek_at(1) {
                Some('+') | Some('-') => (true, 2),
                _ => (false, 1),
            };
            if self.peek_at(digit_off).is_some_and(|c| c.is_ascii_digit()) {
                repr.push(self.bump().unwrap());
                if sign {
                    repr.push(self.bump().unwrap());
                }
                self.take_digits(&mut repr);
            }
        }
        // Type suffix (`f64`, `u32`, `usize`, ...).
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                repr.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ok(TokenTree::Literal(Literal {
            repr,
            span: self.span_from(start),
        }))
    }

    fn take_digits(&mut self, repr: &mut String) {
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                repr.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }

    fn lex_string(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        self.lex_string_body(start, "")
    }

    /// Lexes a `"..."` body (the opening quote not yet consumed when
    /// `prefix` is empty; for `b"` the prefix chars are already consumed).
    fn lex_string_body(&mut self, start: LineColumn, prefix: &str) -> Result<TokenTree, LexError> {
        let mut repr = String::from(prefix);
        if !self.eat('"') {
            return Err(self.error(start, "expected `\"`"));
        }
        repr.push('"');
        loop {
            match self.bump() {
                Some('\\') => {
                    repr.push('\\');
                    match self.bump() {
                        Some(c) => repr.push(c),
                        None => return Err(self.error(start, "unterminated string escape")),
                    }
                }
                Some('"') => {
                    repr.push('"');
                    break;
                }
                Some(c) => repr.push(c),
                None => return Err(self.error(start, "unterminated string literal")),
            }
        }
        Ok(TokenTree::Literal(Literal {
            repr,
            span: self.span_from(start),
        }))
    }

    /// Lexes `r"..."` / `r#"..."#` (prefix chars already consumed).
    fn lex_raw_string(&mut self, start: LineColumn, prefix: &str) -> Result<TokenTree, LexError> {
        let mut repr = String::from(prefix);
        let mut hashes = 0usize;
        while self.eat('#') {
            repr.push('#');
            hashes += 1;
        }
        if !self.eat('"') {
            return Err(self.error(start, "expected `\"` after raw string prefix"));
        }
        repr.push('"');
        loop {
            match self.bump() {
                Some('"') => {
                    repr.push('"');
                    let mut matched = 0usize;
                    while matched < hashes && self.peek() == Some('#') {
                        self.bump();
                        repr.push('#');
                        matched += 1;
                    }
                    if matched == hashes {
                        break;
                    }
                }
                Some(c) => repr.push(c),
                None => return Err(self.error(start, "unterminated raw string literal")),
            }
        }
        Ok(TokenTree::Literal(Literal {
            repr,
            span: self.span_from(start),
        }))
    }

    /// Disambiguates `'` between a lifetime (`'a`) and a char literal
    /// (`'a'`, `'\n'`). A lifetime lexes as a Joint `'` punct followed by
    /// an ident, matching the real crate.
    fn lex_quote(&mut self, start: LineColumn, out: &mut Vec<TokenTree>) -> Result<(), LexError> {
        let one = self.peek_at(1);
        let two = self.peek_at(2);
        let is_lifetime = one.is_some_and(is_ident_start) && two != Some('\'');
        if is_lifetime {
            self.bump();
            out.push(TokenTree::Punct(Punct {
                ch: '\'',
                spacing: Spacing::Joint,
                span: self.span_from(start),
            }));
            let word_start = self.here();
            let sym = self.take_ident_body();
            out.push(TokenTree::Ident(Ident {
                sym,
                raw: false,
                span: self.span_from(word_start),
            }));
            Ok(())
        } else {
            self.bump();
            let lit = self.lex_char_body(start, "'")?;
            out.push(lit);
            Ok(())
        }
    }

    /// Lexes the remainder of a char (or byte-char) literal, opening quote
    /// already consumed.
    fn lex_char_body(&mut self, start: LineColumn, prefix: &str) -> Result<TokenTree, LexError> {
        let mut repr = String::from(prefix);
        loop {
            match self.bump() {
                Some('\\') => {
                    repr.push('\\');
                    match self.bump() {
                        Some(c) => repr.push(c),
                        None => return Err(self.error(start, "unterminated char escape")),
                    }
                }
                Some('\'') => {
                    repr.push('\'');
                    break;
                }
                Some(c) => repr.push(c),
                None => return Err(self.error(start, "unterminated char literal")),
            }
        }
        Ok(TokenTree::Literal(Literal {
            repr,
            span: self.span_from(start),
        }))
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<TokenTree> {
        src.parse::<TokenStream>().expect("lexes").tokens().to_vec()
    }

    fn kinds(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .map(|t| match t {
                TokenTree::Group(g) => format!("G{:?}", g.delimiter()),
                TokenTree::Ident(i) => format!("I:{i}"),
                TokenTree::Punct(p) => format!("P:{}", p.as_char()),
                TokenTree::Literal(l) => format!("L:{l}"),
            })
            .collect()
    }

    #[test]
    fn floats_ranges_and_method_calls_disambiguate() {
        assert_eq!(kinds("1.0"), vec!["L:1.0"]);
        assert_eq!(kinds("1."), vec!["L:1."]);
        assert_eq!(kinds("1..2"), vec!["L:1", "P:.", "P:.", "L:2"]);
        assert_eq!(
            kinds("1.max(2)"),
            vec!["L:1", "P:.", "I:max", "GParenthesis"]
        );
        assert_eq!(kinds("1e-3"), vec!["L:1e-3"]);
        assert_eq!(kinds("2.5e10f64"), vec!["L:2.5e10f64"]);
        assert_eq!(kinds("0xFF_u8"), vec!["L:0xFF_u8"]);
        assert_eq!(kinds("1_000.5"), vec!["L:1_000.5"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(kinds("'a'"), vec!["L:'a'"]);
        assert_eq!(kinds("'\\n'"), vec!["L:'\\n'"]);
        assert_eq!(kinds("&'a str"), vec!["P:&", "P:'", "I:a", "I:str"]);
        assert_eq!(kinds("b'x'"), vec!["L:b'x'"]);
    }

    #[test]
    fn operator_spacing_is_joint_within_operators() {
        let toks = lex("a == b");
        let TokenTree::Punct(p1) = &toks[1] else {
            panic!("expected punct")
        };
        let TokenTree::Punct(p2) = &toks[2] else {
            panic!("expected punct")
        };
        assert_eq!((p1.as_char(), p1.spacing()), ('=', Spacing::Joint));
        assert_eq!((p2.as_char(), p2.spacing()), ('=', Spacing::Alone));
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        assert_eq!(kinds("a // line\nb"), vec!["I:a", "I:b"]);
        assert_eq!(kinds("a /* x /* y */ z */ b"), vec!["I:a", "I:b"]);
        assert_eq!(kinds("/// doc\nfn"), vec!["I:fn"]);
    }

    #[test]
    fn strings_and_raw_strings() {
        assert_eq!(kinds(r#""hi \" there""#), vec![r#"L:"hi \" there""#]);
        assert_eq!(
            kinds(r##"r#"raw "inner" text"#"##),
            vec![r##"L:r#"raw "inner" text"#"##]
        );
        assert_eq!(kinds(r#"b"bytes""#), vec![r#"L:b"bytes""#]);
    }

    #[test]
    fn groups_nest_and_spans_track_lines() {
        let toks = lex("fn f() {\n    let x = 1;\n}");
        assert_eq!(toks.len(), 4);
        let TokenTree::Group(body) = &toks[3] else {
            panic!("expected body group")
        };
        assert_eq!(body.delimiter(), Delimiter::Brace);
        let inner = body.tokens();
        assert_eq!(inner.len(), 5);
        assert_eq!(inner[0].span().start().line, 2);
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("r#type");
        let TokenTree::Ident(i) = &toks[0] else {
            panic!("expected ident")
        };
        assert_eq!(i.as_str(), "type");
        assert!(i.is_raw());
    }

    #[test]
    fn unbalanced_delimiters_error() {
        assert!("(a".parse::<TokenStream>().is_err());
        assert!("a)".parse::<TokenStream>().is_err());
        assert!("\"unterminated".parse::<TokenStream>().is_err());
    }

    #[test]
    fn display_roundtrips_through_the_lexer() {
        let src = "pub fn f(x: &mut [u8; 4]) -> f64 { x[0] as f64 * 2.5e-1 }";
        let first: TokenStream = src.parse().unwrap();
        let second: TokenStream = first.to_string().parse().unwrap();
        // Spans and joint/alone spacing differ after pretty-printing, so
        // compare the canonical display form.
        assert_eq!(first.to_string(), second.to_string());
    }
}
