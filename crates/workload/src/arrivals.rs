//! Bursty Poisson arrival process (paper Sec. VI, after \[LiB98\]).
//!
//! Arrivals follow a Poisson process whose rate switches by task count: the
//! first 200 tasks arrive at `λ_fast = 1/8` (oversubscribing the cluster),
//! the next 600 at `λ_slow = 1/48` (undersubscribed lull), the last 200 at
//! `λ_fast` again. Rates are constant across trials; arrival *times* vary
//! by trial seed. The paper also defines an equilibrium rate
//! `λ_eq = 1/28` at which the system would be perfectly subscribed.

use ecds_pmf::{Exponential, Time};
use rand::Rng;

/// One phase of the arrival pattern: `count` tasks arriving at Poisson rate
/// `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalPhase {
    /// Number of tasks arriving during this phase.
    pub count: usize,
    /// Poisson rate (tasks per time unit).
    pub rate: f64,
}

impl ArrivalPhase {
    /// Creates a phase; `count >= 1` and `rate > 0`.
    pub fn new(count: usize, rate: f64) -> Self {
        assert!(count >= 1, "phase must contain at least one task");
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self { count, rate }
    }
}

/// A piecewise-constant-rate Poisson arrival pattern.
///
/// ```
/// use ecds_workload::BurstPattern;
/// use ecds_pmf::{SeedDerive, Stream};
///
/// let pattern = BurstPattern::paper(); // 200 fast / 600 slow / 200 fast
/// assert_eq!(pattern.total_tasks(), 1000);
/// let mut rng = SeedDerive::new(7).rng(Stream::Arrivals, 0, 0);
/// let times = pattern.generate(&mut rng);
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BurstPattern {
    phases: Vec<ArrivalPhase>,
}

/// The paper's fast (burst) arrival rate, `λ_fast = 1/8`.
pub const LAMBDA_FAST: f64 = 1.0 / 8.0;
/// The paper's slow (lull) arrival rate, `λ_slow = 1/48`.
pub const LAMBDA_SLOW: f64 = 1.0 / 48.0;
/// The paper's equilibrium rate, `λ_eq = 1/28` (defined for context; the
/// generated pattern uses only fast and slow).
pub const LAMBDA_EQ: f64 = 1.0 / 28.0;
/// Core count of the paper's reference cluster (8 nodes × expected 2.5
/// processors × 2.5 cores ≈ 48, matching the λ_eq derivation in Sec. VI) —
/// the denominator of [`BurstPattern::scaled_to_cluster`]'s rate scaling.
pub const PAPER_REFERENCE_CORES: usize = 48;

impl BurstPattern {
    /// Builds a pattern from phases (at least one).
    pub fn new(phases: Vec<ArrivalPhase>) -> Self {
        assert!(!phases.is_empty(), "pattern needs at least one phase");
        Self { phases }
    }

    /// The paper's pattern: 200 fast, 600 slow, 200 fast.
    pub fn paper() -> Self {
        Self::new(vec![
            ArrivalPhase::new(200, LAMBDA_FAST),
            ArrivalPhase::new(600, LAMBDA_SLOW),
            ArrivalPhase::new(200, LAMBDA_FAST),
        ])
    }

    /// The paper's pattern scaled to `window` tasks, preserving the
    /// 20%/60%/20% split (each phase gets at least one task).
    pub fn scaled(window: usize) -> Self {
        Self::scaled_with_rates(window, LAMBDA_FAST, LAMBDA_SLOW)
    }

    /// The paper's 20%/60%/20% split over `window` tasks with custom burst
    /// and lull rates — used to keep scaled-down scenarios at the paper's
    /// *subscription level* (the paper's absolute rates assume its 48-core
    /// cluster; a small test cluster needs proportionally slower arrivals).
    pub fn scaled_with_rates(window: usize, fast: f64, slow: f64) -> Self {
        assert!(window >= 3, "scaled pattern needs at least 3 tasks");
        let burst = (window / 5).max(1);
        let lull = window - 2 * burst;
        Self::new(vec![
            ArrivalPhase::new(burst, fast),
            ArrivalPhase::new(lull, slow),
            ArrivalPhase::new(burst, fast),
        ])
    }

    /// A single-phase constant-rate pattern.
    pub fn constant(count: usize, rate: f64) -> Self {
        Self::new(vec![ArrivalPhase::new(count, rate)])
    }

    /// The paper's burst/lull/burst pattern over `window` tasks with rates
    /// scaled so a cluster of `total_cores` cores sees the paper's
    /// *subscription level*. The paper's λ_fast = 1/8 and λ_slow = 1/48
    /// oversubscribe and undersubscribe its ~48-core reference cluster; a
    /// 40,000-core cluster at those absolute rates would idle, so the
    /// high-rate source multiplies both rates by
    /// `total_cores / PAPER_REFERENCE_CORES`. This is the λ-scaling knob
    /// of the mega-scale study.
    pub fn scaled_to_cluster(window: usize, total_cores: usize) -> Self {
        assert!(total_cores >= 1, "need at least one core");
        let factor = total_cores as f64 / PAPER_REFERENCE_CORES as f64;
        Self::scaled_with_rates(window, LAMBDA_FAST * factor, LAMBDA_SLOW * factor)
    }

    /// The phases.
    pub fn phases(&self) -> &[ArrivalPhase] {
        &self.phases
    }

    /// Total number of tasks across all phases.
    pub fn total_tasks(&self) -> usize {
        self.phases.iter().map(|p| p.count).sum()
    }

    /// Expected makespan of the arrival process (sum of phase means).
    pub fn expected_span(&self) -> Time {
        self.phases.iter().map(|p| p.count as f64 / p.rate).sum()
    }

    /// Generates the arrival-time sequence: exponential inter-arrival gaps
    /// at each phase's rate, starting from time 0 (the first task arrives
    /// after one gap). Monotonically non-decreasing by construction.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Time> {
        let mut times = Vec::with_capacity(self.total_tasks());
        let mut now = 0.0;
        for phase in &self.phases {
            let exp = Exponential::new(phase.rate);
            for _ in 0..phase.count {
                now += exp.sample(rng);
                times.push(now);
            }
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn paper_pattern_totals_1000() {
        assert_eq!(BurstPattern::paper().total_tasks(), 1000);
    }

    #[test]
    fn paper_rates_match_section_vi() {
        let p = BurstPattern::paper();
        assert_eq!(p.phases()[0].rate, 0.125);
        assert!((p.phases()[1].rate - 0.0208333).abs() < 1e-6);
        assert_eq!(p.phases()[0].count, 200);
        assert_eq!(p.phases()[1].count, 600);
        assert_eq!(p.phases()[2].count, 200);
    }

    #[test]
    fn generated_times_are_sorted_and_positive() {
        let times = BurstPattern::paper().generate(&mut rng());
        assert_eq!(times.len(), 1000);
        assert!(times[0] > 0.0);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn phase_means_are_respected() {
        // Average over many runs: the first burst of 200 tasks at rate 1/8
        // should span about 1600 time units.
        let p = BurstPattern::paper();
        let mut r = rng();
        let mut total = 0.0;
        const RUNS: usize = 200;
        for _ in 0..RUNS {
            let times = p.generate(&mut r);
            total += times[199];
        }
        let mean = total / RUNS as f64;
        assert!((mean - 1600.0).abs() < 60.0, "burst span {mean}");
    }

    #[test]
    fn expected_span_matches_paper_scale() {
        // 200/0.125 + 600/(1/48) + 200/0.125 = 1600 + 28800 + 1600 = 32000.
        let span = BurstPattern::paper().expected_span();
        assert!((span - 32000.0).abs() < 1e-9);
    }

    #[test]
    fn lull_is_slower_than_bursts() {
        let times = BurstPattern::paper().generate(&mut rng());
        let burst1_span = times[199] - times[0];
        let lull_span = times[799] - times[200];
        // 600 slow tasks take far longer than 200 fast ones.
        assert!(lull_span > 3.0 * burst1_span);
    }

    #[test]
    fn scaled_pattern_preserves_split() {
        let p = BurstPattern::scaled(100);
        assert_eq!(p.total_tasks(), 100);
        assert_eq!(p.phases()[0].count, 20);
        assert_eq!(p.phases()[1].count, 60);
        assert_eq!(p.phases()[2].count, 20);
    }

    #[test]
    fn cluster_scaled_rates_track_core_count() {
        let p = BurstPattern::scaled_to_cluster(1_000, 4_800);
        // 100× the paper's reference cores ⇒ 100× both rates.
        assert!((p.phases()[0].rate - LAMBDA_FAST * 100.0).abs() < 1e-12);
        assert!((p.phases()[1].rate - LAMBDA_SLOW * 100.0).abs() < 1e-12);
        assert_eq!(p.total_tasks(), 1_000);
        // At the reference size the pattern is exactly the scaled paper one.
        assert_eq!(
            BurstPattern::scaled_to_cluster(1_000, PAPER_REFERENCE_CORES),
            BurstPattern::scaled(1_000)
        );
    }

    #[test]
    fn constant_pattern_single_phase() {
        let p = BurstPattern::constant(50, LAMBDA_EQ);
        assert_eq!(p.phases().len(), 1);
        assert_eq!(p.total_tasks(), 50);
    }

    #[test]
    fn determinism_per_seed() {
        let a = BurstPattern::paper().generate(&mut rng());
        let b = BurstPattern::paper().generate(&mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_phase_rejected() {
        let _ = ArrivalPhase::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalPhase::new(10, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_pattern_rejected() {
        let _ = BurstPattern::new(vec![]);
    }
}
