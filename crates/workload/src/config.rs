//! Workload generation configuration.

use ecds_pmf::SamplePmfConfig;

use crate::arrivals::BurstPattern;

/// All knobs of workload generation; [`WorkloadConfig::paper`] reproduces
/// Sec. VI.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of task types (paper: 100).
    pub num_types: usize,
    /// Tasks per trial window (paper: 1,000 — a finite window is required
    /// for an energy constraint to be meaningful).
    pub window: usize,
    /// CVB mean task execution time `μ_task` (paper: 750).
    pub mu_task: f64,
    /// CVB task-heterogeneity coefficient of variation `V_task`
    /// (paper: 0.25).
    pub v_task: f64,
    /// CVB machine-heterogeneity coefficient of variation `V_mach`
    /// (paper: 0.25).
    pub v_mach: f64,
    /// Coefficient of variation of the per-(type, node) execution-time pmf
    /// around its CVB mean (see DESIGN.md §3.6).
    pub pmf_cv: f64,
    /// Sampling/binning parameters for empirical pmf construction.
    pub pmf_sampling: SamplePmfConfig,
    /// The arrival process.
    pub arrivals: BurstPattern,
}

impl WorkloadConfig {
    /// The paper's Sec. VI workload: 1,000 tasks of 100 types,
    /// CVB(750, 0.25, 0.25), bursty arrivals 200 fast / 600 slow / 200 fast
    /// with `λ_fast = 1/8`, `λ_slow = 1/48`.
    pub fn paper() -> Self {
        Self {
            num_types: 100,
            window: 1000,
            mu_task: 750.0,
            v_task: 0.25,
            v_mach: 0.25,
            pmf_cv: 0.2,
            pmf_sampling: SamplePmfConfig::default(),
            arrivals: BurstPattern::paper(),
        }
    }

    /// A scaled-down workload for fast tests: 60 tasks of 10 types with a
    /// proportionally shrunken burst pattern. Arrival rates are ~1/7 of
    /// the paper's so the ~7-core test cluster sees the same subscription
    /// level as the paper's 48-core cluster.
    pub fn small_for_tests() -> Self {
        Self {
            num_types: 10,
            window: 60,
            mu_task: 750.0,
            v_task: 0.25,
            v_mach: 0.25,
            pmf_cv: 0.2,
            pmf_sampling: SamplePmfConfig::new(100, 12),
            arrivals: BurstPattern::scaled_with_rates(60, 1.0 / 56.0, 1.0 / 336.0),
        }
    }

    /// Validates internal consistency (panics on misconfiguration).
    pub fn validate(&self) {
        assert!(self.num_types >= 1, "need at least one task type");
        assert!(self.window >= 1, "window must hold at least one task");
        assert!(
            self.mu_task.is_finite() && self.mu_task > 0.0,
            "mu_task must be positive"
        );
        assert!(
            self.v_task.is_finite() && self.v_task > 0.0,
            "v_task must be positive"
        );
        assert!(
            self.v_mach.is_finite() && self.v_mach > 0.0,
            "v_mach must be positive"
        );
        assert!(
            self.pmf_cv.is_finite() && self.pmf_cv > 0.0,
            "pmf_cv must be positive"
        );
        assert_eq!(
            self.arrivals.total_tasks(),
            self.window,
            "arrival pattern must cover exactly the window"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        WorkloadConfig::paper().validate();
    }

    #[test]
    fn small_config_is_valid() {
        WorkloadConfig::small_for_tests().validate();
    }

    #[test]
    fn paper_parameters_match_section_vi() {
        let c = WorkloadConfig::paper();
        assert_eq!(c.num_types, 100);
        assert_eq!(c.window, 1000);
        assert_eq!(c.mu_task, 750.0);
        assert_eq!(c.v_task, 0.25);
        assert_eq!(c.v_mach, 0.25);
    }

    #[test]
    #[should_panic(expected = "cover exactly the window")]
    fn mismatched_pattern_rejected() {
        let mut c = WorkloadConfig::paper();
        c.window = 999;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one task type")]
    fn zero_types_rejected() {
        let mut c = WorkloadConfig::paper();
        c.num_types = 0;
        c.validate();
    }
}
