//! Per-trial workload traces.
//!
//! A trace fixes everything that varies across the paper's 50 simulation
//! trials: task types (uniform over the type set), arrival times (bursty
//! Poisson), deadlines (derived), and the actual-execution-time quantiles.
//! The cluster, the ETC matrix, and the pmf table stay constant across
//! trials ("All other parameters are held constant", Sec. VI).

use ecds_pmf::{SeedDerive, Stream, Time};
use rand::Rng;

use crate::config::WorkloadConfig;
use crate::exec_table::ExecTable;
use crate::task::{Task, TaskId, TaskTypeId};

/// One trial's worth of tasks, sorted by arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    trial: u64,
    tasks: Vec<Task>,
}

impl WorkloadTrace {
    /// Generates trial `trial`'s trace.
    ///
    /// Deadlines follow Sec. VI:
    /// `δ(z) = arrival(z) + type_average(type(z)) + t_avg`, where the load
    /// factor `t_avg` is the anticipated waiting time of a task before it
    /// begins execution.
    pub fn generate(
        cfg: &WorkloadConfig,
        table: &ExecTable,
        seeds: &SeedDerive,
        trial: u64,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            cfg.num_types,
            table.num_types(),
            "config and table disagree on task-type count"
        );
        let arrivals = cfg
            .arrivals
            .generate(&mut seeds.rng(Stream::Arrivals, trial, 0));
        let mut type_rng = seeds.rng(Stream::TaskTypes, trial, 0);
        let mut quantile_rng = seeds.rng(Stream::Quantiles, trial, 0);
        let t_avg = table.t_avg();
        let tasks: Vec<Task> = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let type_id = TaskTypeId(type_rng.gen_range(0..cfg.num_types));
                let quantile: f64 = quantile_rng.gen_range(0.0..1.0);
                let deadline = arrival + table.type_average(type_id) + t_avg;
                Task {
                    id: TaskId(i),
                    type_id,
                    arrival,
                    deadline,
                    quantile,
                }
            })
            .collect();
        Self { trial, tasks }
    }

    /// Which trial this trace belongs to.
    #[inline]
    pub fn trial(&self) -> u64 {
        self.trial
    }

    /// The tasks, in arrival order.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the trace holds no tasks (unreachable for valid configs;
    /// present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Arrival time of the last task (the end of the arrival window).
    pub fn last_arrival(&self) -> Time {
        self.tasks.last().map(|t| t.arrival).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_cluster::{generate_cluster, ClusterGenConfig};

    fn setup() -> (WorkloadConfig, ExecTable, SeedDerive) {
        let seeds = SeedDerive::new(21);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let table = ExecTable::generate(&cfg, &cluster, &seeds);
        (cfg, table, seeds)
    }

    #[test]
    fn trace_covers_window_in_arrival_order() {
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        assert_eq!(trace.len(), cfg.window);
        assert!(trace
            .tasks()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        for (i, t) in trace.tasks().iter().enumerate() {
            assert_eq!(t.id, TaskId(i));
        }
    }

    #[test]
    fn deadlines_follow_section_vi_formula() {
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        for t in trace.tasks() {
            let expected = t.arrival + table.type_average(t.type_id) + table.t_avg();
            assert!((t.deadline - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn types_are_within_range_and_varied() {
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        let mut seen = std::collections::BTreeSet::new();
        for t in trace.tasks() {
            assert!(t.type_id.0 < cfg.num_types);
            seen.insert(t.type_id.0);
        }
        assert!(seen.len() > 1, "uniform type selection should vary");
    }

    #[test]
    fn quantiles_in_unit_interval() {
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 3);
        for t in trace.tasks() {
            assert!((0.0..1.0).contains(&t.quantile));
        }
    }

    #[test]
    fn trials_differ_but_are_reproducible() {
        let (cfg, table, seeds) = setup();
        let a = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        let a2 = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        let b = WorkloadTrace::generate(&cfg, &table, &seeds, 1);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.trial(), 0);
        assert_eq!(b.trial(), 1);
    }

    #[test]
    fn last_arrival_is_max() {
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        let max = trace
            .tasks()
            .iter()
            .map(|t| t.arrival)
            .fold(0.0f64, f64::max);
        assert_eq!(trace.last_arrival(), max);
    }

    #[test]
    #[should_panic(expected = "disagree on task-type count")]
    fn mismatched_table_rejected() {
        let (cfg, table, seeds) = setup();
        let mut bad = cfg.clone();
        bad.num_types = cfg.num_types + 1;
        let _ = WorkloadTrace::generate(&bad, &table, &seeds, 0);
    }
}
