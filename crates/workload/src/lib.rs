//! Workload substrate (paper Sec. III-B and VI).
//!
//! The workload is a dynamically-arriving window of independent tasks. Each
//! task is an instance of one of a fixed set of well-known *task types*
//! (compute-intensive, memory-intensive, ...); its execution time on a given
//! core and P-state is a random variable described by a pmf. This crate
//! provides:
//!
//! * the CVB (coefficient-of-variation-based) heterogeneity generator of
//!   \[AlS00\] producing the matrix of mean execution times per
//!   (task type, node) — `μ_task = 750`, `V_task = V_mach = 0.25` in the
//!   paper,
//! * the execution-time pmf table per (task type, node, P-state),
//! * the bursty Poisson arrival process (`λ_fast = 1/8` for the first and
//!   last 200 tasks, `λ_slow = 1/48` for the 600 between),
//! * deadline assignment `δ(z) = arrival + avg-exec-of-type + t_avg`,
//! * per-trial trace generation with pre-drawn actual-time quantiles.
//!
//! # Example
//!
//! ```
//! use ecds_cluster::{generate_cluster, ClusterGenConfig};
//! use ecds_pmf::SeedDerive;
//! use ecds_workload::{ExecTable, WorkloadConfig, WorkloadTrace};
//!
//! let seeds = SeedDerive::new(42);
//! let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
//! let cfg = WorkloadConfig::small_for_tests();
//! let table = ExecTable::generate(&cfg, &cluster, &seeds);
//! let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
//! assert_eq!(trace.tasks().len(), cfg.window);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod config;
pub mod etc;
pub mod exec_table;
pub mod source;
pub mod task;
pub mod trace;

pub use arrivals::{ArrivalPhase, BurstPattern, PAPER_REFERENCE_CORES};
pub use config::WorkloadConfig;
pub use etc::EtcMatrix;
pub use exec_table::ExecTable;
pub use source::{ArrivalSource, BurstyArrivalSource, TraceArrivalSource};
pub use task::{Task, TaskId, TaskTypeId};
pub use trace::WorkloadTrace;
