//! The execution-time pmf table: one pmf per (task type, node, P-state).
//!
//! The paper assumes "we are provided an execution-time probability mass
//! function for each task type executing on a single core of each node in
//! each P-state" (Sec. III-B). We synthesize the table from the CVB mean
//! matrix: the base-state pmf of (type, node) is an empirical gamma pmf
//! around `ETC[t][i]`, and each deeper P-state scales its support by the
//! node's execution-time multiplier (DVFS slows the clock; the paper's
//! clock-speed profile "scale\[s\] the execution time distributions").

use ecds_cluster::{Cluster, PState, NUM_PSTATES};
use ecds_pmf::{empirical_pmf, Gamma, Pmf, Prob, SeedDerive, Stream, Time};

use crate::config::WorkloadConfig;
use crate::etc::EtcMatrix;
use crate::task::TaskTypeId;

/// Immutable per-scenario table of execution-time pmfs and cached
/// expectations.
///
/// Pmfs are stored once per *node template* (see
/// [`Cluster::with_templates`]): nodes stamped from the same template have
/// identical specs, hence identical execution-time distributions, so a
/// 10⁴-node templated cluster stores as few pmfs as its template count.
/// For clusters built with [`Cluster::new`] every node is its own template
/// and the layout (and every byte of every pmf) is exactly what the
/// per-node storage produced.
#[derive(Debug, Clone)]
pub struct ExecTable {
    num_types: usize,
    num_nodes: usize,
    num_templates: usize,
    /// Node → template, copied from the cluster at build time.
    node_template: Vec<u32>,
    /// `[type * num_templates + template]` → per-P-state pmfs.
    pmfs: Vec<[Pmf; NUM_PSTATES]>,
    /// Cached expectations, same layout.
    eets: Vec<[Time; NUM_PSTATES]>,
    /// Cached per-type average execution time over all templates and
    /// P-states (the deadline formula's per-type term; identical to the
    /// per-node average for identity-template clusters).
    type_avgs: Vec<Time>,
    /// `t_avg`: grand average over types, templates, and P-states (the
    /// deadline load factor and the energy-budget time scale).
    t_avg: Time,
}

impl ExecTable {
    /// Generates the full table for `cluster` from `cfg`, deterministically
    /// from the [`Stream::ExecPmf`] and [`Stream::EtcMatrix`] streams.
    pub fn generate(cfg: &WorkloadConfig, cluster: &Cluster, seeds: &SeedDerive) -> Self {
        cfg.validate();
        let etc = EtcMatrix::generate_cvb(
            cfg.num_types,
            cluster.num_templates(),
            cfg.mu_task,
            cfg.v_task,
            cfg.v_mach,
            seeds,
        );
        Self::from_etc(cfg, cluster, &etc, seeds)
    }

    /// Builds the table from an explicit mean matrix (tests, custom
    /// scenarios). The matrix carries one column per node *template* —
    /// which is one column per node for identity-template clusters.
    pub fn from_etc(
        cfg: &WorkloadConfig,
        cluster: &Cluster,
        etc: &EtcMatrix,
        seeds: &SeedDerive,
    ) -> Self {
        assert_eq!(
            etc.num_nodes(),
            cluster.num_templates(),
            "ETC matrix and cluster disagree on node count (one column per node template)"
        );
        let num_types = etc.num_types();
        let num_templates = cluster.num_templates();
        // Representative node per template: any node works because
        // `Cluster::with_templates` asserts spec equality within a
        // template. Under identity templates this is node `tpl` itself.
        let mut rep = vec![usize::MAX; num_templates];
        for n in (0..cluster.num_nodes()).rev() {
            rep[cluster.template_of(n)] = n;
        }
        let mut pmfs = Vec::with_capacity(num_types * num_templates);
        let mut eets = Vec::with_capacity(num_types * num_templates);
        for t in 0..num_types {
            for (tpl, &rep_node) in rep.iter().enumerate() {
                let mean = etc.mean(TaskTypeId(t), tpl);
                let gamma = Gamma::from_mean_cv(mean, cfg.pmf_cv);
                let mut rng = seeds.rng(Stream::ExecPmf, t as u64, tpl as u64);
                let base = empirical_pmf(&mut rng, cfg.pmf_sampling, |r| gamma.sample(r));
                let node = cluster.node(rep_node);
                let per_state: [Pmf; NUM_PSTATES] = std::array::from_fn(|s| {
                    let state = PState::from_index(s);
                    let mult = node.exec_time_multiplier(state);
                    if state.is_base() {
                        base.clone()
                    } else {
                        base.scale_values(mult)
                    }
                });
                let per_eet: [Time; NUM_PSTATES] =
                    std::array::from_fn(|s| per_state[s].expectation());
                pmfs.push(per_state);
                eets.push(per_eet);
            }
        }
        let type_avgs: Vec<Time> = (0..num_types)
            .map(|t| {
                let sum: f64 = (0..num_templates)
                    .map(|tpl| eets[t * num_templates + tpl].iter().sum::<f64>())
                    .sum();
                sum / (num_templates * NUM_PSTATES) as f64
            })
            .collect();
        let t_avg = type_avgs.iter().sum::<f64>() / num_types as f64;
        Self {
            num_types,
            num_nodes: cluster.num_nodes(),
            num_templates,
            node_template: cluster.templates().to_vec(),
            pmfs,
            eets,
            type_avgs,
            t_avg,
        }
    }

    /// Number of task types.
    #[inline]
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of node templates backing the pmf storage.
    #[inline]
    pub fn num_templates(&self) -> usize {
        self.num_templates
    }

    /// Template id of `node` — the pmf-storage key; nodes sharing it have
    /// bit-identical tables.
    #[inline]
    pub fn template_of(&self, node: usize) -> usize {
        self.node_template[node] as usize
    }

    /// Execution-time pmf of `task_type` on one core of `node` in `state`.
    #[inline]
    pub fn pmf(&self, task_type: TaskTypeId, node: usize, state: PState) -> &Pmf {
        let tpl = self.node_template[node] as usize;
        &self.pmfs[task_type.0 * self.num_templates + tpl][state.index()]
    }

    /// Expected execution time — the heuristics' `EET(i, j, k, π, z)`
    /// (cores within a node are identical, so only the node matters).
    #[inline]
    pub fn eet(&self, task_type: TaskTypeId, node: usize, state: PState) -> Time {
        let tpl = self.node_template[node] as usize;
        self.eets[task_type.0 * self.num_templates + tpl][state.index()]
    }

    /// Per-type average execution time over all nodes and P-states (the
    /// type-specific term of the deadline formula, Sec. VI).
    #[inline]
    pub fn type_average(&self, task_type: TaskTypeId) -> Time {
        self.type_avgs[task_type.0]
    }

    /// `t_avg`: the average execution time of all task types across all
    /// machines and P-states (≈ 1353 in the paper's configuration).
    #[inline]
    pub fn t_avg(&self) -> Time {
        self.t_avg
    }

    /// The *actual* execution time realized for a task with pre-drawn
    /// `quantile`, if executed on `node` in `state`.
    #[inline]
    pub fn actual_time(
        &self,
        task_type: TaskTypeId,
        node: usize,
        state: PState,
        quantile: Prob,
    ) -> Time {
        self.pmf(task_type, node, state)
            .quantile(quantile)
            .expect("trace quantiles are in [0, 1)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_cluster::{generate_cluster, ClusterGenConfig};

    fn table() -> (ExecTable, Cluster) {
        let seeds = SeedDerive::new(77);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        (ExecTable::generate(&cfg, &cluster, &seeds), cluster)
    }

    #[test]
    fn deeper_pstates_run_longer() {
        let (t, _) = table();
        for ty in 0..t.num_types() {
            for n in 0..t.num_nodes() {
                let mut last = 0.0;
                for s in PState::ALL {
                    let eet = t.eet(TaskTypeId(ty), n, s);
                    assert!(eet > last, "EET must increase with P-state depth");
                    last = eet;
                }
            }
        }
    }

    #[test]
    fn pstate_scaling_matches_ladder() {
        let (t, cluster) = table();
        let ty = TaskTypeId(0);
        for n in 0..t.num_nodes() {
            let mult = cluster.node(n).exec_time_multiplier(PState::P4);
            let base = t.eet(ty, n, PState::P0);
            let deep = t.eet(ty, n, PState::P4);
            assert!((deep / base - mult).abs() < 1e-9);
        }
    }

    #[test]
    fn base_eet_tracks_cvb_scale() {
        let (t, _) = table();
        // Average base-state EET should be near μ_task = 750 (within the CVB
        // sampling noise of a small matrix).
        let mut sum = 0.0;
        let mut count = 0;
        for ty in 0..t.num_types() {
            for n in 0..t.num_nodes() {
                sum += t.eet(TaskTypeId(ty), n, PState::P0);
                count += 1;
            }
        }
        let avg = sum / count as f64;
        assert!((avg - 750.0).abs() < 200.0, "avg base EET {avg}");
    }

    #[test]
    fn t_avg_is_grand_mean_of_eets() {
        let (t, _) = table();
        let mut sum = 0.0;
        let mut count = 0;
        for ty in 0..t.num_types() {
            for n in 0..t.num_nodes() {
                for s in PState::ALL {
                    sum += t.eet(TaskTypeId(ty), n, s);
                    count += 1;
                }
            }
        }
        assert!((t.t_avg() - sum / count as f64).abs() < 1e-9);
    }

    #[test]
    fn type_average_is_per_type_mean() {
        let (t, _) = table();
        let ty = TaskTypeId(3);
        let mut sum = 0.0;
        for n in 0..t.num_nodes() {
            for s in PState::ALL {
                sum += t.eet(ty, n, s);
            }
        }
        let expected = sum / (t.num_nodes() * NUM_PSTATES) as f64;
        assert!((t.type_average(ty) - expected).abs() < 1e-9);
    }

    #[test]
    fn actual_time_is_monotone_in_quantile() {
        let (t, _) = table();
        let ty = TaskTypeId(1);
        let a = t.actual_time(ty, 0, PState::P0, 0.1);
        let b = t.actual_time(ty, 0, PState::P0, 0.9);
        assert!(a <= b);
        assert!(a > 0.0);
    }

    #[test]
    fn actual_time_scales_with_pstate() {
        let (t, cluster) = table();
        let ty = TaskTypeId(1);
        let q = 0.5;
        let base = t.actual_time(ty, 0, PState::P0, q);
        let deep = t.actual_time(ty, 0, PState::P4, q);
        let mult = cluster.node(0).exec_time_multiplier(PState::P4);
        assert!((deep / base - mult).abs() < 1e-9);
    }

    #[test]
    fn table_is_deterministic() {
        let seeds = SeedDerive::new(5);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let a = ExecTable::generate(&cfg, &cluster, &seeds);
        let b = ExecTable::generate(&cfg, &cluster, &seeds);
        assert_eq!(a.t_avg(), b.t_avg());
        assert_eq!(
            a.pmf(TaskTypeId(0), 0, PState::P2),
            b.pmf(TaskTypeId(0), 0, PState::P2)
        );
    }

    #[test]
    #[should_panic(expected = "disagree on node count")]
    fn mismatched_cluster_rejected() {
        let seeds = SeedDerive::new(5);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let etc = EtcMatrix::from_means(1, 1, vec![100.0]);
        let _ = ExecTable::from_etc(&cfg, &cluster, &etc, &seeds);
    }

    #[test]
    fn templated_nodes_share_pmf_storage() {
        let seeds = SeedDerive::new(11);
        let cluster = generate_cluster(&ClusterGenConfig::scaled(64, 4), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let t = ExecTable::generate(&cfg, &cluster, &seeds);
        assert_eq!(t.num_templates(), 4);
        assert_eq!(t.num_nodes(), 64);
        let ty = TaskTypeId(2);
        for n in 0..cluster.num_nodes() {
            let tpl = t.template_of(n);
            assert_eq!(tpl, cluster.template_of(n));
            // Same template ⇒ the very same pmf allocation, not a copy.
            assert!(std::ptr::eq(
                t.pmf(ty, n, PState::P2),
                t.pmf(ty, tpl, PState::P2)
            ));
            assert_eq!(
                t.eet(ty, n, PState::P3).to_bits(),
                t.eet(ty, tpl, PState::P3).to_bits()
            );
        }
    }

    #[test]
    fn identity_cluster_keeps_one_template_per_node() {
        let (t, cluster) = table();
        assert_eq!(t.num_templates(), cluster.num_nodes());
        for n in 0..cluster.num_nodes() {
            assert_eq!(t.template_of(n), n);
        }
    }
}
