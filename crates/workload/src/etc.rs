//! CVB (coefficient-of-variation based) mean-execution-time matrix
//! generation, after \[AlS00\].
//!
//! The CVB method characterizes heterogeneity with three parameters: the
//! overall mean task execution time `μ_task`, the task-heterogeneity CV
//! `V_task`, and the machine-heterogeneity CV `V_mach`. For each task type
//! `t` a type mean is drawn from `Gamma(mean = μ_task, cv = V_task)`; then
//! for each node `i` the entry `ETC[t][i]` is drawn from
//! `Gamma(mean = type mean, cv = V_mach)`. Entries are *inconsistent*: node
//! orderings differ per task type.

use ecds_pmf::{Gamma, SeedDerive, Stream, Time};

use crate::task::TaskTypeId;

/// The matrix of mean execution times at the base P-state: `ETC[t][i]` is
/// the expected execution time of task type `t` on one core of node `i`
/// running in `P0`.
#[derive(Debug, Clone, PartialEq)]
pub struct EtcMatrix {
    num_types: usize,
    num_nodes: usize,
    /// Row-major `[type][node]`.
    means: Vec<Time>,
}

impl EtcMatrix {
    /// Generates the matrix with the CVB method, deterministically from the
    /// [`Stream::EtcMatrix`] stream.
    pub fn generate_cvb(
        num_types: usize,
        num_nodes: usize,
        mu_task: f64,
        v_task: f64,
        v_mach: f64,
        seeds: &SeedDerive,
    ) -> Self {
        assert!(num_types >= 1 && num_nodes >= 1, "matrix must be non-empty");
        let type_gamma = Gamma::from_mean_cv(mu_task, v_task);
        let mut means = Vec::with_capacity(num_types * num_nodes);
        for t in 0..num_types {
            let mut rng = seeds.rng(Stream::EtcMatrix, t as u64, 0);
            let type_mean = type_gamma.sample(&mut rng);
            let node_gamma = Gamma::from_mean_cv(type_mean, v_mach);
            for _ in 0..num_nodes {
                means.push(node_gamma.sample(&mut rng));
            }
        }
        Self {
            num_types,
            num_nodes,
            means,
        }
    }

    /// Builds a matrix directly from row-major means (for tests and custom
    /// scenarios).
    pub fn from_means(num_types: usize, num_nodes: usize, means: Vec<Time>) -> Self {
        assert_eq!(
            means.len(),
            num_types * num_nodes,
            "means length must be num_types × num_nodes"
        );
        assert!(
            means.iter().all(|m| m.is_finite() && *m > 0.0),
            "means must be finite and positive"
        );
        Self {
            num_types,
            num_nodes,
            means,
        }
    }

    /// Number of task types.
    #[inline]
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Mean execution time of `task_type` on `node` at the base P-state.
    #[inline]
    pub fn mean(&self, task_type: TaskTypeId, node: usize) -> Time {
        debug_assert!(task_type.0 < self.num_types && node < self.num_nodes);
        self.means[task_type.0 * self.num_nodes + node]
    }

    /// Grand mean over the whole matrix.
    pub fn grand_mean(&self) -> Time {
        self.means.iter().sum::<f64>() / self.means.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(seed: u64) -> EtcMatrix {
        EtcMatrix::generate_cvb(100, 8, 750.0, 0.25, 0.25, &SeedDerive::new(seed))
    }

    #[test]
    fn dimensions_match() {
        let m = gen(1);
        assert_eq!(m.num_types(), 100);
        assert_eq!(m.num_nodes(), 8);
    }

    #[test]
    fn entries_are_positive() {
        let m = gen(1);
        for t in 0..100 {
            for n in 0..8 {
                assert!(m.mean(TaskTypeId(t), n) > 0.0);
            }
        }
    }

    #[test]
    fn grand_mean_near_mu_task() {
        // Mean of the two-level gamma hierarchy is μ_task; with 800 entries
        // and CVs of 0.25 the grand mean should fall within a few percent.
        let m = gen(2);
        let gm = m.grand_mean();
        assert!((gm - 750.0).abs() < 60.0, "grand mean {gm}");
    }

    #[test]
    fn task_heterogeneity_present() {
        // Type means should differ noticeably (V_task = 0.25).
        let m = gen(3);
        let t0: f64 = (0..8).map(|n| m.mean(TaskTypeId(0), n)).sum::<f64>() / 8.0;
        let t1: f64 = (0..8).map(|n| m.mean(TaskTypeId(1), n)).sum::<f64>() / 8.0;
        assert!((t0 - t1).abs() > 1.0);
    }

    #[test]
    fn machine_heterogeneity_is_inconsistent() {
        // \[AlS00\] inconsistency: the fastest node for one type need not be
        // fastest for another. With 100 types this is a near-certainty.
        let m = gen(4);
        let argmin = |t: usize| {
            (0..8)
                .min_by(|&a, &b| {
                    m.mean(TaskTypeId(t), a)
                        .total_cmp(&m.mean(TaskTypeId(t), b))
                })
                .unwrap()
        };
        let first = argmin(0);
        assert!(
            (1..100).any(|t| argmin(t) != first),
            "ETC matrix is consistent — CVB should be inconsistent"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    fn from_means_round_trips() {
        let m = EtcMatrix::from_means(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.mean(TaskTypeId(0), 1), 2.0);
        assert_eq!(m.mean(TaskTypeId(1), 0), 3.0);
        assert_eq!(m.grand_mean(), 2.5);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn from_means_wrong_length_rejected() {
        let _ = EtcMatrix::from_means(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn from_means_rejects_nonpositive() {
        let _ = EtcMatrix::from_means(1, 2, vec![1.0, 0.0]);
    }
}
