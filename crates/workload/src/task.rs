//! Task identity and per-task trace data.

use ecds_pmf::{Prob, Time};

/// Identifier of a task *type* (one of the paper's 100 well-known types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskTypeId(pub usize);

/// Identifier of a task *instance* within one trial window (0-based arrival
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

impl std::fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "type{}", self.0)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// One task instance in a trial trace.
///
/// `quantile` is the pre-drawn uniform variate that determines the task's
/// *actual* execution time once an assignment is chosen: the simulator
/// inverts it through the execution-time pmf of the chosen
/// (type, node, P-state). Pre-drawing makes a task intrinsically fast or
/// slow across heuristics within a trial, so heuristic comparisons within a
/// trial are paired (see DESIGN.md §3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Instance id (arrival order within the window).
    pub id: TaskId,
    /// The task's type.
    pub type_id: TaskTypeId,
    /// Arrival time (also the mapping time — immediate mode).
    pub arrival: Time,
    /// Hard individual deadline `δ(z)`.
    pub deadline: Time,
    /// Pre-drawn uniform quantile in `[0, 1)` for actual-time realization.
    pub quantile: Prob,
}

impl Task {
    /// Slack between arrival and deadline.
    #[inline]
    pub fn relative_deadline(&self) -> Time {
        self.deadline - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_ids() {
        assert_eq!(TaskTypeId(3).to_string(), "type3");
        assert_eq!(TaskId(17).to_string(), "task17");
    }

    #[test]
    fn relative_deadline_subtracts_arrival() {
        let t = Task {
            id: TaskId(0),
            type_id: TaskTypeId(0),
            arrival: 100.0,
            deadline: 350.0,
            quantile: 0.5,
        };
        assert_eq!(t.relative_deadline(), 250.0);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TaskId(1) < TaskId(2));
        assert!(TaskTypeId(0) < TaskTypeId(9));
    }
}
