//! Streaming arrival sources for the continuous-serving engine.
//!
//! The classic trial shape materializes a whole [`WorkloadTrace`] up front;
//! a long-running serve loop instead pulls tasks one at a time through
//! [`ArrivalSource`]. Sources are deterministic — the task stream is a pure
//! function of the construction parameters and the number of pulls — and
//! checkpointable: [`ArrivalSource::save_state`] captures exactly the
//! mutable cursor/RNG state, so a restored source resumes the stream at
//! precisely the same position with the same future draws.

use ecds_persist::{DecodeError, Decoder, Encoder};
use ecds_pmf::{Exponential, SeedDerive, Stream, Time};
use rand::rngs::StdRng;
use rand::Rng;

use crate::arrivals::{ArrivalPhase, BurstPattern};
use crate::config::WorkloadConfig;
use crate::exec_table::ExecTable;
use crate::task::{Task, TaskId, TaskTypeId};
use crate::trace::WorkloadTrace;

/// A deterministic stream of tasks in nondecreasing arrival order with
/// densely increasing ids (`TaskId(0)`, `TaskId(1)`, ...).
///
/// `next_task` pulls the next task, or `None` when a finite stream is
/// exhausted (infinite sources never return `None`). The state methods
/// serialize only the *mutable* position of the stream — the construction
/// parameters (pattern, tables, seeds) are the caller's to reproduce, and
/// restoring into a source built with different parameters is undefined
/// (though never unsafe: decoding validates structural invariants).
pub trait ArrivalSource {
    /// Pulls the next task off the stream.
    fn next_task(&mut self) -> Option<Task>;

    /// Serializes the stream position (cursor, RNG state) for a checkpoint.
    fn save_state(&self, enc: &mut Encoder);

    /// Restores the stream position captured by
    /// [`ArrivalSource::save_state`].
    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError>;
}

/// The finite source: streams a pre-generated [`WorkloadTrace`] task by
/// task. This is the paper-scale path — a serve run over this source is
/// bit-identical to the classic fixed-trial engine over the same trace.
#[derive(Debug, Clone)]
pub struct TraceArrivalSource<'a> {
    tasks: &'a [Task],
    cursor: u64,
}

impl<'a> TraceArrivalSource<'a> {
    /// Streams `trace` from the beginning.
    pub fn new(trace: &'a WorkloadTrace) -> Self {
        Self::from_tasks(trace.tasks())
    }

    /// Streams an id-ordered task slice from the beginning.
    pub fn from_tasks(tasks: &'a [Task]) -> Self {
        debug_assert!(
            tasks.iter().enumerate().all(|(i, t)| t.id == TaskId(i)),
            "source tasks must be dense and id-ordered"
        );
        Self { tasks, cursor: 0 }
    }

    /// Tasks pulled so far.
    pub fn pulled(&self) -> u64 {
        self.cursor
    }
}

impl ArrivalSource for TraceArrivalSource<'_> {
    fn next_task(&mut self) -> Option<Task> {
        let task = self.tasks.get(self.cursor as usize).copied()?;
        self.cursor += 1;
        Some(task)
    }

    fn save_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.cursor);
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        let cursor = dec.u64()?;
        if cursor > self.tasks.len() as u64 {
            return Err(DecodeError::Corrupt("trace cursor beyond trace length"));
        }
        self.cursor = cursor;
        Ok(())
    }
}

/// The infinite source: an endless bursty-λ Poisson arrival stream cycling
/// a [`BurstPattern`]'s phases forever, with types, quantiles, and
/// deadlines drawn exactly as [`WorkloadTrace::generate`] draws them.
///
/// Uses the `b = 1` substreams of [`Stream::Arrivals`],
/// [`Stream::TaskTypes`], and [`Stream::Quantiles`] (the finite trace
/// generator owns `b = 0`), so a serve run over this source never shares
/// draws with the trial-shaped path of the same `(master seed, trial)`.
#[derive(Debug, Clone)]
pub struct BurstyArrivalSource {
    phases: Vec<ArrivalPhase>,
    type_averages: Vec<Time>,
    t_avg: Time,
    arrival_rng: StdRng,
    type_rng: StdRng,
    quantile_rng: StdRng,
    /// Index of the phase the next gap is drawn from.
    phase: usize,
    /// Tasks already emitted within the current phase.
    in_phase: usize,
    /// Arrival time of the most recently emitted task.
    now: Time,
    /// Id the next pulled task receives.
    next_id: u64,
}

impl BurstyArrivalSource {
    /// Builds the stream for `(seeds, trial)`, cycling `pattern` forever.
    ///
    /// `cfg` and `table` supply the type count, per-type average execution
    /// times, and `t_avg` for the Sec. VI deadline formula; both are copied
    /// out, so the source borrows nothing.
    pub fn new(
        pattern: BurstPattern,
        cfg: &WorkloadConfig,
        table: &ExecTable,
        seeds: &SeedDerive,
        trial: u64,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            cfg.num_types,
            table.num_types(),
            "config and table disagree on task-type count"
        );
        let type_averages = (0..cfg.num_types)
            .map(|i| table.type_average(TaskTypeId(i)))
            .collect();
        Self {
            phases: pattern.phases().to_vec(),
            type_averages,
            t_avg: table.t_avg(),
            arrival_rng: seeds.rng(Stream::Arrivals, trial, 1),
            type_rng: seeds.rng(Stream::TaskTypes, trial, 1),
            quantile_rng: seeds.rng(Stream::Quantiles, trial, 1),
            phase: 0,
            in_phase: 0,
            now: 0.0,
            next_id: 0,
        }
    }

    /// Arrival time of the most recently pulled task.
    pub fn now(&self) -> Time {
        self.now
    }
}

impl ArrivalSource for BurstyArrivalSource {
    fn next_task(&mut self) -> Option<Task> {
        let rate = self.phases[self.phase].rate;
        self.now += Exponential::new(rate).sample(&mut self.arrival_rng);
        self.in_phase += 1;
        if self.in_phase >= self.phases[self.phase].count {
            self.in_phase = 0;
            self.phase = (self.phase + 1) % self.phases.len();
        }
        let type_id = TaskTypeId(self.type_rng.gen_range(0..self.type_averages.len()));
        let quantile: f64 = self.quantile_rng.gen_range(0.0..1.0);
        let deadline = self.now + self.type_averages[type_id.0] + self.t_avg;
        let id = TaskId(self.next_id as usize);
        self.next_id += 1;
        Some(Task {
            id,
            type_id,
            arrival: self.now,
            deadline,
            quantile,
        })
    }

    fn save_state(&self, enc: &mut Encoder) {
        for word in self.arrival_rng.state() {
            enc.put_u64(word);
        }
        for word in self.type_rng.state() {
            enc.put_u64(word);
        }
        for word in self.quantile_rng.state() {
            enc.put_u64(word);
        }
        enc.put_u64(self.phase as u64);
        enc.put_u64(self.in_phase as u64);
        enc.put_f64(self.now);
        enc.put_u64(self.next_id);
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        let mut words = [[0u64; 4]; 3];
        for rng_words in words.iter_mut() {
            for word in rng_words.iter_mut() {
                *word = dec.u64()?;
            }
        }
        let phase = dec.u64()?;
        let in_phase = dec.u64()?;
        let now = dec.f64()?;
        let next_id = dec.u64()?;
        if phase as usize >= self.phases.len() {
            return Err(DecodeError::Corrupt("bursty phase index out of range"));
        }
        if in_phase as usize >= self.phases[phase as usize].count {
            return Err(DecodeError::Corrupt("bursty in-phase count out of range"));
        }
        if !now.is_finite() || now < 0.0 {
            return Err(DecodeError::Corrupt("bursty clock not a finite time"));
        }
        self.arrival_rng = StdRng::from_state(words[0]);
        self.type_rng = StdRng::from_state(words[1]);
        self.quantile_rng = StdRng::from_state(words[2]);
        self.phase = phase as usize;
        self.in_phase = in_phase as usize;
        self.now = now;
        self.next_id = next_id;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_cluster::{generate_cluster, ClusterGenConfig};

    fn setup() -> (WorkloadConfig, ExecTable, SeedDerive) {
        let seeds = SeedDerive::new(21);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let table = ExecTable::generate(&cfg, &cluster, &seeds);
        (cfg, table, seeds)
    }

    fn bit_eq(a: &Task, b: &Task) -> bool {
        a.id == b.id
            && a.type_id == b.type_id
            && a.arrival.to_bits() == b.arrival.to_bits()
            && a.deadline.to_bits() == b.deadline.to_bits()
            && a.quantile.to_bits() == b.quantile.to_bits()
    }

    #[test]
    fn trace_source_streams_the_trace_verbatim() {
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        let mut src = TraceArrivalSource::new(&trace);
        for expected in trace.tasks() {
            let got = src.next_task().expect("stream covers the trace");
            assert!(bit_eq(&got, expected));
        }
        assert_eq!(src.next_task(), None, "finite stream ends");
        assert_eq!(src.pulled(), trace.len() as u64);
    }

    #[test]
    fn trace_source_roundtrips_mid_stream() {
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 1);
        let mut src = TraceArrivalSource::new(&trace);
        for _ in 0..7 {
            let _ = src.next_task();
        }
        let mut enc = Encoder::new();
        src.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = TraceArrivalSource::new(&trace);
        restored
            .restore_state(&mut Decoder::new(&bytes))
            .expect("valid state");
        let a: Vec<Task> = std::iter::from_fn(|| src.next_task()).collect();
        let b: Vec<Task> = std::iter::from_fn(|| restored.next_task()).collect();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| bit_eq(x, y)));
    }

    #[test]
    fn trace_source_rejects_cursor_beyond_length() {
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        let mut enc = Encoder::new();
        enc.put_u64(trace.len() as u64 + 1);
        let bytes = enc.into_bytes();
        let mut src = TraceArrivalSource::new(&trace);
        assert_eq!(
            src.restore_state(&mut Decoder::new(&bytes)),
            Err(DecodeError::Corrupt("trace cursor beyond trace length"))
        );
    }

    #[test]
    fn bursty_source_is_infinite_ordered_and_valid() {
        let (cfg, table, seeds) = setup();
        let mut src = BurstyArrivalSource::new(BurstPattern::scaled(60), &cfg, &table, &seeds, 0);
        let mut last_arrival = 0.0f64;
        for i in 0..500 {
            let t = src.next_task().expect("infinite stream");
            assert_eq!(t.id, TaskId(i));
            assert!(t.arrival >= last_arrival);
            assert!(t.type_id.0 < cfg.num_types);
            assert!((0.0..1.0).contains(&t.quantile));
            let expected = t.arrival + table.type_average(t.type_id) + table.t_avg();
            assert_eq!(t.deadline.to_bits(), expected.to_bits());
            last_arrival = t.arrival;
        }
    }

    #[test]
    fn bursty_source_is_reproducible_and_trial_dependent() {
        let (cfg, table, seeds) = setup();
        let pull = |trial: u64| {
            let mut src =
                BurstyArrivalSource::new(BurstPattern::scaled(60), &cfg, &table, &seeds, trial);
            (0..100)
                .map(|_| src.next_task().unwrap())
                .collect::<Vec<_>>()
        };
        let a = pull(0);
        let b = pull(0);
        assert!(a.iter().zip(&b).all(|(x, y)| bit_eq(x, y)));
        let c = pull(1);
        assert!(a.iter().zip(&c).any(|(x, y)| !bit_eq(x, y)));
    }

    #[test]
    fn bursty_source_differs_from_the_finite_trace_stream() {
        // The infinite source draws from the b = 1 substreams, so it must
        // not replay the finite trace's arrivals.
        let (cfg, table, seeds) = setup();
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        let mut src = BurstyArrivalSource::new(cfg.arrivals.clone(), &cfg, &table, &seeds, 0);
        let first = src.next_task().unwrap();
        assert_ne!(
            first.arrival.to_bits(),
            trace.tasks()[0].arrival.to_bits(),
            "substream b=1 must not alias b=0"
        );
    }

    #[test]
    fn bursty_source_roundtrips_mid_stream_bit_identically() {
        let (cfg, table, seeds) = setup();
        let mut src = BurstyArrivalSource::new(BurstPattern::scaled(60), &cfg, &table, &seeds, 3);
        for _ in 0..137 {
            let _ = src.next_task();
        }
        let mut enc = Encoder::new();
        src.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored =
            BurstyArrivalSource::new(BurstPattern::scaled(60), &cfg, &table, &seeds, 3);
        restored
            .restore_state(&mut Decoder::new(&bytes))
            .expect("valid state");
        for _ in 0..300 {
            let a = src.next_task().unwrap();
            let b = restored.next_task().unwrap();
            assert!(bit_eq(&a, &b), "restored stream diverged at {:?}", a.id);
        }
    }

    #[test]
    fn bursty_restore_rejects_out_of_range_phase() {
        let (cfg, table, seeds) = setup();
        let mut src = BurstyArrivalSource::new(BurstPattern::scaled(60), &cfg, &table, &seeds, 0);
        let mut enc = Encoder::new();
        src.save_state(&mut enc);
        let mut bytes = enc.into_bytes();
        // The phase index is the 13th u64 (after three 4-word RNG states).
        let off = 12 * 8;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            src.restore_state(&mut Decoder::new(&bytes)),
            Err(DecodeError::Corrupt("bursty phase index out of range"))
        );
    }

    #[test]
    fn bursty_phases_cycle_forever() {
        let (cfg, table, seeds) = setup();
        let pattern = BurstPattern::scaled(60);
        let per_cycle = pattern.total_tasks();
        let mut src = BurstyArrivalSource::new(pattern, &cfg, &table, &seeds, 0);
        // Pull through three full cycles without exhausting the stream.
        for _ in 0..3 * per_cycle {
            assert!(src.next_task().is_some());
        }
    }
}
