//! Property tests of workload-generation invariants.

use ecds_cluster::{generate_cluster, ClusterGenConfig, PState};
use ecds_pmf::SeedDerive;
use ecds_workload::{
    BurstPattern, EtcMatrix, ExecTable, TaskTypeId, WorkloadConfig, WorkloadTrace,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cvb_entries_are_positive_and_centered(
        seed in 0u64..1000,
        mu in 100.0f64..2000.0,
        v_task in 0.05f64..0.6,
        v_mach in 0.05f64..0.6,
    ) {
        let m = EtcMatrix::generate_cvb(30, 6, mu, v_task, v_mach, &SeedDerive::new(seed));
        for t in 0..30 {
            for n in 0..6 {
                prop_assert!(m.mean(TaskTypeId(t), n) > 0.0);
            }
        }
        // Grand mean concentrates around μ_task (generous tolerance: 180
        // correlated draws with two CV layers).
        let gm = m.grand_mean();
        prop_assert!(gm > mu * 0.5 && gm < mu * 1.6, "grand mean {gm} vs mu {mu}");
    }

    #[test]
    fn arrivals_are_sorted_positive_and_complete(
        seed in 0u64..1000,
        fast_inv in 2.0f64..40.0,
        slow_inv in 40.0f64..400.0,
        window in 10usize..200,
    ) {
        let pattern = BurstPattern::scaled_with_rates(window, 1.0 / fast_inv, 1.0 / slow_inv);
        prop_assert_eq!(pattern.total_tasks(), window);
        let mut rng = SeedDerive::new(seed).rng(ecds_pmf::Stream::Arrivals, 0, 0);
        let times = pattern.generate(&mut rng);
        prop_assert_eq!(times.len(), window);
        prop_assert!(times[0] > 0.0);
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deadlines_always_leave_positive_slack(seed in 0u64..200) {
        let seeds = SeedDerive::new(seed);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let table = ExecTable::generate(&cfg, &cluster, &seeds);
        let trace = WorkloadTrace::generate(&cfg, &table, &seeds, 0);
        for task in trace.tasks() {
            prop_assert!(task.deadline > task.arrival);
            // The load factor alone guarantees at least t_avg of slack.
            prop_assert!(task.relative_deadline() >= table.t_avg());
        }
    }

    #[test]
    fn exec_table_is_monotone_in_pstate(seed in 0u64..100) {
        let seeds = SeedDerive::new(seed);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let table = ExecTable::generate(&cfg, &cluster, &seeds);
        for t in 0..cfg.num_types {
            for n in 0..cluster.num_nodes() {
                for w in PState::ALL.windows(2) {
                    prop_assert!(
                        table.eet(TaskTypeId(t), n, w[0]) < table.eet(TaskTypeId(t), n, w[1])
                    );
                }
            }
        }
    }

    #[test]
    fn actual_times_are_within_pmf_support(seed in 0u64..100, q in 0.0f64..1.0) {
        let seeds = SeedDerive::new(seed);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let table = ExecTable::generate(&cfg, &cluster, &seeds);
        for t in 0..cfg.num_types {
            let pmf = table.pmf(TaskTypeId(t), 0, PState::P2);
            let actual = table.actual_time(TaskTypeId(t), 0, PState::P2, q);
            prop_assert!(actual >= pmf.min_value() && actual <= pmf.max_value());
        }
    }

    #[test]
    fn traces_pair_across_heuristics(seed in 0u64..100, trial in 0u64..20) {
        // Trace generation must not depend on anything but (seed, trial) —
        // the pairing property the experiment grid relies on.
        let seeds = SeedDerive::new(seed);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let cfg = WorkloadConfig::small_for_tests();
        let table = ExecTable::generate(&cfg, &cluster, &seeds);
        let a = WorkloadTrace::generate(&cfg, &table, &seeds, trial);
        let b = WorkloadTrace::generate(&cfg, &table, &seeds, trial);
        prop_assert_eq!(a, b);
    }
}
