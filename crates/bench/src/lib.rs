//! Experiment harness regenerating the paper's evaluation (Figures 2–6 and
//! the Sec. VII headline numbers), plus ablation studies.
//!
//! The paper's full study is a 4 × 4 grid — {SQ, MECT, LL, Random} ×
//! {none, en, rob, en+rob} — of 50 simulation trials each, summarized as
//! box-and-whiskers plots of missed deadlines. [`ExperimentGrid`] runs that
//! grid (trials fan out across threads; every cell shares the same 50
//! traces so comparisons are paired), and [`report`] renders each figure as
//! an ASCII box plot, a markdown table, and CSV.
//!
//! Binaries:
//!
//! * `experiments` — regenerates Figures 2–6 (`cargo run --release -p
//!   ecds-bench --bin experiments -- all`),
//! * `ablations` — our extension studies (ζ_mul adaptivity, ρ_thresh sweep,
//!   impulse-cap sensitivity, idle downshift, arrival patterns).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiment;
pub mod parallel;
pub mod report;

pub use experiment::{CellResult, ExperimentConfig, ExperimentGrid};
pub use parallel::{default_threads, run_parallel};
