//! A tiny work-stealing-free parallel map over an index range.
//!
//! Simulation trials are embarrassingly parallel and read-only over the
//! scenario, so `std::thread::scope` plus an atomic work index is all the
//! machinery needed (no extra runtime dependencies; see the workspace
//! dependency policy in DESIGN.md §6). Workers claim indices in small
//! contiguous chunks — one atomic RMW per chunk instead of per item — and
//! results are returned in index order regardless of scheduling, so output
//! is deterministic.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `work` to every index in `0..count` across `threads` OS threads
/// and returns the results in index order.
///
/// `work` must be safe to call concurrently from multiple threads (`Sync`);
/// each invocation gets a distinct index exactly once.
///
/// # Panics
///
/// If any `work(idx)` panics, the first panic (by observation order) is
/// re-raised on the caller's thread with its original payload once every
/// worker has stopped — not the scope's generic "a scoped thread panicked"
/// message. Workers drain quickly after a panic: the work index is pushed
/// past `count` so remaining items are skipped.
pub fn run_parallel<T, F>(count: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    if count == 0 {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let workers = threads.min(count);
    // Claim granularity: ~4 chunks per worker balances contention (one
    // atomic RMW per chunk) against tail imbalance (the last chunks may
    // land unevenly when per-item cost varies).
    let chunk = (count / (workers * 4)).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                'claim: loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    for idx in start..(start + chunk).min(count) {
                        match catch_unwind(AssertUnwindSafe(|| work(idx))) {
                            Ok(value) => local.push((idx, value)),
                            Err(payload) => {
                                let mut slot = panic.lock().expect("panic slot");
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                // Park the index past the end so every
                                // worker stops claiming new chunks.
                                next.store(count, Ordering::Relaxed);
                                break 'claim;
                            }
                        }
                    }
                }
                results
                    .lock()
                    .expect("worker panicked while holding results")
                    .extend(local);
            });
        }
    });
    if let Some(payload) = panic.into_inner().expect("panic slot") {
        resume_unwind(payload);
    }
    let mut collected = results.into_inner().expect("no poisoned lock after scope");
    collected.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(collected.len(), count);
    collected.into_iter().map(|(_, v)| v).collect()
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_every_index_in_order() {
        let out = run_parallel(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let out = run_parallel(10, 1, |i| i + 1);
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let out = run_parallel(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn zero_count_returns_empty() {
        let out: Vec<usize> = run_parallel(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let a = run_parallel(50, 1, |i| i * i);
        let b = run_parallel(50, 8, |i| i * i);
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_chunk_boundaries_cover_every_index_once() {
        // 37 items over 2 workers claims in chunks of 4; the final partial
        // chunk (36) and the overshooting claims past `count` must neither
        // drop nor duplicate indices.
        use std::sync::atomic::AtomicUsize;
        let calls: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        let out = run_parallel(37, 2, |i| {
            calls[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..37).collect::<Vec<_>>());
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} claim count");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = run_parallel(1, 0, |i| i);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates_with_original_payload() {
        // A panicking item must neither hang the map nor surface as the
        // scope's generic panic: the caller sees the worker's own payload.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_parallel(64, 4, |i| {
                if i == 17 {
                    panic!("trial 17 exploded");
                }
                i
            })
        }))
        .expect_err("the panic must propagate");
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("payload must be the worker's message");
        assert_eq!(message, "trial 17 exploded");
    }

    #[test]
    fn first_panic_wins_when_several_items_panic() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_parallel(8, 2, |i| -> usize { panic!("boom {i}") })
        }))
        .expect_err("the panic must propagate");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted payload");
        assert!(message.starts_with("boom "), "got: {message}");
    }
}
