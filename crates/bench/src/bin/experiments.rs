//! Regenerates the paper's Figures 2–6 and Sec. VII headline numbers.
//!
//! ```text
//! experiments [fig2|fig3|fig4|fig5|fig6|all] [--trials N] [--seed S]
//!             [--threads T] [--out DIR] [--small]
//! ```
//!
//! `all` (the default) runs the full 4 × 4 grid once and renders every
//! figure from it. Raw per-trial data is written to `DIR/grid.csv`
//! (default `results/`), the report to `DIR/report.md`.

use std::path::PathBuf;

use ecds_bench::report::{
    grid_csv, render_best_figure, render_full_report, render_headline_analysis,
    render_heuristic_figure,
};
use ecds_bench::{ExperimentConfig, ExperimentGrid};
use ecds_core::HeuristicKind;
use ecds_sim::Scenario;

struct Args {
    command: String,
    trials: u64,
    seed: u64,
    threads: usize,
    out: PathBuf,
    small: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        trials: 50,
        seed: 1353, // default draw; chosen because its cluster reproduces the paper's operating point (see EXPERIMENTS.md)
        threads: ecds_bench::parallel::default_threads(),
        out: PathBuf::from("results"),
        small: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "all" => args.command = arg,
            "--trials" => {
                args.trials = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials needs a number")
            }
            "--seed" => {
                args.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--threads" => {
                args.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number")
            }
            "--out" => args.out = PathBuf::from(iter.next().expect("--out needs a path")),
            "--small" => args.small = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [fig2|fig3|fig4|fig5|fig6|all] \
                     [--trials N] [--seed S] [--threads T] [--out DIR] [--small]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let scenario = if args.small {
        Scenario::small_for_tests(args.seed)
    } else {
        Scenario::paper(args.seed)
    };
    let mut config = ExperimentConfig::paper(args.seed);
    config.trials = args.trials;
    config.threads = args.threads;

    eprintln!(
        "running grid: {} heuristics × {} variants × {} trials on {} threads \
         (window {}, budget {:.3e})",
        config.kinds.len(),
        config.variants.len(),
        config.trials,
        config.threads,
        scenario.workload().window,
        scenario.energy_budget().unwrap_or(f64::INFINITY),
    );
    // Progress reporting on stderr only — never flows into the report
    // (clippy.toml / ecds-lint R2 ban the wall clock from result paths).
    #[allow(clippy::disallowed_methods)]
    let started = std::time::Instant::now();
    let grid = ExperimentGrid::run(config, &scenario);
    eprintln!("grid finished in {:.1}s", started.elapsed().as_secs_f64());

    let report = match args.command.as_str() {
        "fig2" => render_heuristic_figure(&grid, HeuristicKind::ShortestQueue),
        "fig3" => render_heuristic_figure(&grid, HeuristicKind::Mect),
        "fig4" => render_heuristic_figure(&grid, HeuristicKind::LightestLoad),
        "fig5" => render_heuristic_figure(&grid, HeuristicKind::Random),
        "fig6" => format!(
            "{}\n{}",
            render_best_figure(&grid),
            render_headline_analysis(&grid)
        ),
        _ => render_full_report(&grid),
    };
    println!("{report}");

    std::fs::create_dir_all(&args.out).expect("create output directory");
    std::fs::write(args.out.join("grid.csv"), grid_csv(&grid)).expect("write grid.csv");
    std::fs::write(args.out.join("report.md"), &report).expect("write report.md");
    eprintln!(
        "wrote {}/grid.csv and {}/report.md",
        args.out.display(),
        args.out.display()
    );
}
