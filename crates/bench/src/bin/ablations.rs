//! Ablation studies for the design choices DESIGN.md calls out, plus the
//! paper's future-work extensions (implemented in `ecds-ext`).
//!
//! ```text
//! ablations [zeta-mul|rho-thresh|impulse-cap|idle-downshift|arrivals|zoo|all]
//!           [--trials N] [--seed S] [--threads T] [--small]
//! ```
//!
//! Each study prints a markdown table of median missed deadlines.

use ecds_bench::parallel::{default_threads, run_parallel};
use ecds_core::{
    DeterministicMct, EnergyFilter, Filter, FilterVariant, Heuristic, HeuristicKind, KPercentBest,
    MinimumExecutionTime, MinimumExpectedCompletionTime, OpportunisticLoadBalancing,
    RobustnessFilter, Scheduler, ZetaMulPolicy,
};
use ecds_pmf::ReductionPolicy;
use ecds_sim::{Scenario, Simulation};
use ecds_stats::{BoxStats, MarkdownTable};
use ecds_workload::{BurstPattern, WorkloadConfig};

struct Args {
    command: String,
    trials: u64,
    seed: u64,
    threads: usize,
    small: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        trials: 20,
        seed: 1353,
        threads: default_threads(),
        small: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "zeta-mul" | "rho-thresh" | "impulse-cap" | "idle-downshift" | "arrivals" | "zoo"
            | "all" => args.command = arg,
            "--trials" => args.trials = iter.next().and_then(|v| v.parse().ok()).expect("number"),
            "--seed" => args.seed = iter.next().and_then(|v| v.parse().ok()).expect("number"),
            "--threads" => args.threads = iter.next().and_then(|v| v.parse().ok()).expect("number"),
            "--small" => args.small = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: ablations [zeta-mul|rho-thresh|impulse-cap|idle-downshift|arrivals|zoo|all] \
                     [--trials N] [--seed S] [--threads T] [--small]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn scenario_for(args: &Args) -> Scenario {
    if args.small {
        Scenario::small_for_tests(args.seed)
    } else {
        Scenario::paper(args.seed)
    }
}

/// Runs LL with a custom scheduler builder over `trials` trials and
/// reports missed-deadline stats.
fn run_variant<F>(scenario: &Scenario, trials: u64, threads: usize, build: F) -> BoxStats
where
    F: Fn(u64) -> Box<Scheduler> + Sync,
{
    let traces: Vec<_> = (0..trials).map(|t| scenario.trace(t)).collect();
    let missed = run_parallel(trials as usize, threads, |t| {
        let mut sched = build(t as u64);
        Simulation::new(scenario, &traces[t])
            .run(sched.as_mut())
            .missed() as f64
    });
    BoxStats::from_samples(&missed).expect("non-empty")
}

fn ll_with_filters(
    scenario: &Scenario,
    filters: Vec<Box<dyn Filter>>,
    policy: ReductionPolicy,
) -> Box<Scheduler> {
    Box::new(Scheduler::new(
        Box::new(ecds_core::LightestLoad),
        filters,
        scenario.energy_budget().unwrap_or(f64::INFINITY),
        policy,
    ))
}

/// ζ_mul adaptivity: the paper's depth-adaptive schedule vs constant
/// multipliers.
fn ablate_zeta_mul(args: &Args) {
    let scenario = scenario_for(args);
    let mut table = MarkdownTable::new(&["zeta_mul policy", "median missed", "mean"]);
    let policies: Vec<(&str, ZetaMulPolicy)> = vec![
        ("adaptive (paper)", ZetaMulPolicy::paper()),
        ("constant 0.8", ZetaMulPolicy::constant(0.8)),
        ("constant 1.0", ZetaMulPolicy::constant(1.0)),
        ("constant 1.2", ZetaMulPolicy::constant(1.2)),
    ];
    for (name, policy) in policies {
        let stats = run_variant(&scenario, args.trials, args.threads, |_| {
            ll_with_filters(
                &scenario,
                vec![
                    Box::new(EnergyFilter::with_policy(policy)),
                    Box::new(RobustnessFilter::paper()),
                ],
                ReductionPolicy::default(),
            )
        });
        table.push_row(vec![
            name.to_string(),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.mean),
        ]);
    }
    println!("## Ablation: energy-filter ζ_mul adaptivity (LL/en+rob)\n");
    println!("{}", table.render());
}

/// ρ_thresh sweep for the robustness filter.
fn ablate_rho_thresh(args: &Args) {
    let scenario = scenario_for(args);
    let mut table = MarkdownTable::new(&["rho_thresh", "median missed", "mean"]);
    for thresh in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let stats = run_variant(&scenario, args.trials, args.threads, |_| {
            ll_with_filters(
                &scenario,
                vec![
                    Box::new(EnergyFilter::paper()),
                    Box::new(RobustnessFilter::with_threshold(thresh)),
                ],
                ReductionPolicy::default(),
            )
        });
        table.push_row(vec![
            format!("{thresh:.2}"),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.mean),
        ]);
    }
    println!("## Ablation: robustness-filter threshold (LL/en+rob)\n");
    println!("{}", table.render());
}

/// Impulse-cap sensitivity: how coarse can convolution reduction get before
/// allocation quality degrades?
fn ablate_impulse_cap(args: &Args) {
    let scenario = scenario_for(args);
    let mut table = MarkdownTable::new(&["max impulses", "median missed", "mean"]);
    for cap in [2usize, 4, 8, 24, 64] {
        let stats = run_variant(&scenario, args.trials, args.threads, |_| {
            ll_with_filters(
                &scenario,
                FilterVariant::EnergyAndRobustness.build(),
                ReductionPolicy::new(cap),
            )
        });
        table.push_row(vec![
            cap.to_string(),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.mean),
        ]);
    }
    println!("## Ablation: convolution impulse cap (LL/en+rob)\n");
    println!("{}", table.render());
}

/// Idle P-state policy: the paper-faithful OS power manager parking idle
/// cores in P4 vs cores lingering in their last task's P-state
/// (DESIGN.md §3.2).
fn ablate_idle_downshift(args: &Args) {
    let parked = scenario_for(args);
    let mut linger_cfg = *parked.sim_config();
    linger_cfg.idle_downshift = None;
    let linger = parked.with_sim_config(linger_cfg);
    let mut table = MarkdownTable::new(&["idle policy", "median missed", "mean"]);
    for (name, scenario) in [("downshift to P4 (paper)", &parked), ("linger", &linger)] {
        let stats = run_variant(scenario, args.trials, args.threads, |trial| {
            ecds_core::build_scheduler(
                HeuristicKind::LightestLoad,
                FilterVariant::EnergyAndRobustness,
                scenario,
                trial,
            )
        });
        table.push_row(vec![
            name.to_string(),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.mean),
        ]);
    }
    println!("## Ablation: idle P-state policy (LL/en+rob)\n");
    println!("{}", table.render());
}

/// Arrival-pattern variety (paper future work): constant equilibrium rate
/// vs the bursty paper pattern.
fn ablate_arrivals(args: &Args) {
    let window = if args.small { 60 } else { 1000 };
    let patterns: Vec<(&str, BurstPattern)> = vec![
        ("bursty (paper)", BurstPattern::scaled(window)),
        (
            "constant λ_eq",
            BurstPattern::constant(window, ecds_workload::arrivals::LAMBDA_EQ),
        ),
        (
            "constant λ_fast",
            BurstPattern::constant(window, ecds_workload::arrivals::LAMBDA_FAST),
        ),
        (
            "constant λ_slow",
            BurstPattern::constant(window, ecds_workload::arrivals::LAMBDA_SLOW),
        ),
    ];
    let mut table = MarkdownTable::new(&["arrival pattern", "median missed", "mean"]);
    for (name, pattern) in patterns {
        let mut wl = if args.small {
            WorkloadConfig::small_for_tests()
        } else {
            WorkloadConfig::paper()
        };
        wl.window = window;
        wl.arrivals = pattern;
        let cluster_cfg = if args.small {
            ecds_cluster::ClusterGenConfig::small_for_tests()
        } else {
            ecds_cluster::ClusterGenConfig::paper()
        };
        let scenario = Scenario::with_configs(args.seed, cluster_cfg, wl);
        let stats = run_variant(&scenario, args.trials, args.threads, |trial| {
            ecds_core::build_scheduler(
                HeuristicKind::LightestLoad,
                FilterVariant::EnergyAndRobustness,
                &scenario,
                trial,
            )
        });
        table.push_row(vec![
            name.to_string(),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.mean),
        ]);
    }
    println!("## Ablation: arrival patterns (LL/en+rob)\n");
    println!("{}", table.render());
}

/// Literature-baseline zoo (\[MaA99\] family) plus the deterministic-model
/// contrast, all behind the paper's en+rob filters.
fn ablate_heuristic_zoo(args: &Args) {
    let scenario = scenario_for(args);
    let budget = scenario.energy_budget().unwrap_or(f64::INFINITY);
    let mut table = MarkdownTable::new(&["heuristic (en+rob)", "median missed", "mean"]);
    type HeuristicBuilder = fn() -> Box<dyn Heuristic>;
    let builders: Vec<(&str, HeuristicBuilder)> = vec![
        ("MECT (stochastic)", || {
            Box::new(MinimumExpectedCompletionTime)
        }),
        ("det-MCT (deterministic)", || Box::new(DeterministicMct)),
        ("OLB", || Box::new(OpportunisticLoadBalancing)),
        ("MET", || Box::new(MinimumExecutionTime)),
        ("KPB (k=20%)", || Box::new(KPercentBest::default())),
        ("KPB (k=50%)", || Box::new(KPercentBest::new(50.0))),
    ];
    for (name, build) in builders {
        let stats = run_variant(&scenario, args.trials, args.threads, |_| {
            Box::new(Scheduler::new(
                build(),
                FilterVariant::EnergyAndRobustness.build(),
                budget,
                ReductionPolicy::default(),
            ))
        });
        table.push_row(vec![
            name.to_string(),
            format!("{:.1}", stats.median),
            format!("{:.1}", stats.mean),
        ]);
    }
    println!("## Ablation: heuristic zoo — [MaA99] baselines and the deterministic contrast\n");
    println!("{}", table.render());
}

fn main() {
    let args = parse_args();
    let run_all = args.command == "all";
    if run_all || args.command == "zeta-mul" {
        ablate_zeta_mul(&args);
    }
    if run_all || args.command == "rho-thresh" {
        ablate_rho_thresh(&args);
    }
    if run_all || args.command == "impulse-cap" {
        ablate_impulse_cap(&args);
    }
    if run_all || args.command == "idle-downshift" {
        ablate_idle_downshift(&args);
    }
    if run_all || args.command == "arrivals" {
        ablate_arrivals(&args);
    }
    if run_all || args.command == "zoo" {
        ablate_heuristic_zoo(&args);
    }
}
