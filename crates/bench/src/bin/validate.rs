//! Robustness-model validation — the paper's contribution (a): "we develop
//! a model of robustness for this environment and **validate its use in
//! allocation decisions**".
//!
//! The robustness value ρ(i,j,k,π,t_l,z) claims to be the *probability*
//! that task z meets its deadline under that assignment. If the model is
//! sound, it must be *calibrated*: among all assignments predicted to
//! succeed with probability ≈ p, the realized on-time fraction must be
//! ≈ p. This binary records every chosen assignment's predicted ρ across
//! many trials, bins predictions by decile, and prints a reliability
//! table (predicted vs realized), the Brier score, and the same table for
//! the *deterministic* completion-time model (det-MCT's binary
//! prediction) as the contrast.
//!
//! ```text
//! validate [--trials N] [--seed S] [--small]
//! ```

use ecds_core::{RandomChoice, RobustnessFilter, Scheduler};
use ecds_pmf::ReductionPolicy;
use ecds_pmf::Stream;
use ecds_sim::{Scenario, SimConfig, Simulation};
use ecds_stats::MarkdownTable;

struct Args {
    trials: u64,
    seed: u64,
    small: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        trials: 10,
        seed: 1353,
        small: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trials" => args.trials = iter.next().and_then(|v| v.parse().ok()).expect("number"),
            "--seed" => args.seed = iter.next().and_then(|v| v.parse().ok()).expect("number"),
            "--small" => args.small = true,
            "--help" | "-h" => {
                eprintln!("usage: validate [--trials N] [--seed S] [--small]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // Validation isolates the *deadline* prediction, so run without the
    // energy cutoff (ρ models deadlines, not budget exhaustion) and
    // without the energy filter (we want predictions across the whole ρ
    // range, including low ones; the rob filter is also dropped for the
    // same reason).
    let base = if args.small {
        Scenario::small_for_tests(args.seed)
    } else {
        Scenario::paper(args.seed)
    };
    let scenario = base.with_sim_config(SimConfig::unconstrained());

    // (predicted rho, realized on-time) pairs pooled over trials. The
    // Random heuristic is the right probe: an optimizing heuristic only
    // ever *chooses* high-ρ assignments, leaving the low-probability bins
    // empty; uniform choice exercises the whole prediction range.
    let mut pairs: Vec<(f64, bool)> = Vec::new();
    for trial in 0..args.trials {
        let trace = scenario.trace(trial);
        let mut sched = Scheduler::new(
            Box::new(RandomChoice::new(scenario.seeds().seed(
                Stream::Heuristic,
                trial,
                1,
            ))),
            // A zero-threshold robustness filter keeps the pipeline
            // identical to the paper's while filtering nothing.
            vec![Box::new(RobustnessFilter::with_threshold(0.0))],
            f64::INFINITY,
            ReductionPolicy::default(),
        )
        .with_prediction_recording();
        let result = Simulation::new(&scenario, &trace).run(&mut sched);
        for &(task, rho) in sched.predictions() {
            let outcome = &result.outcomes()[task.0];
            pairs.push((rho, outcome.on_time()));
        }
    }

    // Reliability table by decile.
    let mut table = MarkdownTable::new(&[
        "predicted rho bin",
        "assignments",
        "mean predicted",
        "realized on-time",
        "gap",
    ]);
    let mut brier = 0.0;
    for bin in 0..10 {
        let lo = bin as f64 / 10.0;
        let hi = lo + 0.1;
        let in_bin: Vec<&(f64, bool)> = pairs
            .iter()
            .filter(|(rho, _)| *rho >= lo && (*rho < hi || (bin == 9 && *rho <= 1.0)))
            .collect();
        if in_bin.is_empty() {
            table.push_row(vec![
                format!("[{lo:.1}, {hi:.1})"),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let mean_pred: f64 = in_bin.iter().map(|(rho, _)| rho).sum::<f64>() / in_bin.len() as f64;
        let realized: f64 =
            in_bin.iter().filter(|(_, hit)| *hit).count() as f64 / in_bin.len() as f64;
        table.push_row(vec![
            format!("[{lo:.1}, {hi:.1})"),
            in_bin.len().to_string(),
            format!("{mean_pred:.3}"),
            format!("{realized:.3}"),
            format!("{:+.3}", realized - mean_pred),
        ]);
    }
    for (rho, hit) in &pairs {
        let err = rho - if *hit { 1.0 } else { 0.0 };
        brier += err * err;
    }
    brier /= pairs.len().max(1) as f64;

    println!(
        "## Robustness-model calibration ({} assignments over {} trials)\n",
        pairs.len(),
        args.trials
    );
    println!("{}", table.render());
    println!("Brier score: {brier:.4} (0 = perfect; 0.25 = uninformed coin)\n");
    println!(
        "A calibrated model shows realized ≈ predicted in every populated\n\
         bin — that is what licenses using ρ inside allocation decisions\n\
         (LL's load product and the robustness filter's threshold)."
    );
}
