//! Figure rendering: each paper figure as ASCII box plots, a markdown
//! table, and CSV.

use ecds_core::{FilterVariant, HeuristicKind};
use ecds_stats::{improvement_pct, mann_whitney_u, render_boxplots, CsvWriter, MarkdownTable};

use crate::experiment::{CellResult, ExperimentGrid};

/// Width of rendered ASCII box plots.
const PLOT_WIDTH: usize = 64;

/// Renders one heuristic's figure (Figures 2–5): four filter variants of
/// `kind` as box plots plus a summary table.
pub fn render_heuristic_figure(grid: &ExperimentGrid, kind: HeuristicKind) -> String {
    let cells = grid.heuristic_row(kind);
    render_cells(
        &format!(
            "Missed deadlines over {} trials — {} heuristic, all filter variants",
            grid.config.trials,
            kind.label()
        ),
        &cells,
    )
}

/// Renders Figure 6: the best variant of every heuristic side by side.
pub fn render_best_figure(grid: &ExperimentGrid) -> String {
    let cells = grid.best_per_heuristic();
    render_cells(
        &format!(
            "Missed deadlines over {} trials — best variant of each heuristic",
            grid.config.trials
        ),
        &cells,
    )
}

fn render_cells(title: &str, cells: &[&CellResult]) -> String {
    let series: Vec<(String, ecds_stats::BoxStats)> =
        cells.iter().map(|c| (c.label(), c.stats())).collect();
    let mut table = MarkdownTable::new(&[
        "variant", "median", "mean", "q1", "q3", "whisker-", "whisker+", "min", "max",
    ]);
    for cell in cells {
        let s = cell.stats();
        table.push_row(vec![
            cell.label(),
            format!("{:.1}", s.median),
            format!("{:.1}", s.mean),
            format!("{:.1}", s.q1),
            format!("{:.1}", s.q3),
            format!("{:.1}", s.whisker_lo),
            format!("{:.1}", s.whisker_hi),
            format!("{:.1}", s.min),
            format!("{:.1}", s.max),
        ]);
    }
    format!(
        "## {title}\n\n{}\n{}",
        render_boxplots(&series, PLOT_WIDTH),
        table.render()
    )
}

/// The Sec. VII headline analysis: filtering improvements per heuristic,
/// the energy-filter anomaly on Random, and the Random-vs-LL gap.
pub fn render_headline_analysis(grid: &ExperimentGrid) -> String {
    let mut out = String::from("## Headline comparisons (paper Sec. VII)\n\n");
    for kind in &grid.config.kinds {
        let Some(none) = grid.cell(*kind, FilterVariant::None) else {
            continue;
        };
        let base = none.median_missed();
        for variant in [
            FilterVariant::Energy,
            FilterVariant::Robustness,
            FilterVariant::EnergyAndRobustness,
        ] {
            let Some(cell) = grid.cell(*kind, variant) else {
                continue;
            };
            let med = cell.median_missed();
            let rel = improvement_pct(base, med)
                .map(|p| format!("{p:+.1}% vs unfiltered"))
                .unwrap_or_else(|| "baseline zero".to_string());
            // The paper quotes improvements as percentage points of the
            // window as well; report both conventions, plus a rank-sum
            // significance check against the unfiltered distribution.
            let window_pts = (base - med) / grid_window(grid) * 100.0;
            let sig = mann_whitney_u(&cell.missed, &none.missed)
                .map(|t| {
                    if t.p_two_sided < 0.001 {
                        "p<0.001".to_string()
                    } else {
                        format!("p={:.3}", t.p_two_sided)
                    }
                })
                .unwrap_or_else(|| "p=?".to_string());
            out.push_str(&format!(
                "- {}: median {:.1} ({rel}; {window_pts:+.2} window pts; {sig})\n",
                cell.label(),
                med
            ));
        }
    }
    // Random en+rob vs best LL — the "filters drive performance" point.
    if let (Some(rand), Some(ll)) = (
        grid.cell(HeuristicKind::Random, FilterVariant::EnergyAndRobustness),
        grid.cell(
            HeuristicKind::LightestLoad,
            FilterVariant::EnergyAndRobustness,
        ),
    ) {
        if ll.median_missed() > 0.0 {
            let gap = (rand.median_missed() - ll.median_missed()) / grid_window(grid) * 100.0;
            out.push_str(&format!(
                "- Random/en+rob is {gap:.1} window pts from LL/en+rob (paper: ~4%)\n"
            ));
        }
    }
    out
}

fn grid_window(grid: &ExperimentGrid) -> f64 {
    grid.window as f64
}

/// One-line summary of the mapper's queue-prefix cache over the whole grid:
/// pooled hit rate plus the per-cell range (DESIGN.md §7).
pub fn render_cache_summary(grid: &ExperimentGrid) -> String {
    let stats = grid.cells.iter().flat_map(|c| &c.mapper);
    let hits: u64 = stats.clone().map(|m| m.prefix_cache_hits()).sum();
    let total: u64 = stats.map(|m| m.prefix_cache_lookups()).sum();
    if total == 0 {
        return "Prefix cache: no cached lookups recorded\n".to_string();
    }
    let rates: Vec<f64> = grid
        .cells
        .iter()
        .filter_map(|c| c.cache_hit_rate())
        .collect();
    let lo = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    format!(
        "Prefix cache: {:.1}% hit rate over {total} lookups \
         (per-cell {:.1}%–{:.1}%)\n",
        hits as f64 / total as f64 * 100.0,
        lo * 100.0,
        hi * 100.0,
    )
}

/// One-line summary of fused-kernel coverage over the whole grid: total
/// invocations plus the per-trial range — the allocation-free-path baseline
/// future perf work measures against (DESIGN.md §7).
pub fn render_kernel_summary(grid: &ExperimentGrid) -> String {
    let total: u64 = grid
        .cells
        .iter()
        .flat_map(|c| &c.mapper)
        .map(|m| m.fused_kernel_calls)
        .sum();
    if total == 0 {
        return "Fused kernel: no invocations recorded (legacy pipeline)\n".to_string();
    }
    let per_trial = grid
        .cells
        .iter()
        .flat_map(|c| c.mapper.iter().map(|m| m.fused_kernel_calls));
    let lo = per_trial.clone().min().unwrap_or(0);
    let hi = per_trial.max().unwrap_or(0);
    format!(
        "Fused kernel: {total} allocation-free convolutions \
         (per-trial {lo}–{hi})\n"
    )
}

/// One-line summary of candidate equivalence-class deduplication over the
/// whole grid: mean classes per mapping event against the core count, plus
/// the total (core, P-state) evaluations the partition skipped
/// (DESIGN.md §11).
pub fn render_dedup_summary(grid: &ExperimentGrid) -> String {
    let stats = grid.cells.iter().flat_map(|c| &c.mapper);
    let (classes, events) = stats
        .clone()
        .filter_map(|m| m.candidate_classes)
        .fold((0u64, 0u64), |(c, e), (dc, de)| (c + dc, e + de));
    if events == 0 {
        return "Candidate dedup: disabled (per-core evaluation)\n".to_string();
    }
    let skipped: u64 = stats.map(|m| m.dedup_skipped_evaluations).sum();
    format!(
        "Candidate dedup: {:.1} classes per mapping event ({events} events), \
         {skipped} duplicate evaluations skipped\n",
        classes as f64 / events as f64,
    )
}

/// Serializes every cell's raw per-trial data as CSV
/// (`heuristic,variant,trial,missed,energy,discarded`).
pub fn grid_csv(grid: &ExperimentGrid) -> String {
    let mut csv = CsvWriter::new();
    csv.write_row(&[
        "heuristic",
        "variant",
        "trial",
        "missed",
        "energy",
        "discarded",
    ]);
    for cell in &grid.cells {
        for (trial, ((missed, energy), discarded)) in cell
            .missed
            .iter()
            .zip(&cell.energy)
            .zip(&cell.discarded)
            .enumerate()
        {
            csv.write_row(&[
                cell.kind.label().to_string(),
                cell.variant.label().to_string(),
                trial.to_string(),
                format!("{missed}"),
                format!("{energy:.3}"),
                format!("{discarded}"),
            ]);
        }
    }
    csv.into_string()
}

/// Renders the complete report: Figures 2–6 plus the headline analysis.
pub fn render_full_report(grid: &ExperimentGrid) -> String {
    let mut out = String::new();
    let figures = [
        (HeuristicKind::ShortestQueue, "Figure 2"),
        (HeuristicKind::Mect, "Figure 3"),
        (HeuristicKind::LightestLoad, "Figure 4"),
        (HeuristicKind::Random, "Figure 5"),
    ];
    for (kind, fig) in figures {
        if grid.config.kinds.contains(&kind) {
            out.push_str(&format!("# {fig}\n\n"));
            out.push_str(&render_heuristic_figure(grid, kind));
            out.push('\n');
        }
    }
    out.push_str("# Figure 6\n\n");
    out.push_str(&render_best_figure(grid));
    out.push('\n');
    out.push_str(&render_headline_analysis(grid));
    out.push('\n');
    out.push_str(&render_cache_summary(grid));
    out.push_str(&render_kernel_summary(grid));
    out.push_str(&render_dedup_summary(grid));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use ecds_sim::Scenario;

    fn grid() -> &'static ExperimentGrid {
        use std::sync::OnceLock;
        static GRID: OnceLock<ExperimentGrid> = OnceLock::new();
        GRID.get_or_init(|| {
            let scenario = Scenario::small_for_tests(11);
            ExperimentGrid::run(ExperimentConfig::smoke(11, 2), &scenario)
        })
    }

    #[test]
    fn heuristic_figure_contains_all_variants() {
        let g = grid();
        let fig = render_heuristic_figure(g, HeuristicKind::Mect);
        for v in ["MECT/none", "MECT/en", "MECT/rob", "MECT/en+rob"] {
            assert!(fig.contains(v), "missing {v}");
        }
        assert!(fig.contains("median"));
    }

    #[test]
    fn best_figure_has_one_row_per_heuristic() {
        let g = grid();
        let fig = render_best_figure(g);
        for h in ["SQ/", "MECT/", "LL/", "Random/"] {
            assert!(fig.contains(h), "missing {h}");
        }
    }

    #[test]
    fn csv_has_row_per_cell_trial() {
        let g = grid();
        let csv = grid_csv(g);
        // header + 16 cells × 2 trials.
        assert_eq!(csv.lines().count(), 1 + 32);
        assert!(csv.starts_with("heuristic,variant,trial"));
    }

    #[test]
    fn full_report_mentions_every_figure() {
        let g = grid();
        let report = render_full_report(g);
        for fig in ["Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6"] {
            assert!(report.contains(fig));
        }
        assert!(report.contains("Headline comparisons"));
    }

    #[test]
    fn full_report_summarizes_the_prefix_cache() {
        let g = grid();
        let line = render_cache_summary(g);
        assert!(line.contains("% hit rate over"), "got: {line}");
        assert!(render_full_report(g).contains("Prefix cache:"));
    }

    #[test]
    fn full_report_summarizes_fused_kernel_coverage() {
        let g = grid();
        let line = render_kernel_summary(g);
        assert!(line.contains("allocation-free convolutions"), "got: {line}");
        assert!(render_full_report(g).contains("Fused kernel:"));
    }

    #[test]
    fn full_report_summarizes_candidate_dedup() {
        let g = grid();
        let line = render_dedup_summary(g);
        assert!(line.contains("classes per mapping event"), "got: {line}");
        assert!(
            line.contains("duplicate evaluations skipped"),
            "got: {line}"
        );
        assert!(render_full_report(g).contains("Candidate dedup:"));
    }

    #[test]
    fn headline_analysis_handles_small_grids() {
        let g = grid();
        let text = render_headline_analysis(g);
        assert!(text.contains("vs unfiltered") || text.contains("baseline zero"));
    }
}
