//! The 4 × 4 heuristic/filter experiment grid.

use ecds_core::{build_scheduler, FilterVariant, HeuristicKind};
use ecds_sim::{MapperStats, Scenario, Simulation};
use ecds_stats::BoxStats;
use ecds_workload::WorkloadTrace;

use crate::parallel::{default_threads, run_parallel};

/// Configuration of a grid run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed (the paper's whole study reproduces from this one value).
    pub master_seed: u64,
    /// Trials per cell (paper: 50).
    pub trials: u64,
    /// Worker threads (defaults to available parallelism).
    pub threads: usize,
    /// Heuristics to run (paper: all four).
    pub kinds: Vec<HeuristicKind>,
    /// Filter variants to run (paper: all four).
    pub variants: Vec<FilterVariant>,
}

impl ExperimentConfig {
    /// The paper's full study: 4 × 4 × 50 trials.
    pub fn paper(master_seed: u64) -> Self {
        Self {
            master_seed,
            trials: 50,
            threads: default_threads(),
            kinds: HeuristicKind::ALL.to_vec(),
            variants: FilterVariant::ALL.to_vec(),
        }
    }

    /// A reduced grid for tests and smoke runs.
    pub fn smoke(master_seed: u64, trials: u64) -> Self {
        Self {
            trials,
            ..Self::paper(master_seed)
        }
    }
}

/// Results of one (heuristic, variant) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The heuristic.
    pub kind: HeuristicKind,
    /// The filter variant.
    pub variant: FilterVariant,
    /// Missed deadlines per trial, trial-indexed.
    pub missed: Vec<f64>,
    /// Total energy actually consumed per trial.
    pub energy: Vec<f64>,
    /// Tasks discarded by filters per trial.
    pub discarded: Vec<f64>,
    /// Structured mapper instrumentation per trial (prefix-cache counters,
    /// fused-kernel coverage), trial-indexed like `missed`.
    pub mapper: Vec<MapperStats>,
}

impl CellResult {
    /// Figure label, e.g. `"LL/en+rob"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.kind.label(), self.variant.label())
    }

    /// Box summary of the missed-deadline distribution.
    pub fn stats(&self) -> BoxStats {
        BoxStats::from_samples(&self.missed).expect("cells are non-empty")
    }

    /// Median missed deadlines.
    pub fn median_missed(&self) -> f64 {
        self.stats().median
    }

    /// Prefix-cache hit rate pooled over the cell's trials, `None` if the
    /// mapper performed no cached lookups.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits: u64 = self.mapper.iter().map(MapperStats::prefix_cache_hits).sum();
        let total: u64 = self
            .mapper
            .iter()
            .map(MapperStats::prefix_cache_lookups)
            .sum();
        (total > 0).then(|| hits as f64 / total as f64)
    }
}

/// A completed grid run over a scenario.
#[derive(Debug, Clone)]
pub struct ExperimentGrid {
    /// The configuration that produced this grid.
    pub config: ExperimentConfig,
    /// The scenario's window size (tasks per trial).
    pub window: usize,
    /// One result per (kind, variant) in config order (kind-major).
    pub cells: Vec<CellResult>,
}

impl ExperimentGrid {
    /// Runs the grid on the paper scenario derived from
    /// `config.master_seed`.
    pub fn run_paper(config: ExperimentConfig) -> Self {
        let scenario = Scenario::paper(config.master_seed);
        Self::run(config, &scenario)
    }

    /// Runs the grid on an explicit scenario.
    ///
    /// Every cell shares the same `config.trials` traces (paired
    /// comparisons), and trials fan out over `config.threads` workers; the
    /// output is identical for any thread count.
    pub fn run(config: ExperimentConfig, scenario: &Scenario) -> Self {
        assert!(config.trials >= 1, "need at least one trial");
        assert!(!config.kinds.is_empty() && !config.variants.is_empty());
        let traces: Vec<WorkloadTrace> = (0..config.trials).map(|t| scenario.trace(t)).collect();
        let cells_spec: Vec<(HeuristicKind, FilterVariant)> = config
            .kinds
            .iter()
            .flat_map(|&k| config.variants.iter().map(move |&v| (k, v)))
            .collect();

        let trials = config.trials as usize;
        let total = cells_spec.len() * trials;
        // One work item per (cell, trial): finest grain keeps all workers
        // busy through the tail of the run.
        let outcomes = run_parallel(total, config.threads, |idx| {
            let (cell_idx, trial_idx) = (idx / trials, idx % trials);
            let (kind, variant) = cells_spec[cell_idx];
            let trace = &traces[trial_idx];
            let mut scheduler = build_scheduler(kind, variant, scenario, trial_idx as u64);
            let result = Simulation::new(scenario, trace).run(scheduler.as_mut());
            (
                result.missed() as f64,
                result.total_energy(),
                result.discarded() as f64,
                result.telemetry().mapper,
            )
        });

        let cells = cells_spec
            .iter()
            .enumerate()
            .map(|(cell_idx, &(kind, variant))| {
                let slice = &outcomes[cell_idx * trials..(cell_idx + 1) * trials];
                CellResult {
                    kind,
                    variant,
                    missed: slice.iter().map(|o| o.0).collect(),
                    energy: slice.iter().map(|o| o.1).collect(),
                    discarded: slice.iter().map(|o| o.2).collect(),
                    mapper: slice.iter().map(|o| o.3).collect(),
                }
            })
            .collect();
        Self {
            config,
            window: scenario.workload().window,
            cells,
        }
    }

    /// The cell for `(kind, variant)`, if it was run.
    pub fn cell(&self, kind: HeuristicKind, variant: FilterVariant) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.kind == kind && c.variant == variant)
    }

    /// All cells of one heuristic, in variant order — one paper figure
    /// (Figures 2–5).
    pub fn heuristic_row(&self, kind: HeuristicKind) -> Vec<&CellResult> {
        self.config
            .variants
            .iter()
            .filter_map(|&v| self.cell(kind, v))
            .collect()
    }

    /// The best (lowest median missed) variant per heuristic — Figure 6.
    pub fn best_per_heuristic(&self) -> Vec<&CellResult> {
        self.config
            .kinds
            .iter()
            .filter_map(|&k| {
                self.heuristic_row(k)
                    .into_iter()
                    .min_by(|a, b| a.median_missed().total_cmp(&b.median_missed()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_grid() -> ExperimentGrid {
        let scenario = Scenario::small_for_tests(42);
        ExperimentGrid::run(ExperimentConfig::smoke(42, 3), &scenario)
    }

    #[test]
    fn grid_covers_all_cells() {
        let g = smoke_grid();
        assert_eq!(g.cells.len(), 16);
        for kind in HeuristicKind::ALL {
            for variant in FilterVariant::ALL {
                let cell = g.cell(kind, variant).unwrap();
                assert_eq!(cell.missed.len(), 3);
                assert!(cell.missed.iter().all(|&m| m <= 60.0));
            }
        }
    }

    #[test]
    fn heuristic_row_is_one_figure() {
        let g = smoke_grid();
        let row = g.heuristic_row(HeuristicKind::LightestLoad);
        assert_eq!(row.len(), 4);
        assert!(row.iter().all(|c| c.kind == HeuristicKind::LightestLoad));
    }

    #[test]
    fn best_per_heuristic_picks_minimum_median() {
        let g = smoke_grid();
        let best = g.best_per_heuristic();
        assert_eq!(best.len(), 4);
        for cell in best {
            for variant in FilterVariant::ALL {
                let other = g.cell(cell.kind, variant).unwrap();
                assert!(cell.median_missed() <= other.median_missed() + 1e-9);
            }
        }
    }

    #[test]
    fn grid_is_deterministic_across_thread_counts() {
        let scenario = Scenario::small_for_tests(7);
        let mut cfg1 = ExperimentConfig::smoke(7, 2);
        cfg1.threads = 1;
        let mut cfg4 = ExperimentConfig::smoke(7, 2);
        cfg4.threads = 4;
        let a = ExperimentGrid::run(cfg1, &scenario);
        let b = ExperimentGrid::run(cfg4, &scenario);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.missed, cb.missed);
            assert_eq!(ca.energy, cb.energy);
        }
    }

    #[test]
    fn dedup_counters_are_deterministic_across_thread_counts() {
        // The deduplicating evaluator is the default, so this pins the
        // satellite guarantee directly: with dedup enabled, fanning trials
        // over more workers changes nothing — not even the per-trial
        // mapper telemetry (class counts, skipped evaluations, cache
        // counters are all part of `MapperStats`' `Eq`).
        let scenario = Scenario::small_for_tests(13);
        let mut cfg1 = ExperimentConfig::smoke(13, 3);
        cfg1.threads = 1;
        let mut cfg8 = ExperimentConfig::smoke(13, 3);
        cfg8.threads = 8;
        let a = ExperimentGrid::run(cfg1, &scenario);
        let b = ExperimentGrid::run(cfg8, &scenario);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.missed, cb.missed);
            assert_eq!(ca.energy, cb.energy);
            assert_eq!(ca.discarded, cb.discarded);
            assert_eq!(ca.mapper, cb.mapper, "telemetry diverged in {}", ca.label());
            // And dedup really ran: every trial recorded mapping events.
            assert!(ca
                .mapper
                .iter()
                .all(|m| m.candidate_classes.is_some_and(|(_, events)| events > 0)));
        }
    }

    #[test]
    fn grid_records_cache_counters_per_trial() {
        let g = smoke_grid();
        for cell in &g.cells {
            assert_eq!(cell.mapper.len(), 3);
            // Every trial maps at least one task, and the first prefix
            // lookup on a core is always a miss.
            assert!(cell.mapper.iter().all(|m| m.prefix_cache_misses() > 0));
            let rate = cell.cache_hit_rate().expect("lookups happened");
            assert!((0.0..=1.0).contains(&rate));
        }
        // The candidate sweep revisits cores within one decision, so the
        // grid as a whole must see real hits.
        assert!(g.cells.iter().any(|c| c.cache_hit_rate().unwrap() > 0.0));
    }

    #[test]
    fn grid_records_fused_kernel_calls_per_trial() {
        let g = smoke_grid();
        for cell in &g.cells {
            assert_eq!(cell.mapper.len(), 3);
            // Busy cores appear in every trial, so every trial runs real
            // convolutions through the fused kernel.
            assert!(cell.mapper.iter().all(|m| m.fused_kernel_calls > 0));
        }
    }

    #[test]
    fn cell_labels_match_figures() {
        let g = smoke_grid();
        assert_eq!(
            g.cell(
                HeuristicKind::LightestLoad,
                FilterVariant::EnergyAndRobustness
            )
            .unwrap()
            .label(),
            "LL/en+rob"
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let scenario = Scenario::small_for_tests(1);
        let _ = ExperimentGrid::run(ExperimentConfig::smoke(1, 0), &scenario);
    }
}
