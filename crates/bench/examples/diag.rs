//! Quick paper-shape diagnostic: runs the full 16-cell grid for a given
//! master seed and a handful of trials, printing mean missed deadlines per
//! cell — the tool used to calibrate the default experiment seed (see
//! EXPERIMENTS.md "Seed choice").
//!
//! ```text
//! cargo run --release -p ecds-bench --example diag -- <seed> <trials>
//! ```
use ecds_bench::parallel::run_parallel;
use ecds_core::{build_scheduler, FilterVariant, HeuristicKind};
use ecds_sim::{Scenario, Simulation};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2011);
    let trials: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let scenario = Scenario::paper(seed);
    println!(
        "seed={seed} cores={} t_avg={:.0} budget={:.3e}",
        scenario.cluster().total_cores(),
        scenario.table().t_avg(),
        scenario.energy_budget().unwrap()
    );
    let traces: Vec<_> = (0..trials).map(|t| scenario.trace(t)).collect();
    let mut cells = Vec::new();
    for k in HeuristicKind::ALL {
        for v in FilterVariant::ALL {
            cells.push((k, v));
        }
    }
    let rows = run_parallel(cells.len() * trials as usize, 1, |i| {
        let (ci, t) = (i / trials as usize, i % trials as usize);
        let (k, v) = cells[ci];
        let mut s = build_scheduler(k, v, &scenario, t as u64);
        let r = Simulation::new(&scenario, &traces[t]).run(s.as_mut());
        (ci, r.missed())
    });
    for (ci, &(k, v)) in cells.iter().enumerate() {
        let m: Vec<usize> = rows
            .iter()
            .filter(|(c, _)| *c == ci)
            .map(|(_, m)| *m)
            .collect();
        let mean = m.iter().sum::<usize>() as f64 / m.len() as f64;
        println!(
            "{:>8}/{:<7} mean_missed={:6.1} {:?}",
            k.label(),
            v.label(),
            mean,
            m
        );
    }
}
