//! Ablation benches for DESIGN.md's called-out design choices: the
//! convolution impulse cap (accuracy-vs-speed knob) and the filter chain's
//! overhead on top of a bare heuristic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ecds_core::{FilterVariant, LightestLoad, MinimumExpectedCompletionTime, Scheduler};
use ecds_ext::{run_batch, BatchEdf, BatchMaxRho};
use ecds_pmf::ReductionPolicy;
use ecds_sim::{Scenario, Simulation};

/// How much does the impulse cap cost/save on a whole trial? (Allocation
/// *quality* under the cap is measured by `ablations impulse-cap`.)
fn bench_impulse_cap(c: &mut Criterion) {
    let scenario = Scenario::small_for_tests(1353);
    let trace = scenario.trace(0);
    let budget = scenario.energy_budget().unwrap();
    let mut group = c.benchmark_group("ablation_impulse_cap");
    group.sample_size(10);
    for cap in [4usize, 8, 24, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut sched = Scheduler::new(
                    Box::new(LightestLoad),
                    FilterVariant::EnergyAndRobustness.build(),
                    budget,
                    ReductionPolicy::new(cap),
                );
                black_box(Simulation::new(&scenario, &trace).run(&mut sched).missed())
            })
        });
    }
    group.finish();
}

/// Overhead of the filter chain relative to a bare heuristic.
fn bench_filter_overhead(c: &mut Criterion) {
    let scenario = Scenario::small_for_tests(1353);
    let trace = scenario.trace(0);
    let budget = scenario.energy_budget().unwrap();
    let mut group = c.benchmark_group("ablation_filter_overhead");
    group.sample_size(10);
    for variant in FilterVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let mut sched = Scheduler::new(
                        Box::new(MinimumExpectedCompletionTime),
                        variant.build(),
                        budget,
                        ReductionPolicy::default(),
                    );
                    black_box(Simulation::new(&scenario, &trace).run(&mut sched).missed())
                })
            },
        );
    }
    group.finish();
}

/// Cost of the idle-downshift bookkeeping (extra transition records).
fn bench_idle_policy(c: &mut Criterion) {
    let parked = Scenario::small_for_tests(1353);
    let mut linger_cfg = *parked.sim_config();
    linger_cfg.idle_downshift = None;
    let linger = parked.with_sim_config(linger_cfg);
    let trace = parked.trace(0);
    let budget = parked.energy_budget().unwrap();
    let mut group = c.benchmark_group("ablation_idle_policy");
    group.sample_size(10);
    for (name, scenario) in [("downshift", &parked), ("linger", &linger)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            scenario,
            |b, scenario| {
                b.iter(|| {
                    let mut sched = Scheduler::new(
                        Box::new(MinimumExpectedCompletionTime),
                        FilterVariant::EnergyAndRobustness.build(),
                        budget,
                        ReductionPolicy::default(),
                    );
                    black_box(Simulation::new(scenario, &trace).run(&mut sched).missed())
                })
            },
        );
    }
    group.finish();
}

/// Cost of the two commitment disciplines through the unified engine:
/// immediate mode (per-arrival mapper decisions over all candidates) vs
/// batch mode (policy decisions only when cores free up). Also serves as
/// the CI smoke coverage of the batch adapter path.
fn bench_commitment_discipline(c: &mut Criterion) {
    let scenario = Scenario::small_for_tests(1353);
    let trace = scenario.trace(0);
    let budget = scenario.energy_budget().unwrap();
    let mut group = c.benchmark_group("ablation_commitment_discipline");
    group.sample_size(10);
    group.bench_function("immediate_ll_en_rob", |b| {
        b.iter(|| {
            let mut sched = Scheduler::new(
                Box::new(LightestLoad),
                FilterVariant::EnergyAndRobustness.build(),
                budget,
                ReductionPolicy::default(),
            );
            black_box(Simulation::new(&scenario, &trace).run(&mut sched).missed())
        })
    });
    group.bench_function("batch_max_rho", |b| {
        b.iter(|| black_box(run_batch(&scenario, &trace, &mut BatchMaxRho::default()).missed()))
    });
    group.bench_function("batch_edf", |b| {
        b.iter(|| black_box(run_batch(&scenario, &trace, &mut BatchEdf).missed()))
    });
    group.finish();
}

criterion_group!(
    ablation,
    bench_impulse_cap,
    bench_filter_overhead,
    bench_idle_policy,
    bench_commitment_discipline
);
criterion_main!(ablation);
