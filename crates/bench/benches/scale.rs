//! The mega-scale scaling study: sustained decisions/sec and
//! missed-deadline rate of the shard-indexed LL scheduler as the cluster
//! grows 40 → 40,000 cores, with the arrival rate λ scaled so every size
//! sees the paper's subscription level. Feeds
//! `results/BENCH_scale.json`.
//!
//! Per-arrival decision cost on the indexed path is O(active classes +
//! log cores), not O(cores × P-states): idle cores collapse to one class
//! per node template, so a lightly loaded mega-cluster decides nearly as
//! fast as the paper cluster, while a saturated one pays for its busy
//! cores only. The three sizes chart exactly that transition.
//!
//! In smoke mode (no `--bench` flag, i.e. `cargo test --benches`) each
//! size streams a short prefix once so the path can't bit-rot, but no
//! file is written.

use std::hint::black_box;
use std::time::Instant;

use ecds_cluster::ClusterGenConfig;
use ecds_core::{build_scheduler, FilterVariant, HeuristicKind};
use ecds_sim::{ImmediateDiscipline, Scenario, ServeConfig, ServeSession, SimConfig};
use ecds_workload::{BurstPattern, BurstyArrivalSource, WorkloadConfig};

/// One cluster size of the study: `nodes` templated nodes (8 templates,
/// ≈6.25 cores/node expected) streaming `arrivals` tasks in bench mode.
struct Size {
    label: &'static str,
    nodes: usize,
    arrivals: u64,
    smoke_arrivals: u64,
}

/// 40 → 40,000 cores in decade steps. Arrival counts shrink with size so
/// every arm's wall clock stays in the tens of seconds: the largest
/// cluster's per-decision cost is dominated by its (busy) active classes.
const SIZES: [Size; 3] = [
    Size {
        label: "paper-scale",
        nodes: 8,
        arrivals: 20_000,
        smoke_arrivals: 400,
    },
    Size {
        label: "mid-scale",
        nodes: 768,
        arrivals: 2_000,
        smoke_arrivals: 60,
    },
    Size {
        label: "mega-scale",
        nodes: 6_400,
        arrivals: 1_000,
        smoke_arrivals: 20,
    },
];

struct Arm {
    label: &'static str,
    nodes: usize,
    total_cores: usize,
    arrivals: u64,
    decisions_per_sec: f64,
    events_per_sec: f64,
    elapsed_s: f64,
    missed_deadline_rate: f64,
    discard_rate: f64,
    peak_resident_tasks: usize,
}

// Bench harness: timing is the point (clippy.toml / ecds-lint R2).
#[allow(clippy::disallowed_methods)]
fn run_size(size: &Size, bench_mode: bool) -> Arm {
    // Bounded retention forbids an energy budget, so the scaling scenario
    // lifts it; the λ-scaled bursty source keeps the subscription level at
    // the paper's regardless of cluster size.
    let scenario = Scenario::with_configs(
        7,
        ClusterGenConfig::scaled(size.nodes, 8),
        WorkloadConfig::small_for_tests(),
    )
    .with_sim_config(SimConfig::unconstrained());
    let total_cores = scenario.cluster().total_cores();
    let pattern = BurstPattern::scaled_to_cluster(1_000, total_cores);
    let mut source = BurstyArrivalSource::new(
        pattern,
        scenario.workload(),
        scenario.table(),
        scenario.seeds(),
        0,
    );
    let mut scheduler = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::None,
        &scenario,
        0,
    );
    let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
    let arrivals = if bench_mode {
        size.arrivals
    } else {
        size.smoke_arrivals
    };

    let start = Instant::now();
    let mut session = ServeSession::new(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        ServeConfig::streaming(8, 64, arrivals),
        &mut source,
        &mut discipline,
    );
    let mut peak_resident = 0;
    while session.step(&mut source, &mut discipline) {
        peak_resident = peak_resident.max(session.resident_tasks());
    }
    let events = session.events_processed();
    let summary = session.finish_summary(&discipline);
    let elapsed = start.elapsed().as_secs_f64();

    assert_eq!(summary.arrivals, arrivals);
    let completed = summary.tally.completed.max(1);
    Arm {
        label: size.label,
        nodes: size.nodes,
        total_cores,
        arrivals,
        decisions_per_sec: arrivals as f64 / elapsed,
        events_per_sec: events as f64 / elapsed,
        elapsed_s: elapsed,
        missed_deadline_rate: 1.0 - summary.tally.on_time as f64 / completed as f64,
        discard_rate: summary.tally.discarded as f64 / summary.tally.retired.max(1) as f64,
        peak_resident_tasks: peak_resident,
    }
}

fn render(arm: &Arm) -> String {
    format!(
        "    {{\"size\": \"{}\", \"nodes\": {}, \"total_cores\": {}, \"arrivals\": {}, \
         \"decisions_per_sec\": {:.1}, \"events_per_sec\": {:.1}, \"elapsed_s\": {:.3}, \
         \"missed_deadline_rate\": {:.4}, \"discard_rate\": {:.4}, \
         \"peak_resident_tasks\": {}}}",
        arm.label,
        arm.nodes,
        arm.total_cores,
        arm.arrivals,
        arm.decisions_per_sec,
        arm.events_per_sec,
        arm.elapsed_s,
        arm.missed_deadline_rate,
        arm.discard_rate,
        arm.peak_resident_tasks,
    )
}

fn main() {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let arms: Vec<Arm> = SIZES
        .iter()
        .map(|size| black_box(run_size(size, bench_mode)))
        .collect();

    if !bench_mode {
        println!("BENCH_scale.json: ok (smoke, not written)");
        return;
    }
    let body: Vec<String> = arms.iter().map(render).collect();
    let json = format!(
        "{{\n  \"units\": \"sustained serve throughput, one streamed trial per cluster size\",\n  \
         \"scheduler\": \"lightest-load, shard-indexed evaluator (default)\",\n  \
         \"stream\": {{\"source\": \"bursty, rates scaled to cluster size\", \
         \"horizon\": \"rolling lookahead 8\", \"retention_flush_every\": 64}},\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_scale.json"
    );
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!("wrote {path}:\n{json}");
}
