//! Candidate-evaluator benchmarks: equivalence-class deduplication on
//! versus off, over the two shapes that bound its behaviour.
//!
//! * `undersubscribed` — fewer tasks than cores: one node runs a
//!   just-dispatched same-type burst (bit-identical prefixes) and the
//!   other nodes idle, so the sweep collapses to roughly one class per
//!   node; this is the trial-start shape where the speedup lives.
//! * `divergent` — every core busy with a distinct load, so every core is
//!   its own class and dedup degenerates to pure bookkeeping. This arm
//!   bounds the overhead the partition may cost when it collapses nothing.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use ecds_cluster::PState;
use ecds_core::CandidateEvaluator;
use ecds_sim::{CoreState, ExecutingTask, QueuedTask, Scenario, SystemView};
use ecds_workload::{Task, TaskId, TaskTypeId};

/// Undersubscribed phase: a same-type burst was just dispatched to node
/// 0's cores (identical executing task and queue, started together, so
/// their queue-prefixes are bit-identical) and the rest of the machine is
/// idle. Fewer tasks in flight than cores, yet the per-core sweep pays the
/// full prefix ⊛ exec convolution on every busy core; the partition
/// collapses them to one representative per node, plus one shared idle
/// class per idle node.
fn undersubscribed_fixture() -> (Scenario, Vec<CoreState>) {
    let scenario = Scenario::small_for_tests(3);
    let cluster = scenario.cluster();
    let mut cores = vec![CoreState::new(); cluster.total_cores()];
    for (i, core) in cores.iter_mut().enumerate() {
        if cluster.core(i).node != 0 {
            continue;
        }
        core.start(ExecutingTask {
            task: TaskId(i),
            type_id: TaskTypeId(4),
            pstate: PState::P1,
            start: 0.0,
            deadline: 4000.0,
        });
        for q in 0..2 {
            core.enqueue(QueuedTask {
                task: TaskId(100 + q),
                type_id: TaskTypeId(4),
                pstate: PState::P2,
                deadline: 6000.0,
            });
        }
    }
    (scenario, cores)
}

/// Fully-divergent cluster: every core busy with its own (type, start)
/// pair and a distinct queue, so no two prefixes are bit-identical and
/// every core is a singleton class.
fn divergent_fixture() -> (Scenario, Vec<CoreState>) {
    let scenario = Scenario::small_for_tests(3);
    let mut cores = vec![CoreState::new(); scenario.cluster().total_cores()];
    for (i, core) in cores.iter_mut().enumerate() {
        core.start(ExecutingTask {
            task: TaskId(i),
            type_id: TaskTypeId(i % 10),
            pstate: PState::P1,
            start: i as f64 * 1.3,
            deadline: 4000.0,
        });
        for q in 0..2 {
            core.enqueue(QueuedTask {
                task: TaskId(100 + i * 2 + q),
                type_id: TaskTypeId((i + q + 1) % 10),
                pstate: PState::P2,
                deadline: 6000.0,
            });
        }
    }
    (scenario, cores)
}

fn probe_task() -> Task {
    Task {
        id: TaskId(50),
        type_id: TaskTypeId(5),
        arrival: 500.0,
        deadline: 3000.0,
        quantile: 0.5,
    }
}

fn bench_fixture(c: &mut Criterion, name: &str, scenario: &Scenario, cores: &[CoreState]) {
    let view = SystemView::new(scenario.cluster(), scenario.table(), cores, 500.0, 10, 60);
    let task = probe_task();
    let mut group = c.benchmark_group(format!("evaluate_all_dedup/{name}"));
    group.bench_function("per_core", |b| {
        let evaluator = CandidateEvaluator::default().without_candidate_dedup();
        let _ = evaluator.evaluate_all(&view, &task);
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
    group.bench_function("deduped", |b| {
        let evaluator = CandidateEvaluator::default();
        let _ = evaluator.evaluate_all(&view, &task);
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
    group.finish();
}

fn bench_dedup_vs_per_core(c: &mut Criterion) {
    let (scenario, cores) = undersubscribed_fixture();
    bench_fixture(c, "undersubscribed", &scenario, &cores);
    let (scenario, cores) = divergent_fixture();
    bench_fixture(c, "divergent", &scenario, &cores);
}

/// Hand-rolled median measurement feeding `results/BENCH_evaluator.json` —
/// the machine-readable record behind the acceptance criteria (≥1.5×
/// undersubscribed, ≤5% divergent overhead); the vendored criterion
/// reports mean/min/max only. In smoke mode (no `--bench` flag, i.e.
/// `cargo test --benches`) every measured closure still runs once so the
/// JSON path can't bit-rot, but no file is written.
mod evaluator_json {
    use super::*;
    use std::time::Instant;

    const SAMPLES: usize = 30;

    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2]
        } else {
            0.5 * (xs[n / 2 - 1] + xs[n / 2])
        }
    }

    /// Median ns/op over [`SAMPLES`] batches of `iters` calls (one warm-up
    /// batch first). In smoke mode runs `f` once and returns 0.
    // Bench harness: timing is the point (clippy.toml / ecds-lint R2).
    #[allow(clippy::disallowed_methods)]
    fn measure(mut f: impl FnMut(), iters: u32, bench_mode: bool) -> f64 {
        if !bench_mode {
            f();
            return 0.0;
        }
        for _ in 0..iters {
            f();
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        median(samples)
    }

    /// One fixture row: classes come from a fresh deduplicating evaluator's
    /// first sweep (one event, so the class count is exact, not averaged).
    fn row(name: &str, scenario: &Scenario, cores: &[CoreState], bench_mode: bool) -> String {
        let view = SystemView::new(scenario.cluster(), scenario.table(), cores, 500.0, 10, 60);
        let task = probe_task();
        let n = scenario.cluster().total_cores();

        let probe = CandidateEvaluator::default();
        let _ = probe.evaluate_all(&view, &task);
        let (classes, _) = probe.dedup_stats().expect("dedup is on by default");

        let per_core_eval = CandidateEvaluator::default().without_candidate_dedup();
        let _ = per_core_eval.evaluate_all(&view, &task);
        let per_core = measure(
            || drop(black_box(per_core_eval.evaluate_all(&view, &task))),
            500,
            bench_mode,
        );
        let deduped_eval = CandidateEvaluator::default();
        let _ = deduped_eval.evaluate_all(&view, &task);
        let deduped = measure(
            || drop(black_box(deduped_eval.evaluate_all(&view, &task))),
            500,
            bench_mode,
        );
        format!(
            "    {{\"fixture\": \"{name}\", \"cores\": {n}, \"classes\": {classes}, \
             \"per_core_ns\": {per_core:.1}, \"deduped_ns\": {deduped:.1}, \
             \"speedup\": {speedup:.2}}}",
            speedup = if deduped > 0.0 {
                per_core / deduped
            } else {
                0.0
            },
        )
    }

    pub fn emit() {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let (scenario, cores) = undersubscribed_fixture();
        let under = row("undersubscribed", &scenario, &cores, bench_mode);
        let (scenario, cores) = divergent_fixture();
        let divergent = row("divergent", &scenario, &cores, bench_mode);
        if !bench_mode {
            println!("BENCH_evaluator.json: ok (smoke, not written)");
            return;
        }
        let json = format!(
            "{{\n  \"units\": \"median ns per op, {SAMPLES} samples\",\n  \
             \"warm_prefix_cache\": true,\n  \"evaluate_all\": [\n{under},\n{divergent}\n  ]\n}}\n"
        );
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_evaluator.json"
        );
        std::fs::write(path, &json).expect("write BENCH_evaluator.json");
        println!("wrote {path}:\n{json}");
    }
}

criterion_group!(evaluator, bench_dedup_vs_per_core);

fn main() {
    evaluator();
    evaluator_json::emit();
}
