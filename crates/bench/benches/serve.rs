//! Continuous-serving benchmarks: sustained throughput of the
//! `ecds_sim::serve` loop over a 100k-arrival infinite stream under
//! bounded retention, plus the per-snapshot cost of checkpoint/restore.
//!
//! Two mappers bound the measurement: the paper's LL scheduler (real
//! decision cost — the "decisions/sec" number) and a trivial modulo
//! mapper (serving-loop overhead alone). `results/BENCH_serve.json`
//! records both, with the peak resident-task count proving the stream ran
//! in bounded memory.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use ecds_core::{build_scheduler, FilterVariant, HeuristicKind};
use ecds_sim::{
    Assignment, Discipline, ImmediateDiscipline, Mapper, Scenario, ServeConfig, ServeSession,
    SimConfig, SystemView,
};
use ecds_workload::{BurstyArrivalSource, Task};

/// The cheapest possible mapper: measures the serving loop itself.
struct ModuloMapper {
    cores: usize,
}

impl Mapper for ModuloMapper {
    fn assign(&mut self, task: &Task, _view: &SystemView<'_>) -> Option<Assignment> {
        Some(Assignment {
            core: task.id.0 % self.cores,
            pstate: ecds_cluster::PState::P0,
        })
    }
}

/// Bounded retention forbids an energy budget, so the streaming scenario
/// is the small test cluster with the budget lifted.
fn streaming_scenario() -> Scenario {
    Scenario::small_for_tests(7).with_sim_config(SimConfig::unconstrained())
}

fn bursty_source(scenario: &Scenario) -> BurstyArrivalSource {
    BurstyArrivalSource::new(
        scenario.workload().arrivals.clone(),
        scenario.workload(),
        scenario.table(),
        scenario.seeds(),
        0,
    )
}

fn streaming_config(max_arrivals: u64) -> ServeConfig {
    ServeConfig::streaming(8, 64, max_arrivals)
}

/// Drives a fresh streaming session to completion and returns
/// `(events, peak_resident, retired, checkpoint_bytes)`.
fn drive(
    scenario: &Scenario,
    discipline: &mut dyn Discipline,
    max_arrivals: u64,
) -> (u64, usize, u64, usize) {
    let mut source = bursty_source(scenario);
    let mut session = ServeSession::new(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        streaming_config(max_arrivals),
        &mut source,
        discipline,
    );
    let mut peak_resident = 0;
    while session.step(&mut source, discipline) {
        peak_resident = peak_resident.max(session.resident_tasks());
    }
    let checkpoint_bytes = session.checkpoint(&source, &*discipline).len();
    let events = session.events_processed();
    let summary = session.finish_summary(&*discipline);
    (
        events,
        peak_resident,
        summary.tally.retired,
        checkpoint_bytes,
    )
}

/// Criterion arm: per-snapshot checkpoint and restore cost on a session
/// paused mid-burst with the LL scheduler's full evaluator state.
fn bench_checkpoint_roundtrip(c: &mut Criterion) {
    let scenario = streaming_scenario();
    let mut scheduler = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::None,
        &scenario,
        0,
    );
    let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
    let mut source = bursty_source(&scenario);
    let mut session = ServeSession::new(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        streaming_config(10_000),
        &mut source,
        &mut discipline,
    );
    session.run_events(2_000, &mut source, &mut discipline);
    let bytes = session.checkpoint(&source, &discipline);

    let mut group = c.benchmark_group("serve_checkpoint");
    group.bench_function("save", |b| {
        b.iter(|| black_box(session.checkpoint(&source, &discipline)))
    });
    group.bench_function("restore", |b| {
        b.iter(|| {
            let mut scheduler = build_scheduler(
                HeuristicKind::LightestLoad,
                FilterVariant::None,
                &scenario,
                0,
            );
            let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
            let mut source = bursty_source(&scenario);
            let restored = ServeSession::restore(
                scenario.cluster(),
                scenario.table(),
                scenario.sim_config(),
                black_box(&bytes),
                &mut source,
                &mut discipline,
            )
            .expect("bench checkpoint restores");
            black_box(restored.events_processed())
        })
    });
    group.finish();
}

/// Wall-clock throughput measurement feeding `results/BENCH_serve.json`.
/// In smoke mode (no `--bench` flag, i.e. `cargo test --benches`) each arm
/// streams a short prefix once so the path can't bit-rot, but no file is
/// written.
mod serve_json {
    use super::*;
    use std::time::Instant;

    const STREAM_ARRIVALS: u64 = 100_000;
    const SMOKE_ARRIVALS: u64 = 2_000;

    struct Arm {
        mapper: &'static str,
        arrivals: u64,
        decisions_per_sec: f64,
        events_per_sec: f64,
        elapsed_s: f64,
        peak_resident_tasks: usize,
        retired: u64,
        checkpoint_bytes: usize,
    }

    // Bench harness: timing is the point (clippy.toml / ecds-lint R2).
    #[allow(clippy::disallowed_methods)]
    fn run_arm(
        mapper: &'static str,
        scenario: &Scenario,
        discipline: &mut dyn Discipline,
        bench_mode: bool,
    ) -> Arm {
        let arrivals = if bench_mode {
            STREAM_ARRIVALS
        } else {
            SMOKE_ARRIVALS
        };
        let start = Instant::now();
        let (events, peak_resident, retired, checkpoint_bytes) =
            drive(scenario, discipline, arrivals);
        let elapsed = start.elapsed().as_secs_f64();
        Arm {
            mapper,
            arrivals,
            decisions_per_sec: arrivals as f64 / elapsed,
            events_per_sec: events as f64 / elapsed,
            elapsed_s: elapsed,
            peak_resident_tasks: peak_resident,
            retired,
            checkpoint_bytes,
        }
    }

    fn render(arm: &Arm) -> String {
        format!(
            "    {{\"mapper\": \"{}\", \"arrivals\": {}, \"decisions_per_sec\": {:.0}, \
             \"events_per_sec\": {:.0}, \"elapsed_s\": {:.3}, \"peak_resident_tasks\": {}, \
             \"retired\": {}, \"checkpoint_bytes\": {}}}",
            arm.mapper,
            arm.arrivals,
            arm.decisions_per_sec,
            arm.events_per_sec,
            arm.elapsed_s,
            arm.peak_resident_tasks,
            arm.retired,
            arm.checkpoint_bytes,
        )
    }

    pub fn emit() {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let scenario = streaming_scenario();

        let mut scheduler = build_scheduler(
            HeuristicKind::LightestLoad,
            FilterVariant::None,
            &scenario,
            0,
        );
        let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
        let scheduler_arm = run_arm("lightest-load", &scenario, &mut discipline, bench_mode);

        let mut modulo = ModuloMapper {
            cores: scenario.cluster().total_cores(),
        };
        let mut discipline = ImmediateDiscipline::new(&mut modulo);
        let modulo_arm = run_arm(
            "modulo (loop overhead)",
            &scenario,
            &mut discipline,
            bench_mode,
        );

        if !bench_mode {
            println!("BENCH_serve.json: ok (smoke, not written)");
            return;
        }
        let json = format!(
            "{{\n  \"units\": \"sustained throughput over one streamed trial\",\n  \
             \"stream\": {{\"source\": \"bursty (scaled paper pattern, cycled)\", \
             \"horizon\": \"rolling lookahead 8\", \"retention_flush_every\": 64}},\n  \
             \"serve\": [\n{},\n{}\n  ]\n}}\n",
            render(&scheduler_arm),
            render(&modulo_arm),
        );
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_serve.json"
        );
        std::fs::write(path, &json).expect("write BENCH_serve.json");
        println!("wrote {path}:\n{json}");
    }
}

criterion_group!(serve, bench_checkpoint_roundtrip);

fn main() {
    serve();
    serve_json::emit();
}
