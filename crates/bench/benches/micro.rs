//! Micro-benchmarks of the hot paths: pmf algebra (the paper notes
//! convolution overhead "can be negligible if task execution times are
//! sufficiently long"), candidate evaluation, and the robustness
//! calculation.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

use ecds_core::{system_robustness, CandidateEvaluator};
use ecds_pmf::{Gamma, Pmf, PmfScratch, ReductionPolicy, SeedDerive};
use ecds_sim::{CoreState, ExecutingTask, QueuedTask, Scenario, SystemView};
use ecds_workload::{Task, TaskId, TaskTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gamma_pmf(mean: f64, impulses: usize) -> Pmf {
    let gamma = Gamma::from_mean_cv(mean, 0.2);
    let mut rng = StdRng::seed_from_u64(7);
    ecds_pmf::empirical_pmf(
        &mut rng,
        ecds_pmf::SamplePmfConfig::new(impulses * 10, impulses),
        |r| gamma.sample(r),
    )
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_convolve");
    for impulses in [8usize, 16, 24, 48] {
        let a = gamma_pmf(750.0, impulses);
        let b = gamma_pmf(900.0, impulses);
        group.bench_with_input(
            BenchmarkId::from_parameter(impulses),
            &impulses,
            |bch, _| bch.iter(|| black_box(a.convolve(&b, ReductionPolicy::new(impulses)))),
        );
    }
    group.finish();
}

/// The fused scratch kernel against the legacy convolve→reduce pipeline at
/// the default 24-impulse cap: "warm" reuses one workspace across
/// iterations (the evaluator's steady state), "cold" pays the buffer
/// growth on every call.
fn bench_kernel_fused_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_kernel");
    let policy = ReductionPolicy::default_cap();
    for impulses in [8usize, 24, 64] {
        let a = gamma_pmf(750.0, impulses);
        let b = gamma_pmf(900.0, impulses);
        group.bench_with_input(BenchmarkId::new("legacy", impulses), &impulses, |bch, _| {
            bch.iter(|| black_box(a.convolve(&b, policy)))
        });
        group.bench_with_input(
            BenchmarkId::new("fused_warm", impulses),
            &impulses,
            |bch, _| {
                let mut scratch = PmfScratch::new();
                bch.iter(|| {
                    let out = scratch.convolve_reduced(black_box(&a), black_box(&b), policy);
                    black_box(out.expectation())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused_cold", impulses),
            &impulses,
            |bch, _| {
                bch.iter(|| {
                    let mut scratch = PmfScratch::new();
                    let out = scratch.convolve_reduced(black_box(&a), black_box(&b), policy);
                    black_box(out.expectation())
                })
            },
        );
    }
    group.finish();
}

/// End-to-end candidate sweep with the fused kernel against the legacy
/// pipeline, both with a warm prefix cache: what a steady-state mapping
/// event costs under each kernel.
fn bench_evaluate_all_fused_vs_legacy(c: &mut Criterion) {
    let (scenario, cores) = busy_view_fixture_with_depth(4);
    let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 500.0, 10, 60);
    let task = probe_task();
    let mut group = c.benchmark_group("evaluate_all_kernel");
    group.bench_function("legacy", |b| {
        let evaluator = CandidateEvaluator::default().without_fused_kernel();
        let _ = evaluator.evaluate_all(&view, &task);
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
    group.bench_function("fused", |b| {
        let evaluator = CandidateEvaluator::default();
        let _ = evaluator.evaluate_all(&view, &task);
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
    group.finish();
}

fn bench_truncate(c: &mut Criterion) {
    let p = gamma_pmf(750.0, 24).shift(100.0);
    c.bench_function("pmf_truncate_renormalize", |b| {
        b.iter(|| black_box(p.truncate_below(black_box(750.0))))
    });
}

fn bench_quantile(c: &mut Criterion) {
    let p = gamma_pmf(750.0, 24);
    c.bench_function("pmf_quantile", |b| {
        b.iter(|| black_box(p.quantile(black_box(0.73)).unwrap()))
    });
}

fn busy_view_fixture() -> (Scenario, Vec<CoreState>) {
    busy_view_fixture_with_depth(1)
}

/// Every core executing one task with `depth` more queued behind it
/// (burst-time telemetry shows per-core depths of this order).
fn busy_view_fixture_with_depth(depth: usize) -> (Scenario, Vec<CoreState>) {
    let scenario = Scenario::small_for_tests(3);
    let mut cores = vec![CoreState::new(); scenario.cluster().total_cores()];
    for (i, core) in cores.iter_mut().enumerate() {
        core.start(ExecutingTask {
            task: TaskId(i),
            type_id: TaskTypeId(i % 10),
            pstate: ecds_cluster::PState::P1,
            start: 0.0,
            deadline: 4000.0,
        });
        for q in 0..depth {
            core.enqueue(QueuedTask {
                task: TaskId(100 + i * depth + q),
                type_id: TaskTypeId((i + 3 + q) % 10),
                pstate: ecds_cluster::PState::P2,
                deadline: 6000.0,
            });
        }
    }
    (scenario, cores)
}

fn probe_task() -> Task {
    Task {
        id: TaskId(50),
        type_id: TaskTypeId(5),
        arrival: 500.0,
        deadline: 3000.0,
        quantile: 0.5,
    }
}

fn bench_candidate_evaluation(c: &mut Criterion) {
    let (scenario, cores) = busy_view_fixture();
    let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 500.0, 10, 60);
    let task = probe_task();
    let evaluator = CandidateEvaluator::default();
    c.bench_function("evaluate_all_candidates", |b| {
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
}

/// The tentpole speedup: `evaluate_all` with every queue-prefix pmf served
/// from the versioned cache ("warm") against recomputing the prefixes on
/// every call ("cold"). Same burst-depth view in both arms: with 8 tasks
/// queued per core the prefix convolution chain dominates the candidate
/// sweep, which is precisely the load the cache exists for.
fn bench_prefix_cache_cold_vs_warm(c: &mut Criterion) {
    let (scenario, cores) = busy_view_fixture_with_depth(8);
    let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 500.0, 10, 60);
    let task = probe_task();
    let mut group = c.benchmark_group("evaluate_all_prefix_cache");
    group.bench_function("cold", |b| {
        let evaluator = CandidateEvaluator::uncached(ecds_pmf::ReductionPolicy::default());
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
    group.bench_function("warm", |b| {
        let evaluator = CandidateEvaluator::default();
        // Prime every core's entry so the timed region is all hits.
        let _ = evaluator.evaluate_all(&view, &task);
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
    group.finish();
}

fn bench_system_robustness(c: &mut Criterion) {
    let (scenario, cores) = busy_view_fixture();
    let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 500.0, 10, 60);
    c.bench_function("system_robustness", |b| {
        b.iter(|| black_box(system_robustness(&view, ReductionPolicy::default())))
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let scenario = Scenario::small_for_tests(3);
    c.bench_function("trace_generation", |b| {
        let mut trial = 0u64;
        b.iter(|| {
            trial += 1;
            black_box(scenario.trace(trial))
        })
    });
}

fn bench_seed_derivation(c: &mut Criterion) {
    let seeds = SeedDerive::new(42);
    c.bench_function("seed_derivation", |b| {
        b.iter(|| black_box(seeds.seed(ecds_pmf::Stream::Quantiles, black_box(17), black_box(3))))
    });
}

/// Hand-rolled median measurement feeding `results/BENCH_kernel.json` —
/// the machine-readable record of the kernel speedup (the vendored
/// criterion reports mean/min/max only, and medians are what the
/// acceptance criteria track). In smoke mode (no `--bench` flag, i.e.
/// `cargo test --benches`) every measured closure still runs once so the
/// JSON path can't bit-rot, but no file is written.
mod kernel_json {
    use super::*;
    use std::time::Instant;

    const SAMPLES: usize = 30;

    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2]
        } else {
            0.5 * (xs[n / 2 - 1] + xs[n / 2])
        }
    }

    /// Median ns/op over [`SAMPLES`] batches of `iters` calls (one warm-up
    /// batch first). In smoke mode runs `f` once and returns 0.
    // Bench harness: timing is the point (clippy.toml / ecds-lint R2).
    #[allow(clippy::disallowed_methods)]
    fn measure(mut f: impl FnMut(), iters: u32, bench_mode: bool) -> f64 {
        if !bench_mode {
            f();
            return 0.0;
        }
        for _ in 0..iters {
            f();
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        median(samples)
    }

    pub fn emit() {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let policy = ReductionPolicy::default_cap();
        let mut kernel_rows = String::new();
        for (i, impulses) in [8usize, 24, 64].into_iter().enumerate() {
            let a = gamma_pmf(750.0, impulses);
            let b = gamma_pmf(900.0, impulses);
            let legacy = measure(|| drop(black_box(a.convolve(&b, policy))), 2000, bench_mode);
            let mut scratch = PmfScratch::new();
            let fused_warm = measure(
                || {
                    let out = scratch.convolve_reduced(black_box(&a), black_box(&b), policy);
                    black_box(out.expectation());
                },
                2000,
                bench_mode,
            );
            let fused_cold = measure(
                || {
                    let mut fresh = PmfScratch::new();
                    let out = fresh.convolve_reduced(black_box(&a), black_box(&b), policy);
                    black_box(out.expectation());
                },
                2000,
                bench_mode,
            );
            if i > 0 {
                kernel_rows.push_str(",\n");
            }
            kernel_rows.push_str(&format!(
                "    {{\"impulses\": {impulses}, \"cap\": {cap}, \
                 \"legacy_ns\": {legacy:.1}, \"fused_warm_ns\": {fused_warm:.1}, \
                 \"fused_cold_ns\": {fused_cold:.1}, \"speedup_warm\": {speedup:.2}}}",
                cap = policy.max_impulses,
                speedup = if fused_warm > 0.0 {
                    legacy / fused_warm
                } else {
                    0.0
                },
            ));
        }

        let (scenario, cores) = busy_view_fixture_with_depth(4);
        let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 500.0, 10, 60);
        let task = probe_task();
        let legacy_eval = CandidateEvaluator::default().without_fused_kernel();
        let _ = legacy_eval.evaluate_all(&view, &task);
        let eval_legacy = measure(
            || drop(black_box(legacy_eval.evaluate_all(&view, &task))),
            200,
            bench_mode,
        );
        let fused_eval = CandidateEvaluator::default();
        let _ = fused_eval.evaluate_all(&view, &task);
        let eval_fused = measure(
            || drop(black_box(fused_eval.evaluate_all(&view, &task))),
            200,
            bench_mode,
        );

        if !bench_mode {
            println!("BENCH_kernel.json: ok (smoke, not written)");
            return;
        }
        let json = format!(
            "{{\n  \"units\": \"median ns per op, {SAMPLES} samples\",\n  \
             \"kernel\": [\n{kernel_rows}\n  ],\n  \
             \"evaluate_all\": {{\"queue_depth\": 4, \"warm_prefix_cache\": true, \
             \"legacy_ns\": {eval_legacy:.1}, \"fused_ns\": {eval_fused:.1}, \
             \"speedup\": {speedup:.2}}}\n}}\n",
            speedup = if eval_fused > 0.0 {
                eval_legacy / eval_fused
            } else {
                0.0
            },
        );
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_kernel.json"
        );
        std::fs::write(path, &json).expect("write BENCH_kernel.json");
        println!("wrote {path}:\n{json}");
    }
}

criterion_group!(
    micro,
    bench_convolution,
    bench_kernel_fused_vs_legacy,
    bench_evaluate_all_fused_vs_legacy,
    bench_truncate,
    bench_quantile,
    bench_candidate_evaluation,
    bench_prefix_cache_cold_vs_warm,
    bench_system_robustness,
    bench_trace_generation,
    bench_seed_derivation,
);

fn main() {
    micro();
    kernel_json::emit();
}
