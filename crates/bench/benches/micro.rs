//! Micro-benchmarks of the hot paths: pmf algebra (the paper notes
//! convolution overhead "can be negligible if task execution times are
//! sufficiently long"), candidate evaluation, and the robustness
//! calculation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ecds_core::{system_robustness, CandidateEvaluator};
use ecds_pmf::{Gamma, Pmf, ReductionPolicy, SeedDerive};
use ecds_sim::{CoreState, ExecutingTask, QueuedTask, Scenario, SystemView};
use ecds_workload::{Task, TaskId, TaskTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gamma_pmf(mean: f64, impulses: usize) -> Pmf {
    let gamma = Gamma::from_mean_cv(mean, 0.2);
    let mut rng = StdRng::seed_from_u64(7);
    ecds_pmf::empirical_pmf(
        &mut rng,
        ecds_pmf::SamplePmfConfig::new(impulses * 10, impulses),
        |r| gamma.sample(r),
    )
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_convolve");
    for impulses in [8usize, 16, 24, 48] {
        let a = gamma_pmf(750.0, impulses);
        let b = gamma_pmf(900.0, impulses);
        group.bench_with_input(BenchmarkId::from_parameter(impulses), &impulses, |bch, _| {
            bch.iter(|| black_box(a.convolve(&b, ReductionPolicy::new(impulses))))
        });
    }
    group.finish();
}

fn bench_truncate(c: &mut Criterion) {
    let p = gamma_pmf(750.0, 24).shift(100.0);
    c.bench_function("pmf_truncate_renormalize", |b| {
        b.iter(|| black_box(p.truncate_below(black_box(750.0))))
    });
}

fn bench_quantile(c: &mut Criterion) {
    let p = gamma_pmf(750.0, 24);
    c.bench_function("pmf_quantile", |b| {
        b.iter(|| black_box(p.quantile(black_box(0.73)).unwrap()))
    });
}

fn busy_view_fixture() -> (Scenario, Vec<CoreState>) {
    busy_view_fixture_with_depth(1)
}

/// Every core executing one task with `depth` more queued behind it
/// (burst-time telemetry shows per-core depths of this order).
fn busy_view_fixture_with_depth(depth: usize) -> (Scenario, Vec<CoreState>) {
    let scenario = Scenario::small_for_tests(3);
    let mut cores = vec![CoreState::new(); scenario.cluster().total_cores()];
    for (i, core) in cores.iter_mut().enumerate() {
        core.start(ExecutingTask {
            task: TaskId(i),
            type_id: TaskTypeId(i % 10),
            pstate: ecds_cluster::PState::P1,
            start: 0.0,
            deadline: 4000.0,
        });
        for q in 0..depth {
            core.enqueue(QueuedTask {
                task: TaskId(100 + i * depth + q),
                type_id: TaskTypeId((i + 3 + q) % 10),
                pstate: ecds_cluster::PState::P2,
                deadline: 6000.0,
            });
        }
    }
    (scenario, cores)
}

fn probe_task() -> Task {
    Task {
        id: TaskId(50),
        type_id: TaskTypeId(5),
        arrival: 500.0,
        deadline: 3000.0,
        quantile: 0.5,
    }
}

fn bench_candidate_evaluation(c: &mut Criterion) {
    let (scenario, cores) = busy_view_fixture();
    let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 500.0, 10, 60);
    let task = probe_task();
    let evaluator = CandidateEvaluator::default();
    c.bench_function("evaluate_all_candidates", |b| {
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
}

/// The tentpole speedup: `evaluate_all` with every queue-prefix pmf served
/// from the versioned cache ("warm") against recomputing the prefixes on
/// every call ("cold"). Same burst-depth view in both arms: with 8 tasks
/// queued per core the prefix convolution chain dominates the candidate
/// sweep, which is precisely the load the cache exists for.
fn bench_prefix_cache_cold_vs_warm(c: &mut Criterion) {
    let (scenario, cores) = busy_view_fixture_with_depth(8);
    let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 500.0, 10, 60);
    let task = probe_task();
    let mut group = c.benchmark_group("evaluate_all_prefix_cache");
    group.bench_function("cold", |b| {
        let evaluator = CandidateEvaluator::uncached(ecds_pmf::ReductionPolicy::default());
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
    group.bench_function("warm", |b| {
        let evaluator = CandidateEvaluator::default();
        // Prime every core's entry so the timed region is all hits.
        let _ = evaluator.evaluate_all(&view, &task);
        b.iter(|| black_box(evaluator.evaluate_all(&view, &task)))
    });
    group.finish();
}

fn bench_system_robustness(c: &mut Criterion) {
    let (scenario, cores) = busy_view_fixture();
    let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 500.0, 10, 60);
    c.bench_function("system_robustness", |b| {
        b.iter(|| black_box(system_robustness(&view, ReductionPolicy::default())))
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let scenario = Scenario::small_for_tests(3);
    c.bench_function("trace_generation", |b| {
        let mut trial = 0u64;
        b.iter(|| {
            trial += 1;
            black_box(scenario.trace(trial))
        })
    });
}

fn bench_seed_derivation(c: &mut Criterion) {
    let seeds = SeedDerive::new(42);
    c.bench_function("seed_derivation", |b| {
        b.iter(|| black_box(seeds.seed(ecds_pmf::Stream::Quantiles, black_box(17), black_box(3))))
    });
}

criterion_group!(
    micro,
    bench_convolution,
    bench_truncate,
    bench_quantile,
    bench_candidate_evaluation,
    bench_prefix_cache_cold_vs_warm,
    bench_system_robustness,
    bench_trace_generation,
    bench_seed_derivation,
);
criterion_main!(micro);
