//! Property tests of cluster-generation invariants over randomized
//! generator configurations.

use ecds_cluster::{generate_cluster, ClusterGenConfig, PState};
use ecds_pmf::{SeedDerive, Uniform};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ClusterGenConfig> {
    (
        1usize..6,       // nodes
        1usize..4,       // processors lo
        0usize..3,       // processors extra
        1usize..4,       // cores lo
        0usize..3,       // cores extra
        0.10f64..0.20,   // perf step lo
        0.01f64..0.10,   // perf step extra
        100.0f64..140.0, // peak lo
        1.0f64..20.0,    // peak extra
    )
        .prop_map(
            |(nodes, p_lo, p_extra, c_lo, c_extra, step_lo, step_extra, peak_lo, peak_extra)| {
                ClusterGenConfig {
                    nodes,
                    processors_range: (p_lo, p_lo + p_extra),
                    cores_range: (c_lo, c_lo + c_extra),
                    perf_step: Uniform::new(step_lo, step_lo + step_extra),
                    // Keep the resample bound satisfiable for any step range
                    // drawn above ((1 + 0.3)^-4 ≈ 0.35).
                    min_perf_ratio: 0.3,
                    peak_watts: Uniform::new(peak_lo, peak_lo + peak_extra),
                    ..ClusterGenConfig::paper()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_clusters_respect_their_config(cfg in arb_config(), seed in 0u64..500) {
        let cluster = generate_cluster(&cfg, &SeedDerive::new(seed));
        prop_assert_eq!(cluster.num_nodes(), cfg.nodes);
        for node in cluster.nodes() {
            prop_assert!(node.processors >= cfg.processors_range.0);
            prop_assert!(node.processors <= cfg.processors_range.1);
            prop_assert!(node.cores_per_processor >= cfg.cores_range.0);
            prop_assert!(node.cores_per_processor <= cfg.cores_range.1);
            let peak = node.power.peak_watts();
            prop_assert!(peak >= cfg.peak_watts.lo() && peak < cfg.peak_watts.hi());
            prop_assert!(node.efficiency >= cfg.efficiency.lo());
            prop_assert!(node.efficiency < cfg.efficiency.hi());
            prop_assert!(node.ladder.min_to_max_ratio() >= cfg.min_perf_ratio);
        }
    }

    #[test]
    fn power_and_performance_are_monotone(cfg in arb_config(), seed in 0u64..500) {
        let cluster = generate_cluster(&cfg, &SeedDerive::new(seed));
        for node in cluster.nodes() {
            for w in PState::ALL.windows(2) {
                prop_assert!(node.power.watts(w[0]) > node.power.watts(w[1]));
                prop_assert!(
                    node.ladder.relative_performance(w[0])
                        > node.ladder.relative_performance(w[1])
                );
                prop_assert!(
                    node.exec_time_multiplier(w[0]) < node.exec_time_multiplier(w[1])
                );
            }
        }
    }

    #[test]
    fn flat_core_indexing_is_dense(cfg in arb_config(), seed in 0u64..500) {
        let cluster = generate_cluster(&cfg, &SeedDerive::new(seed));
        let expected: usize = cluster.nodes().iter().map(|n| n.total_cores()).sum();
        prop_assert_eq!(cluster.total_cores(), expected);
        for (i, core) in cluster.cores().iter().enumerate() {
            prop_assert_eq!(core.flat, i);
            prop_assert!(core.node < cluster.num_nodes());
            prop_assert!(core.processor < cluster.node(core.node).processors);
            prop_assert!(core.core < cluster.node(core.node).cores_per_processor);
        }
    }

    #[test]
    fn average_power_is_between_extremes(cfg in arb_config(), seed in 0u64..500) {
        let cluster = generate_cluster(&cfg, &SeedDerive::new(seed));
        let min = cluster
            .nodes()
            .iter()
            .map(|n| n.power.deepest_watts())
            .fold(f64::INFINITY, f64::min);
        let max = cluster
            .nodes()
            .iter()
            .map(|n| n.power.peak_watts())
            .fold(0.0f64, f64::max);
        let avg = cluster.average_power();
        prop_assert!(avg > min && avg < max);
    }

    #[test]
    fn generation_is_deterministic(cfg in arb_config(), seed in 0u64..500) {
        let a = generate_cluster(&cfg, &SeedDerive::new(seed));
        let b = generate_cluster(&cfg, &SeedDerive::new(seed));
        prop_assert_eq!(a, b);
    }
}
