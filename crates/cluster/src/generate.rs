//! Random cluster generation with the paper's Sec. VI parameters.

use rand::Rng;

use ecds_pmf::{SeedDerive, Stream, Uniform};

use crate::node::NodeSpec;
use crate::power::{PowerProfile, VoltageRange};
use crate::pstate::{PStateLadder, NUM_PSTATES};
use crate::topology::Cluster;

/// Configuration for random cluster generation.
///
/// [`ClusterGenConfig::paper`] reproduces Sec. VI exactly; every knob is
/// public so ablations and examples can deviate deliberately.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterGenConfig {
    /// Number of compute nodes `N`.
    pub nodes: usize,
    /// Inclusive range for `n(i)`, processors per node.
    pub processors_range: (usize, usize),
    /// Inclusive range for `c(i)`, cores per processor.
    pub cores_range: (usize, usize),
    /// Per-state performance step: each state is faster than the next-deeper
    /// one by a fraction drawn uniformly from this range (paper: 15–25%).
    pub perf_step: Uniform,
    /// Minimum allowed ratio of deepest-state to base-state performance;
    /// ladders violating it are resampled (paper observes ≥ 0.42).
    pub min_perf_ratio: f64,
    /// Peak (P0) per-core wattage range (paper: 125–135 W).
    pub peak_watts: Uniform,
    /// Deep-state (P4) core voltage range (paper: 1.000–1.150 V).
    pub v_deep: VoltageRange,
    /// Base-state (P0) core voltage range (paper: 1.400–1.550 V).
    pub v_base: VoltageRange,
    /// Power-supply efficiency range (paper: 0.90–0.98).
    pub efficiency: Uniform,
    /// `Some(k)`: draw only `k` distinct node specs (templates) and stamp
    /// node `i` from template `i mod k` — the mega-scale path, where
    /// building and checkpointing a 10⁴-node cluster costs O(k) spec
    /// draws. `None`: every node is drawn independently (the paper's
    /// fully heterogeneous generation, byte-identical to before this knob
    /// existed).
    pub templates: Option<usize>,
}

impl ClusterGenConfig {
    /// The paper's Sec. VI configuration: 8 nodes, 1–4 processors of 1–4
    /// cores, 15–25% performance steps, 125–135 W peaks, ACPI-style voltage
    /// ranges, 90–98% efficient supplies.
    pub fn paper() -> Self {
        Self {
            nodes: 8,
            processors_range: (1, 4),
            cores_range: (1, 4),
            perf_step: Uniform::new(0.15, 0.25),
            min_perf_ratio: 0.42,
            peak_watts: Uniform::new(125.0, 135.0),
            v_deep: VoltageRange::new(1.000, 1.150),
            v_base: VoltageRange::new(1.400, 1.550),
            efficiency: Uniform::new(0.90, 0.98),
            templates: None,
        }
    }

    /// A scaled-down configuration for fast tests and doc examples: 3 nodes,
    /// 1–2 processors of 1–2 cores.
    pub fn small_for_tests() -> Self {
        Self {
            nodes: 3,
            processors_range: (1, 2),
            cores_range: (1, 2),
            ..Self::paper()
        }
    }

    /// A mega-scale configuration: `nodes` nodes stamped from `templates`
    /// distinct specs, everything else per the paper. This is the knob the
    /// scaling study turns — 10³–10⁴ nodes stay cheap because only
    /// `templates` specs are ever drawn.
    pub fn scaled(nodes: usize, templates: usize) -> Self {
        Self {
            nodes,
            templates: Some(templates),
            ..Self::paper()
        }
    }

    fn validate(&self) {
        assert!(self.nodes >= 1, "need at least one node");
        if let Some(templates) = self.templates {
            assert!(
                templates >= 1 && templates <= self.nodes,
                "template count must be in 1..=nodes"
            );
        }
        assert!(
            self.processors_range.0 >= 1 && self.processors_range.0 <= self.processors_range.1,
            "invalid processors range"
        );
        assert!(
            self.cores_range.0 >= 1 && self.cores_range.0 <= self.cores_range.1,
            "invalid cores range"
        );
        assert!(
            self.min_perf_ratio > 0.0 && self.min_perf_ratio < 1.0,
            "min_perf_ratio must be in (0, 1)"
        );
    }
}

/// Generates a random cluster from `cfg`, deterministically from
/// `seeds`' [`Stream::Cluster`] stream.
pub fn generate_cluster(cfg: &ClusterGenConfig, seeds: &SeedDerive) -> Cluster {
    cfg.validate();
    match cfg.templates {
        None => {
            let mut nodes = Vec::with_capacity(cfg.nodes);
            for i in 0..cfg.nodes {
                let mut rng = seeds.rng(Stream::Cluster, i as u64, 0);
                nodes.push(sample_node(cfg, &mut rng));
            }
            Cluster::new(nodes)
        }
        Some(num_templates) => {
            // Substream 1 keeps template draws disjoint from the per-node
            // substream 0, so the two paths never share RNG state.
            let specs: Vec<NodeSpec> = (0..num_templates)
                .map(|t| {
                    let mut rng = seeds.rng(Stream::Cluster, t as u64, 1);
                    sample_node(cfg, &mut rng)
                })
                .collect();
            let mut nodes = Vec::with_capacity(cfg.nodes);
            let mut template_of = Vec::with_capacity(cfg.nodes);
            for i in 0..cfg.nodes {
                let t = i % num_templates;
                nodes.push(specs[t].clone());
                template_of.push(t as u32);
            }
            Cluster::with_templates(nodes, template_of)
        }
    }
}

/// Draws one node spec: processor/core counts, the P-state ladder, the
/// CMOS power profile, and the supply efficiency.
fn sample_node<R: Rng + ?Sized>(cfg: &ClusterGenConfig, rng: &mut R) -> NodeSpec {
    let processors = rng.gen_range(cfg.processors_range.0..=cfg.processors_range.1);
    let cores = rng.gen_range(cfg.cores_range.0..=cfg.cores_range.1);
    let ladder = sample_ladder(cfg, rng);
    let peak = cfg.peak_watts.sample(rng);
    let v_deep = Uniform::new(cfg.v_deep.lo, cfg.v_deep.hi).sample(rng);
    let v_base = Uniform::new(cfg.v_base.lo, cfg.v_base.hi).sample(rng);
    let power = PowerProfile::from_cmos(peak, v_base, v_deep, &ladder);
    let efficiency = cfg.efficiency.sample(rng);
    NodeSpec::new(processors, cores, ladder, power, efficiency)
}

/// Samples one node's P-state ladder: starting from the deepest state,
/// performance steps up by `1 + U(perf_step)` per state. Resamples (bounded)
/// until the deep/base performance ratio meets `min_perf_ratio`.
fn sample_ladder<R: Rng + ?Sized>(cfg: &ClusterGenConfig, rng: &mut R) -> PStateLadder {
    const MAX_ATTEMPTS: usize = 64;
    for _ in 0..MAX_ATTEMPTS {
        let mut perf = [0.0f64; NUM_PSTATES];
        perf[NUM_PSTATES - 1] = 1.0;
        for idx in (0..NUM_PSTATES - 1).rev() {
            let step = cfg.perf_step.sample(rng);
            perf[idx] = perf[idx + 1] * (1.0 + step);
        }
        let ratio = perf[NUM_PSTATES - 1] / perf[0];
        if ratio >= cfg.min_perf_ratio {
            return PStateLadder::from_relative_performance(perf);
        }
    }
    // With the paper's 15–25% steps the acceptance probability is ~97%, so
    // 64 rejections in a row indicates a misconfigured range.
    panic!("could not sample a P-state ladder satisfying min_perf_ratio");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::PState;

    fn gen() -> Cluster {
        generate_cluster(&ClusterGenConfig::paper(), &SeedDerive::new(1234))
    }

    #[test]
    fn paper_config_generates_eight_nodes() {
        assert_eq!(gen().num_nodes(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_cluster(&ClusterGenConfig::paper(), &SeedDerive::new(7));
        let b = generate_cluster(&ClusterGenConfig::paper(), &SeedDerive::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_cluster(&ClusterGenConfig::paper(), &SeedDerive::new(7));
        let b = generate_cluster(&ClusterGenConfig::paper(), &SeedDerive::new(8));
        assert_ne!(a, b);
    }

    #[test]
    fn counts_respect_ranges() {
        for node in gen().nodes() {
            assert!((1..=4).contains(&node.processors));
            assert!((1..=4).contains(&node.cores_per_processor));
        }
    }

    #[test]
    fn peak_power_in_paper_range() {
        for node in gen().nodes() {
            let peak = node.power.peak_watts();
            assert!((125.0..135.0).contains(&peak), "peak {peak}");
        }
    }

    #[test]
    fn deep_state_power_near_quarter_peak() {
        for node in gen().nodes() {
            let ratio = node.power.deepest_watts() / node.power.peak_watts();
            assert!((0.15..0.40).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn perf_ratio_bound_holds() {
        for (seed, _) in (0..20).enumerate() {
            let c = generate_cluster(&ClusterGenConfig::paper(), &SeedDerive::new(seed as u64));
            for node in c.nodes() {
                assert!(node.ladder.min_to_max_ratio() >= 0.42);
            }
        }
    }

    #[test]
    fn efficiency_in_paper_range() {
        for node in gen().nodes() {
            assert!((0.90..0.98).contains(&node.efficiency));
        }
    }

    #[test]
    fn nodes_are_heterogeneous() {
        // With 8 nodes, at least two should differ in peak power (the odds
        // of a seed collision across continuous draws are nil).
        let c = gen();
        let first = c.node(0).power.peak_watts();
        assert!(c.nodes().iter().any(|n| n.power.peak_watts() != first));
    }

    #[test]
    fn exec_multipliers_step_15_to_25_percent() {
        for node in gen().nodes() {
            for w in PState::ALL.windows(2) {
                let ratio =
                    node.ladder.relative_performance(w[0]) / node.ladder.relative_performance(w[1]);
                assert!((1.15..1.25).contains(&ratio), "step {ratio}");
            }
        }
    }

    #[test]
    fn small_config_generates() {
        let c = generate_cluster(&ClusterGenConfig::small_for_tests(), &SeedDerive::new(5));
        assert_eq!(c.num_nodes(), 3);
        assert!(c.total_cores() <= 12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let cfg = ClusterGenConfig {
            nodes: 0,
            ..ClusterGenConfig::paper()
        };
        let _ = generate_cluster(&cfg, &SeedDerive::new(1));
    }

    #[test]
    fn scaled_config_stamps_templates_round_robin() {
        let c = generate_cluster(&ClusterGenConfig::scaled(100, 8), &SeedDerive::new(9));
        assert_eq!(c.num_nodes(), 100);
        assert_eq!(c.num_templates(), 8);
        for i in 0..c.num_nodes() {
            assert_eq!(c.template_of(i), i % 8);
            assert_eq!(c.node(i), c.node(c.template_of(i)));
        }
    }

    #[test]
    fn scaled_generation_is_deterministic() {
        let a = generate_cluster(&ClusterGenConfig::scaled(1_000, 8), &SeedDerive::new(3));
        let b = generate_cluster(&ClusterGenConfig::scaled(1_000, 8), &SeedDerive::new(3));
        assert_eq!(a, b);
    }

    #[test]
    fn untemplated_path_is_unchanged_by_the_knob() {
        // `templates: None` must generate exactly what the pre-knob code
        // did: same per-node RNG substreams, same specs.
        let c = gen();
        assert_eq!(c.num_templates(), c.num_nodes());
        for i in 0..c.num_nodes() {
            assert_eq!(c.template_of(i), i);
        }
    }

    #[test]
    #[should_panic(expected = "1..=nodes")]
    fn more_templates_than_nodes_rejected() {
        let _ = generate_cluster(&ClusterGenConfig::scaled(4, 5), &SeedDerive::new(1));
    }
}
