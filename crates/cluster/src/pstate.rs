//! ACPI P-states and per-node clock-speed ladders.
//!
//! The ACPI standard defines up to 16 performance states; following the
//! paper we model five, `P0` (highest power, highest performance) through
//! `P4` (lowest power, lowest performance). Cores switch P-states only while
//! idle, transitions are instantaneous relative to task durations, and every
//! core in a node shares the same ladder.

/// Number of P-states modeled (paper Sec. III-A: the set `P`).
pub const NUM_PSTATES: usize = 5;

/// An ACPI processor performance state.
///
/// `P0` is the base state: highest frequency/voltage, highest power draw and
/// shortest execution times. `P4` is the deepest DVFS state: lowest power,
/// longest execution times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PState {
    /// Base state — fastest, most power-hungry.
    P0,
    /// One DVFS step below base.
    P1,
    /// Two DVFS steps below base.
    P2,
    /// Three DVFS steps below base.
    P3,
    /// Deepest DVFS state — slowest, most frugal.
    P4,
}

impl PState {
    /// All P-states, fastest first.
    pub const ALL: [PState; NUM_PSTATES] =
        [PState::P0, PState::P1, PState::P2, PState::P3, PState::P4];

    /// Index of this state (`P0 → 0`, ..., `P4 → 4`).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            PState::P0 => 0,
            PState::P1 => 1,
            PState::P2 => 2,
            PState::P3 => 3,
            PState::P4 => 4,
        }
    }

    /// The state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_PSTATES`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        Self::ALL[idx]
    }

    /// `true` for the base (fastest) state.
    #[inline]
    pub const fn is_base(self) -> bool {
        matches!(self, PState::P0)
    }

    /// `true` for the deepest (slowest) state.
    #[inline]
    pub const fn is_deepest(self) -> bool {
        matches!(self, PState::P4)
    }
}

impl std::fmt::Display for PState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.index())
    }
}

/// A node's clock-speed profile: per-P-state relative performance,
/// execution-time multipliers, and normalized frequencies.
///
/// Generated per the paper: performance steps up by a uniform 15–25% from
/// each state to the next-faster one, and the slowest state retains at least
/// 42% of the base state's performance (the paper observes this bound holds
/// for its generated ladders; we enforce it by resampling).
#[derive(Debug, Clone, PartialEq)]
pub struct PStateLadder {
    /// Relative performance per state, normalized so `perf[P0] == 1.0`;
    /// strictly decreasing in the state index.
    perf: [f64; NUM_PSTATES],
}

impl PStateLadder {
    /// Builds a ladder from relative performance values (any positive
    /// scale); they are normalized so the base state is 1.0.
    ///
    /// # Panics
    ///
    /// Panics unless the values are finite, positive, and strictly
    /// decreasing from `P0` to `P4`.
    pub fn from_relative_performance(perf: [f64; NUM_PSTATES]) -> Self {
        assert!(
            perf.iter().all(|p| p.is_finite() && *p > 0.0),
            "performance values must be finite and positive"
        );
        assert!(
            perf.windows(2).all(|w| w[0] > w[1]),
            "performance must strictly decrease from P0 to P4"
        );
        let base = perf[0];
        let mut normalized = perf;
        for p in &mut normalized {
            *p /= base;
        }
        Self { perf: normalized }
    }

    /// A uniform ladder where every state performs identically — useful in
    /// tests that want to neutralize DVFS effects.
    pub fn flat_for_tests() -> Self {
        // Strictly decreasing is required; use negligibly small steps.
        Self::from_relative_performance([1.0, 0.999999, 0.999998, 0.999997, 0.999996])
    }

    /// Relative performance of `state` (`1.0` at `P0`, decreasing).
    #[inline]
    pub fn relative_performance(&self, state: PState) -> f64 {
        self.perf[state.index()]
    }

    /// Execution-time multiplier of `state`: how much longer a task runs in
    /// `state` than in `P0` (`1.0` at `P0`, increasing with depth).
    #[inline]
    pub fn exec_time_multiplier(&self, state: PState) -> f64 {
        1.0 / self.perf[state.index()]
    }

    /// Normalized operating frequency of `state` (equal to relative
    /// performance: the paper scales execution time linearly with clock).
    #[inline]
    pub fn frequency(&self, state: PState) -> f64 {
        self.perf[state.index()]
    }

    /// Ratio of the slowest state's performance to the fastest's —
    /// the paper reports this never falls below 0.42.
    pub fn min_to_max_ratio(&self) -> f64 {
        self.perf[NUM_PSTATES - 1] / self.perf[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, s) in PState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(PState::from_index(i), *s);
        }
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = PState::from_index(5);
    }

    #[test]
    fn base_and_deepest_flags() {
        assert!(PState::P0.is_base());
        assert!(!PState::P0.is_deepest());
        assert!(PState::P4.is_deepest());
        assert!(!PState::P4.is_base());
    }

    #[test]
    fn display_formats_as_acpi_names() {
        assert_eq!(PState::P0.to_string(), "P0");
        assert_eq!(PState::P3.to_string(), "P3");
    }

    #[test]
    fn ordering_follows_depth() {
        assert!(PState::P0 < PState::P4);
    }

    fn ladder() -> PStateLadder {
        PStateLadder::from_relative_performance([2.0, 1.7, 1.4, 1.2, 1.0])
    }

    #[test]
    fn ladder_normalizes_to_base() {
        let l = ladder();
        assert_eq!(l.relative_performance(PState::P0), 1.0);
        assert!((l.relative_performance(PState::P4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exec_multiplier_is_inverse_performance() {
        let l = ladder();
        assert_eq!(l.exec_time_multiplier(PState::P0), 1.0);
        assert!((l.exec_time_multiplier(PState::P4) - 2.0).abs() < 1e-12);
        // Monotone: deeper states run longer.
        for w in PState::ALL.windows(2) {
            assert!(l.exec_time_multiplier(w[0]) < l.exec_time_multiplier(w[1]));
        }
    }

    #[test]
    fn min_to_max_ratio_matches() {
        assert!((ladder().min_to_max_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn non_monotone_ladder_rejected() {
        let _ = PStateLadder::from_relative_performance([1.0, 1.1, 0.9, 0.8, 0.7]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_performance_rejected() {
        let _ = PStateLadder::from_relative_performance([1.0, 0.8, 0.6, 0.4, 0.0]);
    }

    #[test]
    fn flat_ladder_is_effectively_uniform() {
        let l = PStateLadder::flat_for_tests();
        assert!((l.exec_time_multiplier(PState::P4) - 1.0).abs() < 1e-4);
    }
}
