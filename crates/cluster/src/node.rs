//! A single compute node: processor/core counts, P-state ladder, power
//! profile, and power-supply efficiency.

use crate::power::PowerProfile;
use crate::pstate::{PState, PStateLadder};

/// Specification of one compute node (paper Fig. 1 level 2).
///
/// Node `i` has `n(i)` multicore processors with `c(i)` cores each; all
/// cores in the node share one P-state ladder and one power profile, and the
/// node's power supply converts wall power to component power with
/// efficiency `ε(i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// `n(i)`: number of multicore processors (1..=4 in the paper).
    pub processors: usize,
    /// `c(i)`: cores per multicore processor (1..=4 in the paper).
    pub cores_per_processor: usize,
    /// The node's DVFS clock-speed profile.
    pub ladder: PStateLadder,
    /// The node's per-P-state power draw `μ(i, ·)`.
    pub power: PowerProfile,
    /// `ε(i)`: power-supply efficiency in (0, 1].
    pub efficiency: f64,
}

impl NodeSpec {
    /// Creates a node spec, validating counts and efficiency.
    pub fn new(
        processors: usize,
        cores_per_processor: usize,
        ladder: PStateLadder,
        power: PowerProfile,
        efficiency: f64,
    ) -> Self {
        assert!(processors >= 1, "node needs at least one processor");
        assert!(
            cores_per_processor >= 1,
            "processor needs at least one core"
        );
        assert!(
            efficiency.is_finite() && efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Self {
            processors,
            cores_per_processor,
            ladder,
            power,
            efficiency,
        }
    }

    /// Total cores in this node: `n(i) × c(i)`.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.processors * self.cores_per_processor
    }

    /// Wall power drawn when one core runs in `state`, including supply
    /// losses: `μ(i, π) / ε(i)` (the division in the paper's Eq. 2).
    #[inline]
    pub fn wall_watts(&self, state: PState) -> f64 {
        self.power.watts(state) / self.efficiency
    }

    /// Execution-time multiplier of `state` on this node.
    #[inline]
    pub fn exec_time_multiplier(&self, state: PState) -> f64 {
        self.ladder.exec_time_multiplier(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeSpec {
        NodeSpec::new(
            2,
            3,
            PStateLadder::from_relative_performance([2.0, 1.7, 1.4, 1.2, 1.0]),
            PowerProfile::from_watts([100.0, 80.0, 60.0, 40.0, 25.0]),
            0.9,
        )
    }

    #[test]
    fn total_cores_is_product() {
        assert_eq!(node().total_cores(), 6);
    }

    #[test]
    fn wall_watts_divides_by_efficiency() {
        let n = node();
        assert!((n.wall_watts(PState::P0) - 100.0 / 0.9).abs() < 1e-12);
        assert!((n.wall_watts(PState::P4) - 25.0 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn exec_multiplier_delegates_to_ladder() {
        let n = node();
        assert_eq!(n.exec_time_multiplier(PState::P0), 1.0);
        assert!((n.exec_time_multiplier(PState::P4) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let n = node();
        let _ = NodeSpec::new(0, 1, n.ladder, n.power, 0.9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let n = node();
        let _ = NodeSpec::new(1, 0, n.ladder, n.power, 0.9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn efficiency_above_one_rejected() {
        let n = node();
        let _ = NodeSpec::new(1, 1, n.ladder, n.power, 1.1);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        let n = node();
        let _ = NodeSpec::new(1, 1, n.ladder, n.power, 0.0);
    }

    #[test]
    fn perfect_efficiency_is_allowed() {
        let n = node();
        let spec = NodeSpec::new(1, 1, n.ladder, n.power, 1.0);
        assert_eq!(spec.wall_watts(PState::P0), 100.0);
    }
}
