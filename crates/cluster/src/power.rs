//! CMOS dynamic-power model and per-node power profiles (paper Eq. 7,
//! Sec. VI).
//!
//! Power in state π is `μ(i, π) = A·C_L·V(π)²·f(π)`: the paper draws a peak
//! (P0) wattage uniformly in \[125, 135\] W per node, draws a deep-state
//! voltage in \[1.000, 1.150\] V and a base-state voltage in
//! \[1.400, 1.550\] V, linearly interpolates voltages for the middle states,
//! takes frequencies proportional to the node's performance ladder, folds
//! `A·C_L` into a constant calibrated from the peak wattage, and evaluates
//! Eq. 7 for every state. The resulting deep-state power lands near 25% of
//! peak, matching contemporary AMD Phenom parts.

use crate::pstate::{PState, PStateLadder, NUM_PSTATES};

/// A validated voltage range `[lo, hi]` in volts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageRange {
    /// Lower bound (volts).
    pub lo: f64,
    /// Upper bound (volts).
    pub hi: f64,
}

impl VoltageRange {
    /// Creates a range; bounds must be finite, positive, and ordered.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo > 0.0, "voltages must be positive");
        assert!(lo <= hi, "lo must not exceed hi");
        Self { lo, hi }
    }
}

/// Per-node, per-P-state average power draw `μ(i, π)` in watts.
///
/// The paper approximates within-state power variation by a scalar average
/// (Sec. III-A); its future-work section suggests full power distributions,
/// which `ecds-ext::power_pmf` provides.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerProfile {
    watts: [f64; NUM_PSTATES],
}

impl PowerProfile {
    /// Builds a profile directly from per-state wattages.
    ///
    /// # Panics
    ///
    /// Panics unless the wattages are finite, positive, and strictly
    /// decreasing from `P0` to `P4` (more performance must cost more power —
    /// the paper's monotonicity assumption).
    pub fn from_watts(watts: [f64; NUM_PSTATES]) -> Self {
        assert!(
            watts.iter().all(|w| w.is_finite() && *w > 0.0),
            "wattages must be finite and positive"
        );
        assert!(
            watts.windows(2).all(|w| w[0] > w[1]),
            "power must strictly decrease from P0 to P4"
        );
        Self { watts }
    }

    /// Evaluates the CMOS model for a node: peak wattage at `P0`, voltages
    /// interpolated linearly from `v_base` (at `P0`) down to `v_deep`
    /// (at `P4`), frequencies proportional to the ladder's performance.
    ///
    /// `A·C_L` is eliminated by calibration:
    /// `μ(π) = peak · (V(π)/V(P0))² · (f(π)/f(P0))`.
    pub fn from_cmos(peak_watts: f64, v_base: f64, v_deep: f64, ladder: &PStateLadder) -> Self {
        assert!(
            peak_watts.is_finite() && peak_watts > 0.0,
            "peak wattage must be positive"
        );
        assert!(
            v_base.is_finite() && v_deep.is_finite() && v_deep > 0.0,
            "voltages must be finite and positive"
        );
        assert!(v_base > v_deep, "base voltage must exceed deep voltage");
        let mut watts = [0.0; NUM_PSTATES];
        let steps = (NUM_PSTATES - 1) as f64;
        for state in PState::ALL {
            let idx = state.index() as f64;
            // Linear interpolation: idx 0 → v_base, idx 4 → v_deep.
            let v = v_base + (v_deep - v_base) * idx / steps;
            let f = ladder.frequency(state); // 1.0 at P0
            watts[state.index()] = peak_watts * (v / v_base).powi(2) * f;
        }
        Self::from_watts(watts)
    }

    /// Power draw of one core in `state`, in watts — `μ(i, π)`.
    #[inline]
    pub fn watts(&self, state: PState) -> f64 {
        self.watts[state.index()]
    }

    /// Peak (P0) power draw.
    #[inline]
    pub fn peak_watts(&self) -> f64 {
        self.watts[0]
    }

    /// Deepest-state (P4) power draw.
    #[inline]
    pub fn deepest_watts(&self) -> f64 {
        self.watts[NUM_PSTATES - 1]
    }

    /// Mean power over all P-states of this node — the inner term of the
    /// paper's Eq. 8.
    pub fn mean_watts(&self) -> f64 {
        self.watts.iter().sum::<f64>() / NUM_PSTATES as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> PStateLadder {
        // ~20% performance step per state.
        PStateLadder::from_relative_performance([2.0736, 1.728, 1.44, 1.2, 1.0])
    }

    #[test]
    fn cmos_peak_is_exact() {
        let p = PowerProfile::from_cmos(130.0, 1.475, 1.075, &ladder());
        assert!((p.peak_watts() - 130.0).abs() < 1e-9);
    }

    #[test]
    fn cmos_power_strictly_decreases_with_depth() {
        let p = PowerProfile::from_cmos(130.0, 1.475, 1.075, &ladder());
        for w in PState::ALL.windows(2) {
            assert!(p.watts(w[0]) > p.watts(w[1]));
        }
    }

    #[test]
    fn cmos_deep_state_is_roughly_quarter_of_peak() {
        // Paper: "power consumption for the low P-state of about 25% that in
        // the high P-state". With a ~2x frequency ratio and (1.075/1.475)²
        // voltage ratio: 0.482 · 0.531 ≈ 0.256.
        let p = PowerProfile::from_cmos(130.0, 1.475, 1.075, &ladder());
        let ratio = p.deepest_watts() / p.peak_watts();
        assert!((0.18..0.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mean_watts_averages_states() {
        let p = PowerProfile::from_watts([100.0, 80.0, 60.0, 40.0, 20.0]);
        assert!((p.mean_watts() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn watts_lookup_by_state() {
        let p = PowerProfile::from_watts([100.0, 80.0, 60.0, 40.0, 20.0]);
        assert_eq!(p.watts(PState::P2), 60.0);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn non_monotone_watts_rejected() {
        let _ = PowerProfile::from_watts([100.0, 80.0, 90.0, 40.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "base voltage must exceed")]
    fn inverted_voltages_rejected() {
        let _ = PowerProfile::from_cmos(130.0, 1.0, 1.4, &ladder());
    }

    #[test]
    #[should_panic(expected = "peak wattage")]
    fn zero_peak_rejected() {
        let _ = PowerProfile::from_cmos(0.0, 1.475, 1.075, &ladder());
    }

    #[test]
    fn voltage_range_validates() {
        let r = VoltageRange::new(1.0, 1.15);
        assert_eq!(r.lo, 1.0);
        assert_eq!(r.hi, 1.15);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn inverted_voltage_range_rejected() {
        let _ = VoltageRange::new(1.5, 1.0);
    }
}
