//! The cluster: a validated collection of nodes with flat core addressing.
//!
//! The paper addresses a core as the triple (node `i`, multicore processor
//! `j`, core `k`); the simulator additionally wants a dense flat index for
//! per-core state arrays. [`CoreId`] carries both.

use crate::node::NodeSpec;
use crate::pstate::{PState, NUM_PSTATES};

/// Address of one core: the paper's `(i, j, k)` triple plus a dense flat
/// index assigned in node-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreId {
    /// Node index `i` (0-based).
    pub node: usize,
    /// Multicore-processor index `j` within the node (0-based).
    pub processor: usize,
    /// Core index `k` within the processor (0-based).
    pub core: usize,
    /// Dense index over all cores in the cluster, node-major then
    /// processor-major; stable for a given cluster.
    pub flat: usize,
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}p{}c{}", self.node, self.processor, self.core)
    }
}

/// A heterogeneous compute cluster (paper Fig. 1 level 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    nodes: Vec<NodeSpec>,
    cores: Vec<CoreId>,
}

impl Cluster {
    /// Builds a cluster from node specs and precomputes the flat core list.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        let mut cores = Vec::new();
        let mut flat = 0;
        for (node, spec) in nodes.iter().enumerate() {
            for processor in 0..spec.processors {
                for core in 0..spec.cores_per_processor {
                    cores.push(CoreId {
                        node,
                        processor,
                        core,
                        flat,
                    });
                    flat += 1;
                }
            }
        }
        Self { nodes, cores }
    }

    /// Number of nodes `N`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node specs.
    #[inline]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Spec of node `i`.
    #[inline]
    pub fn node(&self, i: usize) -> &NodeSpec {
        &self.nodes[i]
    }

    /// All cores, in flat order.
    #[inline]
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// Total core count `Σ n(i)·c(i)`.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.cores.len()
    }

    /// The core with the given flat index.
    #[inline]
    pub fn core(&self, flat: usize) -> CoreId {
        self.cores[flat]
    }

    /// The node spec owning `core`.
    #[inline]
    pub fn node_of(&self, core: CoreId) -> &NodeSpec {
        &self.nodes[core.node]
    }

    /// Eq. 8: `p_avg`, the mean of `μ(i, π)` over all nodes and all
    /// P-states (note: per the paper this averages per *node*, not per
    /// core — a node's core count does not weight it).
    pub fn average_power(&self) -> f64 {
        let total: f64 = self
            .nodes
            .iter()
            .map(|n| PState::ALL.iter().map(|&s| n.power.watts(s)).sum::<f64>())
            .sum();
        total / (self.nodes.len() * NUM_PSTATES) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerProfile;
    use crate::pstate::PStateLadder;

    fn mk_node(processors: usize, cores: usize, peak: f64) -> NodeSpec {
        NodeSpec::new(
            processors,
            cores,
            PStateLadder::from_relative_performance([2.0, 1.7, 1.4, 1.2, 1.0]),
            PowerProfile::from_watts([peak, peak * 0.8, peak * 0.6, peak * 0.4, peak * 0.25]),
            0.95,
        )
    }

    fn cluster() -> Cluster {
        Cluster::new(vec![mk_node(1, 2, 100.0), mk_node(2, 3, 200.0)])
    }

    #[test]
    fn core_enumeration_is_dense_and_ordered() {
        let c = cluster();
        assert_eq!(c.total_cores(), 2 + 2 * 3);
        for (idx, core) in c.cores().iter().enumerate() {
            assert_eq!(core.flat, idx);
        }
        // First node's cores precede the second node's.
        assert_eq!(c.core(0).node, 0);
        assert_eq!(c.core(2).node, 1);
    }

    #[test]
    fn core_triple_addressing() {
        let c = cluster();
        let last = c.core(c.total_cores() - 1);
        assert_eq!(last.node, 1);
        assert_eq!(last.processor, 1);
        assert_eq!(last.core, 2);
    }

    #[test]
    fn node_of_resolves_spec() {
        let c = cluster();
        assert_eq!(c.node_of(c.core(0)).total_cores(), 2);
        assert_eq!(c.node_of(c.core(5)).total_cores(), 6);
    }

    #[test]
    fn average_power_is_node_weighted() {
        let c = cluster();
        // Node 1: mean of 100·(1, .8, .6, .4, .25)/5 = 61.0
        // Node 2: 122.0; cluster average = 91.5 regardless of core counts.
        assert!((c.average_power() - 91.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = Cluster::new(vec![]);
    }

    #[test]
    fn display_core_id() {
        let c = cluster();
        assert_eq!(c.core(0).to_string(), "n0p0c0");
    }

    #[test]
    fn single_core_cluster() {
        let c = Cluster::new(vec![mk_node(1, 1, 130.0)]);
        assert_eq!(c.total_cores(), 1);
        assert_eq!(c.core(0).flat, 0);
    }
}
