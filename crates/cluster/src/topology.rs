//! The cluster: a validated collection of nodes with flat core addressing.
//!
//! The paper addresses a core as the triple (node `i`, multicore processor
//! `j`, core `k`); the simulator additionally wants a dense flat index for
//! per-core state arrays. [`CoreId`] carries both.

use crate::node::NodeSpec;
use crate::pstate::{PState, NUM_PSTATES};

/// Address of one core: the paper's `(i, j, k)` triple plus a dense flat
/// index assigned in node-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreId {
    /// Node index `i` (0-based).
    pub node: usize,
    /// Multicore-processor index `j` within the node (0-based).
    pub processor: usize,
    /// Core index `k` within the processor (0-based).
    pub core: usize,
    /// Dense index over all cores in the cluster, node-major then
    /// processor-major; stable for a given cluster.
    pub flat: usize,
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}p{}c{}", self.node, self.processor, self.core)
    }
}

/// A heterogeneous compute cluster (paper Fig. 1 level 1).
///
/// Every node belongs to a *template* — an equivalence class of nodes with
/// identical specs. At paper scale each node is its own template (the
/// identity mapping [`Cluster::new`] installs), so nothing changes; the
/// mega-scale generator stamps out thousands of nodes from a handful of
/// templates, and per-node derived data (execution-time pmfs, candidate
/// classes) is stored once per template instead of once per node.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    nodes: Vec<NodeSpec>,
    cores: Vec<CoreId>,
    template_of: Vec<u32>,
    num_templates: usize,
}

impl Cluster {
    /// Builds a cluster from node specs and precomputes the flat core list.
    /// Each node becomes its own template (the heterogeneous identity
    /// mapping — exact for the paper's 8 distinct nodes).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        let template_of = (0..nodes.len() as u32).collect();
        Self::with_templates(nodes, template_of)
    }

    /// Builds a cluster whose node `i` instantiates template
    /// `template_of[i]`. Templates let derived per-node tables collapse to
    /// per-template tables, so a 10⁴-node cluster with 8 templates costs
    /// what an 8-node cluster does.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty, the mapping length mismatches, a
    /// template id is unused or out of range, or two nodes sharing a
    /// template have different specs (templates assert *exact* spec
    /// equality — that is what makes template-keyed caches sound).
    pub fn with_templates(nodes: Vec<NodeSpec>, template_of: Vec<u32>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        assert_eq!(
            nodes.len(),
            template_of.len(),
            "template mapping must cover every node"
        );
        let num_templates = template_of.iter().copied().max().unwrap() as usize + 1;
        let mut representative = vec![usize::MAX; num_templates];
        for (node, &template) in template_of.iter().enumerate() {
            let rep = &mut representative[template as usize];
            if *rep == usize::MAX {
                *rep = node;
            } else {
                assert_eq!(
                    nodes[*rep], nodes[node],
                    "nodes sharing a template must have identical specs"
                );
            }
        }
        assert!(
            representative.iter().all(|&r| r != usize::MAX),
            "every template id up to the maximum must be used"
        );
        let mut cores = Vec::new();
        let mut flat = 0;
        for (node, spec) in nodes.iter().enumerate() {
            for processor in 0..spec.processors {
                for core in 0..spec.cores_per_processor {
                    cores.push(CoreId {
                        node,
                        processor,
                        core,
                        flat,
                    });
                    flat += 1;
                }
            }
        }
        Self {
            nodes,
            cores,
            template_of,
            num_templates,
        }
    }

    /// Number of nodes `N`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node specs.
    #[inline]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Spec of node `i`.
    #[inline]
    pub fn node(&self, i: usize) -> &NodeSpec {
        &self.nodes[i]
    }

    /// All cores, in flat order.
    #[inline]
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// Total core count `Σ n(i)·c(i)`.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.cores.len()
    }

    /// The core with the given flat index.
    #[inline]
    pub fn core(&self, flat: usize) -> CoreId {
        self.cores[flat]
    }

    /// The node spec owning `core`.
    #[inline]
    pub fn node_of(&self, core: CoreId) -> &NodeSpec {
        &self.nodes[core.node]
    }

    /// Number of node templates (== [`Cluster::num_nodes`] for clusters
    /// built with [`Cluster::new`]).
    #[inline]
    pub fn num_templates(&self) -> usize {
        self.num_templates
    }

    /// Template id of node `i`.
    #[inline]
    pub fn template_of(&self, node: usize) -> usize {
        self.template_of[node] as usize
    }

    /// The node→template mapping, node-indexed.
    #[inline]
    pub fn templates(&self) -> &[u32] {
        &self.template_of
    }

    /// Eq. 8: `p_avg`, the mean of `μ(i, π)` over all nodes and all
    /// P-states (note: per the paper this averages per *node*, not per
    /// core — a node's core count does not weight it).
    pub fn average_power(&self) -> f64 {
        let total: f64 = self
            .nodes
            .iter()
            .map(|n| PState::ALL.iter().map(|&s| n.power.watts(s)).sum::<f64>())
            .sum();
        total / (self.nodes.len() * NUM_PSTATES) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerProfile;
    use crate::pstate::PStateLadder;

    fn mk_node(processors: usize, cores: usize, peak: f64) -> NodeSpec {
        NodeSpec::new(
            processors,
            cores,
            PStateLadder::from_relative_performance([2.0, 1.7, 1.4, 1.2, 1.0]),
            PowerProfile::from_watts([peak, peak * 0.8, peak * 0.6, peak * 0.4, peak * 0.25]),
            0.95,
        )
    }

    fn cluster() -> Cluster {
        Cluster::new(vec![mk_node(1, 2, 100.0), mk_node(2, 3, 200.0)])
    }

    #[test]
    fn core_enumeration_is_dense_and_ordered() {
        let c = cluster();
        assert_eq!(c.total_cores(), 2 + 2 * 3);
        for (idx, core) in c.cores().iter().enumerate() {
            assert_eq!(core.flat, idx);
        }
        // First node's cores precede the second node's.
        assert_eq!(c.core(0).node, 0);
        assert_eq!(c.core(2).node, 1);
    }

    #[test]
    fn core_triple_addressing() {
        let c = cluster();
        let last = c.core(c.total_cores() - 1);
        assert_eq!(last.node, 1);
        assert_eq!(last.processor, 1);
        assert_eq!(last.core, 2);
    }

    #[test]
    fn node_of_resolves_spec() {
        let c = cluster();
        assert_eq!(c.node_of(c.core(0)).total_cores(), 2);
        assert_eq!(c.node_of(c.core(5)).total_cores(), 6);
    }

    #[test]
    fn average_power_is_node_weighted() {
        let c = cluster();
        // Node 1: mean of 100·(1, .8, .6, .4, .25)/5 = 61.0
        // Node 2: 122.0; cluster average = 91.5 regardless of core counts.
        assert!((c.average_power() - 91.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = Cluster::new(vec![]);
    }

    #[test]
    fn display_core_id() {
        let c = cluster();
        assert_eq!(c.core(0).to_string(), "n0p0c0");
    }

    #[test]
    fn single_core_cluster() {
        let c = Cluster::new(vec![mk_node(1, 1, 130.0)]);
        assert_eq!(c.total_cores(), 1);
        assert_eq!(c.core(0).flat, 0);
    }

    #[test]
    fn new_installs_identity_templates() {
        let c = cluster();
        assert_eq!(c.num_templates(), c.num_nodes());
        for i in 0..c.num_nodes() {
            assert_eq!(c.template_of(i), i);
        }
    }

    #[test]
    fn templated_nodes_share_specs() {
        let a = mk_node(1, 2, 100.0);
        let b = mk_node(2, 3, 200.0);
        let c = Cluster::with_templates(vec![a.clone(), b.clone(), a.clone(), b], vec![0, 1, 0, 1]);
        assert_eq!(c.num_templates(), 2);
        assert_eq!(c.template_of(2), 0);
        assert_eq!(c.total_cores(), 2 + 6 + 2 + 6);
    }

    #[test]
    #[should_panic(expected = "identical specs")]
    fn mismatched_template_specs_rejected() {
        let _ =
            Cluster::with_templates(vec![mk_node(1, 2, 100.0), mk_node(1, 2, 150.0)], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "must be used")]
    fn unused_template_id_rejected() {
        let _ =
            Cluster::with_templates(vec![mk_node(1, 2, 100.0), mk_node(1, 2, 100.0)], vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn short_template_mapping_rejected() {
        let _ = Cluster::with_templates(vec![mk_node(1, 2, 100.0)], vec![]);
    }
}
