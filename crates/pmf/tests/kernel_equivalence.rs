//! Property-based proof that the fused scratch kernel is *bit-identical* —
//! `assert_eq!` on the full impulse lists, not approximate — to the legacy
//! `convolve` + `reduce` pipeline. Bit-identity is load-bearing: impulse
//! reduction makes convolution non-associative, and the prefix cache's
//! correctness argument (DESIGN.md §7) assumes recompute ≡ cached
//! bit-for-bit, so the fused and legacy paths must be interchangeable at
//! the bit level across every policy.

use ecds_pmf::convolve::convolve_all;
use ecds_pmf::truncate::truncate_below_or_floor;
use ecds_pmf::{Pmf, PmfScratch, ReductionPolicy};
use proptest::prelude::*;

/// Strategy producing a valid pmf with 1..=12 impulses, values in
/// [0, 1000], weights in (0, 1].
fn arb_pmf() -> impl Strategy<Value = Pmf> {
    prop::collection::vec((0.0f64..1000.0, 0.01f64..1.0), 1..=12)
        .prop_map(|pairs| Pmf::from_pairs(&pairs).expect("valid pairs"))
}

/// The policies under test: no reduction, degenerate single-impulse cap,
/// caps below and at the workspace default.
fn arb_policy() -> impl Strategy<Value = ReductionPolicy> {
    // 0 encodes `unlimited`; 1..=24 are literal caps (1 = degenerate
    // single-impulse cap, 24 = the workspace default).
    (0usize..=24).prop_map(|cap| match cap {
        0 => ReductionPolicy::unlimited(),
        n => ReductionPolicy::new(n),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fused_equals_legacy_bitwise(a in arb_pmf(), b in arb_pmf(), policy in arb_policy()) {
        let legacy = a.convolve(&b, policy);
        let mut scratch = PmfScratch::new();
        let fused = scratch.convolve_reduced_into(&a, &b, policy);
        // Pmf's PartialEq compares every impulse's value and prob with f64
        // equality: bit-identity, not tolerance.
        prop_assert_eq!(fused, legacy);
    }

    #[test]
    fn fused_view_moments_equal_legacy_bitwise(
        a in arb_pmf(),
        b in arb_pmf(),
        policy in arb_policy(),
        x in 0.0f64..2500.0,
    ) {
        let legacy = a.convolve(&b, policy);
        let mut scratch = PmfScratch::new();
        let view = scratch.convolve_reduced(&a, &b, policy);
        prop_assert_eq!(view.expectation(), legacy.expectation());
        prop_assert_eq!(view.prob_le(x), legacy.prob_le(x));
        prop_assert_eq!(view.min_value(), legacy.min_value());
        prop_assert_eq!(view.max_value(), legacy.max_value());
    }

    #[test]
    fn chained_convolutions_stay_bit_identical(
        pmfs in prop::collection::vec(arb_pmf(), 2..=5),
        policy in arb_policy(),
    ) {
        // Chains compound any divergence: one ULP in step 1 changes the
        // reduction bucketing of step 2. Fold both pipelines and compare at
        // the end — and at every intermediate step via the prefix API.
        let legacy = convolve_all(pmfs.iter(), policy).expect("non-empty");
        let mut scratch = PmfScratch::new();
        scratch.load_prefix_shifted(&pmfs[0], 0.0);
        for (step, next) in pmfs[1..].iter().enumerate() {
            scratch.convolve_prefix_with(next, policy);
            let legacy_step = convolve_all(pmfs[..step + 2].iter(), policy).unwrap();
            prop_assert_eq!(scratch.prefix().to_pmf(), legacy_step);
        }
        prop_assert_eq!(scratch.prefix().to_pmf(), legacy);
    }

    #[test]
    fn scratch_reuse_does_not_contaminate(
        a in arb_pmf(),
        b in arb_pmf(),
        c in arb_pmf(),
        d in arb_pmf(),
        p1 in arb_policy(),
        p2 in arb_policy(),
    ) {
        // Two unrelated kernel calls through one workspace must each match
        // a fresh legacy computation — stale buffer contents must be
        // invisible.
        let mut scratch = PmfScratch::new();
        let first = scratch.convolve_reduced_into(&a, &b, p1);
        let second = scratch.convolve_reduced_into(&c, &d, p2);
        prop_assert_eq!(first, a.convolve(&b, p1));
        prop_assert_eq!(second, c.convolve(&d, p2));
    }

    #[test]
    fn in_place_shift_equals_allocating_shift(p in arb_pmf(), dt in -500.0f64..500.0) {
        let legacy = p.shift(dt);
        let mut in_place = p.clone();
        in_place.shift_in_place(dt);
        prop_assert_eq!(in_place, legacy);
    }

    #[test]
    fn in_place_truncate_equals_allocating_truncate(
        p in arb_pmf(),
        cutoff in 0.0f64..1200.0,
    ) {
        let legacy = truncate_below_or_floor(&p, cutoff);
        let mut in_place = p.clone();
        in_place.truncate_below_or_floor_in_place(cutoff);
        prop_assert_eq!(in_place, legacy);
    }

    #[test]
    fn scratch_prefix_pipeline_equals_legacy_pipeline(
        exec in arb_pmf(),
        queued in prop::collection::vec(arb_pmf(), 0..=4),
        start in 0.0f64..200.0,
        dt in 0.0f64..1500.0,
        policy in arb_policy(),
    ) {
        // The full queue-prefix build as the evaluator runs it: shift the
        // executing pmf by its start, truncate-or-floor at `now`, then
        // convolve the queued pmfs on in FIFO order.
        let now = start + dt;
        let legacy = {
            let mut acc = truncate_below_or_floor(&exec.shift(start), now);
            for q in &queued {
                acc = acc.convolve(q, policy);
            }
            acc
        };
        let mut scratch = PmfScratch::new();
        scratch.load_prefix_shifted(&exec, start);
        scratch.truncate_prefix_below_or_floor(now);
        for q in &queued {
            scratch.convolve_prefix_with(q, policy);
        }
        prop_assert_eq!(scratch.prefix().to_pmf(), legacy);
    }
}
