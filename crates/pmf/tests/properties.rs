//! Property-based tests of the pmf algebra invariants that the robustness
//! machinery depends on.

use ecds_pmf::{Impulse, Pmf, ReductionPolicy};
use proptest::prelude::*;

/// Strategy producing a valid pmf with 1..=12 impulses, values in
/// [0, 1000], weights in (0, 1].
fn arb_pmf() -> impl Strategy<Value = Pmf> {
    prop::collection::vec((0.0f64..1000.0, 0.01f64..1.0), 1..=12).prop_map(|pairs| {
        // Deduplicate values so the pmf has deterministic support size.
        Pmf::from_pairs(&pairs).expect("valid pairs")
    })
}

proptest! {
    #[test]
    fn construction_normalizes_mass(p in arb_pmf()) {
        prop_assert!((p.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impulses_sorted_strictly(p in arb_pmf()) {
        for w in p.impulses().windows(2) {
            prop_assert!(w[0].value < w[1].value);
        }
    }

    #[test]
    fn convolution_preserves_mass(a in arb_pmf(), b in arb_pmf()) {
        let c = a.convolve(&b, ReductionPolicy::unlimited());
        prop_assert!((c.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_adds_means(a in arb_pmf(), b in arb_pmf()) {
        let c = a.convolve(&b, ReductionPolicy::unlimited());
        let expected = a.expectation() + b.expectation();
        prop_assert!((c.expectation() - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn convolution_adds_variances(a in arb_pmf(), b in arb_pmf()) {
        let c = a.convolve(&b, ReductionPolicy::unlimited());
        let expected = a.variance() + b.variance();
        prop_assert!((c.variance() - expected).abs() < 1e-5 * expected.max(1.0));
    }

    #[test]
    fn reduced_convolution_preserves_mean(a in arb_pmf(), b in arb_pmf(), cap in 1usize..8) {
        let c = a.convolve(&b, ReductionPolicy::new(cap));
        prop_assert!(c.len() <= cap);
        let expected = a.expectation() + b.expectation();
        prop_assert!((c.expectation() - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn reduction_bounds_support(p in arb_pmf(), cap in 1usize..6) {
        let r = p.reduce(ReductionPolicy::new(cap));
        prop_assert!(r.len() <= cap.min(p.len()));
        prop_assert!(r.min_value() >= p.min_value() - 1e-9);
        prop_assert!(r.max_value() <= p.max_value() + 1e-9);
        prop_assert!((r.expectation() - p.expectation()).abs() < 1e-6 * p.expectation().max(1.0));
    }

    #[test]
    fn cdf_is_monotone(p in arb_pmf(), xs in prop::collection::vec(0.0f64..1200.0, 2..8)) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut last = 0.0;
        for x in sorted {
            let c = p.prob_le(x);
            prop_assert!(c >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&c));
            last = c;
        }
    }

    #[test]
    fn quantile_then_cdf_covers_u(p in arb_pmf(), u in 0.0f64..1.0) {
        let v = p.quantile(u).unwrap();
        prop_assert!(p.prob_le(v) + 1e-9 >= u);
    }

    #[test]
    fn quantile_is_monotone(p in arb_pmf(), u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(p.quantile(lo).unwrap() <= p.quantile(hi).unwrap());
    }

    #[test]
    fn shift_translates_moments(p in arb_pmf(), dt in -500.0f64..500.0) {
        let s = p.shift(dt);
        prop_assert!((s.expectation() - (p.expectation() + dt)).abs() < 1e-6);
        prop_assert!((s.variance() - p.variance()).abs() < 1e-4 * p.variance().max(1.0));
    }

    #[test]
    fn truncation_yields_valid_pmf(p in arb_pmf(), cut in 0.0f64..1000.0) {
        match p.truncate_below(cut) {
            Ok(t) => {
                prop_assert!((t.total_mass() - 1.0).abs() < 1e-9);
                prop_assert!(t.min_value() >= cut);
                prop_assert!(t.expectation() + 1e-9 >= p.expectation()
                    || t.expectation() >= cut - 1e-9);
            }
            Err(_) => {
                prop_assert!(p.max_value() < cut);
            }
        }
    }

    #[test]
    fn truncation_never_lowers_expectation(p in arb_pmf(), cut in 0.0f64..900.0) {
        if let Ok(t) = p.truncate_below(cut) {
            prop_assert!(t.expectation() + 1e-9 >= p.expectation().min(t.min_value()));
            // Stronger: conditioning on X >= cut cannot lower the mean.
            prop_assert!(t.expectation() + 1e-6 >= p.expectation());
        }
    }

    #[test]
    fn scale_values_scales_moments(p in arb_pmf(), f in 0.1f64..4.0) {
        let s = p.scale_values(f);
        prop_assert!((s.expectation() - f * p.expectation()).abs() < 1e-6 * p.expectation().max(1.0));
    }
}

#[test]
fn impulse_list_round_trip() {
    let imps = vec![Impulse::new(1.0, 0.25), Impulse::new(2.0, 0.75)];
    let p = Pmf::new(imps.clone()).unwrap();
    assert_eq!(p.impulses(), imps.as_slice());
}
