//! Checkpoint codecs for the pmf types ([`ecds_persist::Persist`] impls).
//!
//! Lives here rather than in `ecds-persist` because decoding a [`Pmf`]
//! must re-establish the type's invariants through the crate-private
//! invariant constructor: a checkpoint is untrusted input, so the decoder
//! validates every invariant explicitly and reports
//! [`DecodeError::Corrupt`] instead of panicking.

use ecds_persist::{DecodeError, Decoder, Encoder, Persist};

use crate::impulse::Impulse;
use crate::pmf::Pmf;

impl Persist for Impulse {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.value);
        enc.put_f64(self.prob);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let value = dec.f64()?;
        let prob = dec.f64()?;
        Ok(Self { value, prob })
    }
}

impl Persist for Pmf {
    fn encode(&self, enc: &mut Encoder) {
        let imps = self.impulses();
        enc.put_u64(imps.len() as u64);
        for imp in imps {
            imp.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.u64()?;
        if n == 0 {
            return Err(DecodeError::Corrupt("pmf needs at least one impulse"));
        }
        // 16 bytes per impulse: reject absurd lengths before allocating.
        if n > dec.remaining() / 16 {
            return Err(DecodeError::Truncated);
        }
        let mut impulses = Vec::with_capacity(n as usize);
        for _ in 0..n {
            impulses.push(Impulse::decode(dec)?);
        }
        // Re-establish every invariant of `from_invariant_impulses` on the
        // untrusted bytes (same bounds as its debug assertions).
        if !impulses.iter().all(Impulse::is_valid) {
            return Err(DecodeError::Corrupt("pmf impulse not valid"));
        }
        if !impulses.windows(2).all(|w| w[0].value < w[1].value) {
            return Err(DecodeError::Corrupt("pmf impulses not strictly sorted"));
        }
        if (impulses.iter().map(|i| i.prob).sum::<f64>() - 1.0).abs() >= 1e-6 {
            return Err(DecodeError::Corrupt("pmf mass not 1"));
        }
        Ok(Pmf::from_invariant_impulses(impulses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist>(value: &T) -> T {
        let mut enc = Encoder::new();
        value.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let out = T::decode(&mut dec).expect("decodes");
        dec.finish().expect("no trailing bytes");
        out
    }

    #[test]
    fn impulse_roundtrips_bit_identically() {
        let imp = Impulse::new(1353.25, 0.125);
        let back = roundtrip(&imp);
        assert_eq!(back.value.to_bits(), imp.value.to_bits());
        assert_eq!(back.prob.to_bits(), imp.prob.to_bits());
    }

    #[test]
    fn pmf_roundtrips_bit_identically() {
        let pmf = Pmf::from_pairs(&[(10.0, 0.5), (20.0, 0.25), (45.5, 0.25)]).unwrap();
        assert!(roundtrip(&pmf).bit_eq(&pmf));
    }

    #[test]
    fn empty_pmf_rejected() {
        let mut enc = Encoder::new();
        enc.put_u64(0);
        let bytes = enc.into_bytes();
        assert_eq!(
            Pmf::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::Corrupt("pmf needs at least one impulse"))
        );
    }

    #[test]
    fn unsorted_pmf_rejected() {
        let mut enc = Encoder::new();
        enc.put_u64(2);
        Impulse::new(20.0, 0.5).encode(&mut enc);
        Impulse::new(10.0, 0.5).encode(&mut enc);
        let bytes = enc.into_bytes();
        assert_eq!(
            Pmf::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::Corrupt("pmf impulses not strictly sorted"))
        );
    }

    #[test]
    fn unnormalized_pmf_rejected() {
        let mut enc = Encoder::new();
        enc.put_u64(1);
        Impulse::new(10.0, 0.25).encode(&mut enc);
        let bytes = enc.into_bytes();
        assert_eq!(
            Pmf::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::Corrupt("pmf mass not 1"))
        );
    }

    #[test]
    fn oversized_impulse_count_rejected_before_allocation() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        let bytes = enc.into_bytes();
        assert_eq!(
            Pmf::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut enc = Encoder::new();
        enc.put_u64(2);
        Impulse {
            value: 10.0,
            prob: 1.5,
        }
        .encode(&mut enc);
        Impulse {
            value: 20.0,
            prob: -0.5,
        }
        .encode(&mut enc);
        let bytes = enc.into_bytes();
        assert_eq!(
            Pmf::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::Corrupt("pmf impulse not valid"))
        );
    }

    #[test]
    fn truncated_pmf_reports_truncated() {
        let pmf = Pmf::from_pairs(&[(10.0, 0.5), (20.0, 0.5)]).unwrap();
        let mut enc = Encoder::new();
        pmf.encode(&mut enc);
        let bytes = enc.into_bytes();
        assert_eq!(
            Pmf::decode(&mut Decoder::new(&bytes[..bytes.len() - 1])),
            Err(DecodeError::Truncated)
        );
    }
}
