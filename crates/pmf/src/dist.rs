//! Continuous samplers implemented over `rand`'s uniform primitives.
//!
//! The CVB heterogeneity generator (\[AlS00\]) needs gamma variates, the
//! Poisson arrival process needs exponential inter-arrival gaps, and the
//! cluster generator needs bounded uniforms. They are implemented here —
//! gamma via the Marsaglia–Tsang (2000) squeeze method — so that the only
//! external randomness dependency is `rand`'s core uniform generator and
//! sampling behaviour is pinned by this crate's own tests.

use rand::Rng;

/// A gamma distribution parameterized by shape `alpha` and scale `theta`
/// (mean `alpha·theta`, variance `alpha·theta²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    alpha: f64,
    theta: f64,
}

impl Gamma {
    /// Creates a gamma distribution from shape and scale.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and strictly positive.
    pub fn new(alpha: f64, theta: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "shape must be positive");
        assert!(theta.is_finite() && theta > 0.0, "scale must be positive");
        Self { alpha, theta }
    }

    /// The CVB parameterization: a gamma with the given `mean` and
    /// coefficient of variation `cv` (`alpha = 1/cv²`, `theta = mean·cv²`).
    ///
    /// \[AlS00\] characterizes task and machine heterogeneity exactly this
    /// way: means plus CVs, realized as gamma variates.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        assert!(cv.is_finite() && cv > 0.0, "cv must be positive");
        let alpha = 1.0 / (cv * cv);
        let theta = mean * cv * cv;
        Self::new(alpha, theta)
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Scale parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Distribution mean `alpha·theta`.
    pub fn mean(&self) -> f64 {
        self.alpha * self.theta
    }

    /// Distribution variance `alpha·theta²`.
    pub fn variance(&self) -> f64 {
        self.alpha * self.theta * self.theta
    }

    /// Draws one variate (Marsaglia–Tsang for `alpha >= 1`, with the
    /// standard `U^{1/alpha}` boost for `alpha < 1`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.alpha < 1.0 {
            // Boost: if X ~ Gamma(alpha+1, 1) and U ~ Uniform(0,1), then
            // X · U^{1/alpha} ~ Gamma(alpha, 1).
            let x = sample_shape_ge_one(self.alpha + 1.0, rng);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            x * u.powf(1.0 / self.alpha) * self.theta
        } else {
            sample_shape_ge_one(self.alpha, rng) * self.theta
        }
    }
}

/// Marsaglia–Tsang for standard gamma with shape `alpha >= 1`, scale 1.
fn sample_shape_ge_one<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> f64 {
    debug_assert!(alpha >= 1.0);
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (fresh pair each attempt; only the
        // first draw is used, which keeps the loop logic simple and the
        // acceptance rate is ~95% anyway).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        // Squeeze test, then the full log test.
        if u < 1.0 - 0.0331 * (x * x) * (x * x) {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// An exponential distribution with the given rate `lambda`
/// (mean `1/lambda`) — the inter-arrival time of a Poisson process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution from its rate.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is finite and strictly positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "rate must be positive");
        Self { lambda }
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Distribution mean `1/lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one variate by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.lambda
    }
}

/// A uniform distribution on `[lo, hi)` (degenerate at `lo` when
/// `lo == hi`), kept as a tiny wrapper so cluster/workload configs can carry
/// validated ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "lo must not exceed hi");
        Self { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Distribution mean `(lo + hi) / 2`.
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    fn sample_stats(mut draw: impl FnMut(&mut StdRng) -> f64, n: usize) -> (f64, f64) {
        let mut r = rng();
        let samples: Vec<f64> = (0..n).map(|_| draw(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn gamma_mean_and_variance_match_parameters() {
        let g = Gamma::new(4.0, 2.5); // mean 10, var 25
        let (mean, var) = sample_stats(|r| g.sample(r), 200_000);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 25.0).abs() < 1.0, "var {var}");
    }

    #[test]
    fn gamma_shape_below_one_boost_path() {
        let g = Gamma::new(0.5, 2.0); // mean 1, var 2
        let (mean, var) = sample_stats(|r| g.sample(r), 200_000);
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 2.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn gamma_from_mean_cv_round_trips() {
        let g = Gamma::from_mean_cv(750.0, 0.25);
        assert!((g.mean() - 750.0).abs() < 1e-9);
        let cv = g.variance().sqrt() / g.mean();
        assert!((cv - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gamma_samples_are_positive() {
        let g = Gamma::from_mean_cv(100.0, 0.5);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(g.sample(&mut r) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn gamma_rejects_zero_shape() {
        let _ = Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn gamma_from_mean_cv_rejects_zero_mean() {
        let _ = Gamma::from_mean_cv(0.0, 0.25);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let e = Exponential::new(0.125); // mean 8
        let (mean, _) = sample_stats(|r| e.sample(r), 200_000);
        assert!((mean - 8.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_samples_are_positive() {
        let e = Exponential::new(1.0 / 28.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(e.sample(&mut r) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let u = Uniform::new(125.0, 135.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = u.sample(&mut r);
            assert!((125.0..135.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_midpoint() {
        let u = Uniform::new(1.0, 3.0);
        let (mean, _) = sample_stats(|r| u.sample(r), 100_000);
        assert!((mean - 2.0).abs() < 0.01);
        assert_eq!(u.mean(), 2.0);
    }

    #[test]
    fn degenerate_uniform_returns_bound() {
        let u = Uniform::new(5.0, 5.0);
        assert_eq!(u.sample(&mut rng()), 5.0);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(2.0, 1.0);
    }
}
