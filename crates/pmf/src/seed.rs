//! Deterministic seed derivation for independent random substreams.
//!
//! The simulation study needs many *statistically independent yet
//! reproducible* random streams: one for the cluster layout, one per
//! (task-type, node) execution-time pmf, one per trial for arrivals, task
//! types, and actual-time quantiles, and one per Random-heuristic scheduler
//! instance. Deriving them all from a single master seed through a mixing
//! function means a whole 800-run experiment grid is reproducible from one
//! `u64`, and trials can be executed in parallel in any order without
//! sharing RNG state.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives named, independent substream seeds from a master seed.
///
/// Derivation mixes the master seed with a stream label and indices through
/// SplitMix64 finalization steps — the standard remedy for correlated seeds
/// (Steele et al., "Fast Splittable Pseudorandom Number Generators").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedDerive {
    master: u64,
}

/// Stream labels, kept centralized so no two subsystems collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Stream {
    /// Cluster topology, P-state ladders, power profiles, efficiencies.
    Cluster = 1,
    /// CVB execution-time mean matrix.
    EtcMatrix = 2,
    /// Execution-time pmf shapes per (task type, node).
    ExecPmf = 3,
    /// Per-trial task-type selection.
    TaskTypes = 4,
    /// Per-trial arrival process.
    Arrivals = 5,
    /// Per-trial actual-execution-time quantiles.
    Quantiles = 6,
    /// Random-heuristic tie-breaking / selection.
    Heuristic = 7,
    /// Extension experiments (priorities, cancellation, ...).
    Extension = 8,
}

impl SeedDerive {
    /// Wraps a master seed.
    pub const fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed.
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// Derives the `u64` seed for `(stream, a, b)`.
    ///
    /// `a` and `b` are caller-defined indices (trial number, task-type id,
    /// node id, ...); pass 0 when unused.
    pub fn seed(&self, stream: Stream, a: u64, b: u64) -> u64 {
        let mut x = self.master;
        x = splitmix64(x ^ (stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = splitmix64(x ^ a.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = splitmix64(x ^ b.wrapping_mul(0x94D0_49BB_1331_11EB));
        x
    }

    /// Builds a [`StdRng`] for `(stream, a, b)`.
    pub fn rng(&self, stream: Stream, a: u64, b: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed(stream, a, b))
    }
}

/// SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_seed() {
        let d = SeedDerive::new(42);
        assert_eq!(
            d.seed(Stream::Arrivals, 3, 0),
            d.seed(Stream::Arrivals, 3, 0)
        );
    }

    #[test]
    fn different_streams_differ() {
        let d = SeedDerive::new(42);
        assert_ne!(
            d.seed(Stream::Arrivals, 0, 0),
            d.seed(Stream::Quantiles, 0, 0)
        );
    }

    #[test]
    fn different_indices_differ() {
        let d = SeedDerive::new(42);
        assert_ne!(
            d.seed(Stream::Arrivals, 0, 0),
            d.seed(Stream::Arrivals, 1, 0)
        );
        assert_ne!(d.seed(Stream::ExecPmf, 5, 0), d.seed(Stream::ExecPmf, 5, 1));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedDerive::new(1).seed(Stream::Cluster, 0, 0),
            SeedDerive::new(2).seed(Stream::Cluster, 0, 0)
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let d = SeedDerive::new(7);
        let a: Vec<u64> = d
            .rng(Stream::TaskTypes, 9, 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = d
            .rng(Stream::TaskTypes, 9, 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn adjacent_trial_streams_look_uncorrelated() {
        // Crude independence check: first draws of 64 adjacent trial streams
        // should not share obvious structure (all-distinct is a cheap proxy).
        let d = SeedDerive::new(123);
        let mut firsts: Vec<u64> = (0..64)
            .map(|t| d.rng(Stream::Arrivals, t, 0).gen())
            .collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 64);
    }

    #[test]
    fn zero_master_is_usable() {
        let d = SeedDerive::new(0);
        assert_ne!(d.seed(Stream::Cluster, 0, 0), 0);
    }
}
