//! The discrete probability mass function type at the heart of the
//! completion-time and robustness machinery.

use crate::error::PmfError;
use crate::impulse::Impulse;
use crate::reduce::ReductionPolicy;
use crate::{Prob, Time, MASS_EPSILON, VALUE_MERGE_EPSILON};

/// A discrete probability mass function over finite time values.
///
/// # Invariants
///
/// * at least one impulse,
/// * impulses strictly sorted by `value` (duplicates merged),
/// * every probability finite and strictly positive,
/// * probabilities sum to one within [`MASS_EPSILON`].
///
/// All constructors enforce these invariants; transformation methods
/// preserve them.
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    impulses: Vec<Impulse>,
}

impl Pmf {
    /// Builds a pmf from an impulse list, validating and normalizing it.
    ///
    /// The list is sorted by value, duplicated values (within
    /// [`VALUE_MERGE_EPSILON`] relative tolerance) are merged, and the mass
    /// must already sum to one within [`MASS_EPSILON`].
    pub fn new(impulses: Vec<Impulse>) -> Result<Self, PmfError> {
        if impulses.is_empty() {
            return Err(PmfError::Empty);
        }
        for imp in &impulses {
            if !imp.value.is_finite() {
                return Err(PmfError::InvalidValue { value: imp.value });
            }
            if !imp.prob.is_finite() || imp.prob <= 0.0 {
                return Err(PmfError::InvalidProbability { prob: imp.prob });
            }
        }
        let total: f64 = impulses.iter().map(|i| i.prob).sum();
        if (total - 1.0).abs() > MASS_EPSILON {
            return Err(PmfError::NotNormalized { total });
        }
        let mut imps = impulses;
        sort_and_merge(&mut imps);
        Ok(Self { impulses: imps })
    }

    /// Builds a pmf from `(value, weight)` pairs, rescaling the weights so
    /// they sum to one. Weights need not be normalized but must be positive.
    pub fn from_pairs(pairs: &[(Time, Prob)]) -> Result<Self, PmfError> {
        if pairs.is_empty() {
            return Err(PmfError::Empty);
        }
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(PmfError::NotNormalized { total });
        }
        let impulses: Vec<Impulse> = pairs
            .iter()
            .map(|&(v, w)| Impulse::new(v, w / total))
            .collect();
        Self::new(impulses)
    }

    /// A degenerate pmf: the outcome is `value` with probability one.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn singleton(value: Time) -> Self {
        assert!(value.is_finite(), "singleton pmf value must be finite");
        Self {
            impulses: vec![Impulse::new(value, 1.0)],
        }
    }

    /// Internal constructor for impulse lists already known to satisfy the
    /// invariants (sorted, merged, positive, normalized). Debug builds
    /// re-check.
    pub(crate) fn from_invariant_impulses(impulses: Vec<Impulse>) -> Self {
        debug_assert!(!impulses.is_empty());
        debug_assert!(impulses.windows(2).all(|w| w[0].value < w[1].value));
        debug_assert!(impulses.iter().all(Impulse::is_valid));
        debug_assert!(
            (impulses.iter().map(|i| i.prob).sum::<f64>() - 1.0).abs() < 1e-6,
            "mass must be 1"
        );
        Self { impulses }
    }

    /// The impulses, sorted ascending by value.
    #[inline]
    pub fn impulses(&self) -> &[Impulse] {
        &self.impulses
    }

    /// Mutable access to the impulse buffer for the crate's in-place
    /// transforms. Callers must restore the invariants before the pmf is
    /// observed again.
    #[inline]
    pub(crate) fn impulses_mut(&mut self) -> &mut Vec<Impulse> {
        &mut self.impulses
    }

    /// Number of support points.
    #[inline]
    pub fn len(&self) -> usize {
        self.impulses.len()
    }

    /// `true` only for an (unconstructible) empty pmf; present for API
    /// completeness and clippy's `len_without_is_empty`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.impulses.is_empty()
    }

    /// Smallest support value.
    #[inline]
    pub fn min_value(&self) -> Time {
        self.impulses[0].value
    }

    /// Largest support value.
    #[inline]
    pub fn max_value(&self) -> Time {
        self.impulses[self.impulses.len() - 1].value
    }

    /// The expectation `E[X]`.
    pub fn expectation(&self) -> f64 {
        self.impulses.iter().map(Impulse::weighted_value).sum()
    }

    /// The variance `Var[X]`, computed against the mean for numerical
    /// stability (never negative; tiny negative rounding is clamped).
    pub fn variance(&self) -> f64 {
        let mean = self.expectation();
        let var: f64 = self
            .impulses
            .iter()
            .map(|i| {
                let d = i.value - mean;
                d * d * i.prob
            })
            .sum();
        var.max(0.0)
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// `P(X <= x)` — used to compute the robustness value ρ as the
    /// probability that a completion time meets a deadline (Sec. IV-C:
    /// "sum the impulses in the distribution that are less than the
    /// deadline").
    pub fn prob_le(&self, x: Time) -> Prob {
        let mut acc = 0.0;
        for imp in &self.impulses {
            if imp.value <= x {
                acc += imp.prob;
            } else {
                break;
            }
        }
        acc.min(1.0)
    }

    /// `P(X < x)` (strict).
    pub fn prob_lt(&self, x: Time) -> Prob {
        let mut acc = 0.0;
        for imp in &self.impulses {
            if imp.value < x {
                acc += imp.prob;
            } else {
                break;
            }
        }
        acc.min(1.0)
    }

    /// The generalized inverse CDF: the smallest support value `v` such that
    /// `P(X <= v) >= u`.
    ///
    /// The workload generator pre-draws a uniform quantile per task and
    /// inverts it through whichever execution-time pmf the chosen assignment
    /// selects, so a task is intrinsically "fast" or "slow" across
    /// heuristics within a trial.
    pub fn quantile(&self, u: Prob) -> Result<Time, PmfError> {
        if !(0.0..=1.0).contains(&u) || u.is_nan() {
            return Err(PmfError::InvalidQuantile { u });
        }
        let mut acc = 0.0;
        for imp in &self.impulses {
            acc += imp.prob;
            if acc >= u - MASS_EPSILON {
                return Ok(imp.value);
            }
        }
        // Numerically the accumulated mass can fall a hair short of 1.
        Ok(self.max_value())
    }

    /// Shifts every support value by `dt` (e.g. turning an execution-time
    /// pmf into a completion-time pmf given a start time).
    pub fn shift(&self, dt: Time) -> Self {
        assert!(dt.is_finite(), "shift must be finite");
        let impulses = self
            .impulses
            .iter()
            .map(|i| Impulse::new(i.value + dt, i.prob))
            .collect();
        Self::from_invariant_impulses(impulses)
    }

    /// In-place variant of [`Pmf::shift`]: moves the support without
    /// allocating a new impulse vector. The per-impulse arithmetic is
    /// identical (`value + dt`), so the result is bit-identical to
    /// `*self = self.shift(dt)`.
    pub fn shift_in_place(&mut self, dt: Time) {
        assert!(dt.is_finite(), "shift must be finite");
        for imp in &mut self.impulses {
            imp.value += dt;
        }
    }

    /// In-place variant of
    /// [`crate::truncate::truncate_below_or_floor`]: conditions the pmf on
    /// `X >= cutoff` reusing the existing buffer, degenerating to a
    /// singleton at `cutoff` when every outcome is in the past.
    /// Bit-identical to the allocating function.
    pub fn truncate_below_or_floor_in_place(&mut self, cutoff: Time) {
        crate::truncate::truncate_below_or_floor_in_place(self, cutoff);
    }

    /// Multiplies every support value by `factor > 0` (e.g. applying a
    /// P-state execution-time multiplier to a base-state pmf).
    pub fn scale_values(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and positive"
        );
        let impulses = self
            .impulses
            .iter()
            .map(|i| Impulse::new(i.value * factor, i.prob))
            .collect();
        Self::from_invariant_impulses(impulses)
    }

    /// Convolution with `other` (sum of independent random variables),
    /// reducing the result per `policy`. See [`crate::convolve`].
    pub fn convolve(&self, other: &Pmf, policy: ReductionPolicy) -> Pmf {
        crate::convolve::convolve(self, other, policy)
    }

    /// Removes impulses with `value < cutoff` and renormalizes — the
    /// Sec. IV-B operation on a currently-executing task's completion-time
    /// pmf ("removing the past impulses ... and re-normalizing").
    ///
    /// Returns [`PmfError::AllMassTruncated`] when every outcome is in the
    /// past; callers model that case as "completes immediately" (see
    /// [`crate::truncate::truncate_below_or_floor`]).
    pub fn truncate_below(&self, cutoff: Time) -> Result<Pmf, PmfError> {
        crate::truncate::truncate_below(self, cutoff)
    }

    /// Reduces the support to at most `policy.max_impulses` points,
    /// merging adjacent impulses while preserving total mass and the mean.
    pub fn reduce(&self, policy: ReductionPolicy) -> Pmf {
        crate::reduce::reduce(self, policy)
    }

    /// Total probability mass (1 within [`MASS_EPSILON`]; exposed for tests
    /// and debug assertions).
    pub fn total_mass(&self) -> f64 {
        self.impulses.iter().map(|i| i.prob).sum()
    }

    /// Deterministic 64-bit fingerprint of the pmf's exact bit pattern: an
    /// FNV-1a hash over the `(value.to_bits(), prob.to_bits())` pairs in
    /// support order. Stable across runs and platforms (no per-process
    /// entropy), so it can key caches and equivalence classes.
    ///
    /// Equal fingerprints are a fast *necessary* condition for bit
    /// identity, not a proof — confirm with [`Pmf::bit_eq`] where soundness
    /// matters (hash collisions, however unlikely, must not change
    /// results).
    pub fn fingerprint(&self) -> u64 {
        crate::impulse::fingerprint_impulses(&self.impulses)
    }

    /// `true` iff `self` and `other` have bit-identical impulse sequences
    /// (`f64::to_bits` on every value and probability). Stricter than
    /// `==` on floats — NaN-robust and `-0.0`-aware — and exactly the
    /// relation under which two pmfs are interchangeable in the
    /// non-associative convolution algebra.
    pub fn bit_eq(&self, other: &Pmf) -> bool {
        crate::impulse::impulses_bit_identical(&self.impulses, &other.impulses)
    }
}

/// Sorts impulses by value and merges (sums the probability of) support
/// points that coincide within [`VALUE_MERGE_EPSILON`] relative tolerance.
pub(crate) fn sort_and_merge(impulses: &mut Vec<Impulse>) {
    impulses.sort_by(|a, b| a.value.total_cmp(&b.value));
    let mut out: Vec<Impulse> = Vec::with_capacity(impulses.len());
    for imp in impulses.drain(..) {
        match out.last_mut() {
            Some(last) if values_coincide(last.value, imp.value) => {
                last.prob += imp.prob;
            }
            _ => out.push(imp),
        }
    }
    *impulses = out;
}

#[inline]
pub(crate) fn values_coincide(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= VALUE_MERGE_EPSILON * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmf_half_half() -> Pmf {
        Pmf::from_pairs(&[(10.0, 0.5), (20.0, 0.5)]).unwrap()
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Pmf::new(vec![]), Err(PmfError::Empty));
    }

    #[test]
    fn new_rejects_unnormalized() {
        let err = Pmf::new(vec![Impulse::new(1.0, 0.4)]).unwrap_err();
        assert!(matches!(err, PmfError::NotNormalized { .. }));
    }

    #[test]
    fn new_rejects_bad_probability() {
        let err = Pmf::new(vec![Impulse::new(1.0, 0.0), Impulse::new(2.0, 1.0)]).unwrap_err();
        assert!(matches!(err, PmfError::InvalidProbability { .. }));
    }

    #[test]
    fn new_rejects_bad_value() {
        let err = Pmf::new(vec![Impulse::new(f64::NAN, 1.0)]).unwrap_err();
        assert!(matches!(err, PmfError::InvalidValue { .. }));
    }

    #[test]
    fn new_sorts_and_merges() {
        let p = Pmf::new(vec![
            Impulse::new(5.0, 0.25),
            Impulse::new(1.0, 0.5),
            Impulse::new(5.0, 0.25),
        ])
        .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.impulses()[0].value, 1.0);
        assert_eq!(p.impulses()[1].value, 5.0);
        assert!((p.impulses()[1].prob - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_normalizes_weights() {
        let p = Pmf::from_pairs(&[(1.0, 2.0), (2.0, 6.0)]).unwrap();
        assert!((p.impulses()[0].prob - 0.25).abs() < 1e-12);
        assert!((p.impulses()[1].prob - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_rejects_nonpositive_total() {
        assert!(Pmf::from_pairs(&[(1.0, 0.0)]).is_err());
        assert!(Pmf::from_pairs(&[]).is_err());
    }

    #[test]
    fn singleton_has_unit_mass_at_value() {
        let p = Pmf::singleton(42.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.expectation(), 42.0);
        assert_eq!(p.variance(), 0.0);
        assert_eq!(p.prob_le(42.0), 1.0);
        assert_eq!(p.prob_lt(42.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn singleton_rejects_nan() {
        let _ = Pmf::singleton(f64::NAN);
    }

    #[test]
    fn expectation_and_variance() {
        let p = pmf_half_half();
        assert_eq!(p.expectation(), 15.0);
        assert_eq!(p.variance(), 25.0);
        assert_eq!(p.std_dev(), 5.0);
    }

    #[test]
    fn prob_le_is_a_cdf() {
        let p = pmf_half_half();
        assert_eq!(p.prob_le(5.0), 0.0);
        assert_eq!(p.prob_le(10.0), 0.5);
        assert_eq!(p.prob_le(15.0), 0.5);
        assert_eq!(p.prob_le(20.0), 1.0);
        assert_eq!(p.prob_le(25.0), 1.0);
    }

    #[test]
    fn prob_lt_is_strict() {
        let p = pmf_half_half();
        assert_eq!(p.prob_lt(10.0), 0.0);
        assert_eq!(p.prob_lt(10.5), 0.5);
        assert_eq!(p.prob_lt(20.0), 0.5);
        assert_eq!(p.prob_lt(20.5), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let p = pmf_half_half();
        assert_eq!(p.quantile(0.0).unwrap(), 10.0);
        assert_eq!(p.quantile(0.3).unwrap(), 10.0);
        assert_eq!(p.quantile(0.5).unwrap(), 10.0);
        assert_eq!(p.quantile(0.51).unwrap(), 20.0);
        assert_eq!(p.quantile(1.0).unwrap(), 20.0);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        let p = pmf_half_half();
        assert!(p.quantile(-0.1).is_err());
        assert!(p.quantile(1.1).is_err());
        assert!(p.quantile(f64::NAN).is_err());
    }

    #[test]
    fn shift_moves_support() {
        let p = pmf_half_half().shift(100.0);
        assert_eq!(p.min_value(), 110.0);
        assert_eq!(p.max_value(), 120.0);
        assert_eq!(p.expectation(), 115.0);
    }

    #[test]
    fn shift_by_negative_is_allowed() {
        let p = pmf_half_half().shift(-10.0);
        assert_eq!(p.min_value(), 0.0);
    }

    #[test]
    fn scale_values_stretches_support() {
        let p = pmf_half_half().scale_values(2.0);
        assert_eq!(p.min_value(), 20.0);
        assert_eq!(p.max_value(), 40.0);
        assert_eq!(p.expectation(), 30.0);
        // Variance scales by factor^2.
        assert_eq!(p.variance(), 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_values_rejects_zero() {
        let _ = pmf_half_half().scale_values(0.0);
    }

    #[test]
    fn total_mass_is_one() {
        assert!((pmf_half_half().total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_values() {
        let p = Pmf::from_pairs(&[(3.0, 1.0), (1.0, 1.0), (2.0, 1.0)]).unwrap();
        assert_eq!(p.min_value(), 1.0);
        assert_eq!(p.max_value(), 3.0);
    }

    #[test]
    fn tiny_probabilities_survive_construction() {
        let p = Pmf::from_pairs(&[(1.0, 1e-12), (2.0, 1.0)]).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
        // The tiny impulse still contributes to the CDF.
        assert!(p.prob_le(1.0) > 0.0);
    }

    #[test]
    fn variance_never_negative_despite_rounding() {
        // Values far from zero stress the E[X²] − E[X]² cancellation that
        // the mean-centered implementation avoids.
        let p = Pmf::from_pairs(&[(1e9, 0.5), (1e9 + 1e-3, 0.5)]).unwrap();
        assert!(p.variance() >= 0.0);
    }

    #[test]
    fn quantile_at_exact_cumulative_boundary() {
        let p = Pmf::from_pairs(&[(1.0, 0.25), (2.0, 0.25), (3.0, 0.5)]).unwrap();
        assert_eq!(p.quantile(0.25).unwrap(), 1.0);
        assert_eq!(p.quantile(0.5).unwrap(), 2.0);
        assert_eq!(p.quantile(0.500001).unwrap(), 3.0);
    }

    #[test]
    fn convolve_with_singleton_is_shift() {
        let p = pmf_half_half();
        let shifted = p.convolve(&Pmf::singleton(7.0), crate::ReductionPolicy::unlimited());
        assert_eq!(shifted, p.shift(7.0));
    }

    #[test]
    fn fingerprint_matches_iff_bits_match() {
        let p = pmf_half_half();
        let q = Pmf::from_pairs(&[(10.0, 0.5), (20.0, 0.5)]).unwrap();
        assert_eq!(p.fingerprint(), q.fingerprint());
        assert!(p.bit_eq(&q));
        let shifted = p.shift(1.0);
        assert_ne!(p.fingerprint(), shifted.fingerprint());
        assert!(!p.bit_eq(&shifted));
        // Same support, different masses: still distinguished.
        let r = Pmf::from_pairs(&[(10.0, 0.25), (20.0, 0.75)]).unwrap();
        assert_ne!(p.fingerprint(), r.fingerprint());
    }

    #[test]
    fn negative_support_round_trips_through_ops() {
        let p = Pmf::from_pairs(&[(-5.0, 0.5), (5.0, 0.5)]).unwrap();
        assert_eq!(p.expectation(), 0.0);
        assert_eq!(p.prob_le(0.0), 0.5);
        let t = p.truncate_below(0.0).unwrap();
        assert_eq!(t.min_value(), 5.0);
    }
}
