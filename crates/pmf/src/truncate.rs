//! Truncation and renormalization of completion-time pmfs.
//!
//! When a task is already executing at mapping time `t_l`, some impulses of
//! its completion-time pmf lie in the past; those outcomes are impossible
//! (the task has observably not finished), so Sec. IV-B prescribes
//! "removing the past impulses from the pmf ... and re-normalizing the
//! remaining distribution".

use crate::error::PmfError;
use crate::impulse::Impulse;
use crate::pmf::Pmf;
use crate::Time;

/// Removes impulses with `value < cutoff` and renormalizes the remainder.
///
/// Returns [`PmfError::AllMassTruncated`] when no impulse is at or after
/// the cutoff.
///
/// ```
/// use ecds_pmf::Pmf;
///
/// // A task predicted to finish at 10 or 20 with equal odds, observed
/// // still running at t = 15: only the 20 outcome remains possible.
/// let completion = Pmf::from_pairs(&[(10.0, 0.5), (20.0, 0.5)]).unwrap();
/// let conditioned = completion.truncate_below(15.0).unwrap();
/// assert_eq!(conditioned.expectation(), 20.0);
/// assert_eq!(conditioned.total_mass(), 1.0);
/// ```
pub fn truncate_below(pmf: &Pmf, cutoff: Time) -> Result<Pmf, PmfError> {
    assert!(cutoff.is_finite(), "cutoff must be finite");
    let kept: Vec<Impulse> = pmf
        .impulses()
        .iter()
        .filter(|i| i.value >= cutoff)
        .copied()
        .collect();
    if kept.is_empty() {
        return Err(PmfError::AllMassTruncated);
    }
    let mass: f64 = kept.iter().map(|i| i.prob).sum();
    let renorm: Vec<Impulse> = kept
        .into_iter()
        .map(|i| Impulse::new(i.value, i.prob / mass))
        .collect();
    Ok(Pmf::from_invariant_impulses(renorm))
}

/// Like [`truncate_below`], but when every outcome is in the past the task
/// is modeled as completing "now": a singleton at `cutoff`.
///
/// This is the behaviour the simulator needs for a task that has exceeded
/// its entire predicted distribution — the best remaining estimate of its
/// completion time is the current instant.
pub fn truncate_below_or_floor(pmf: &Pmf, cutoff: Time) -> Pmf {
    truncate_below(pmf, cutoff).unwrap_or_else(|_| Pmf::singleton(cutoff))
}

/// In-place variant of [`truncate_below_or_floor`]: reuses the pmf's
/// impulse buffer instead of allocating kept/renormalized vectors.
///
/// Bit-identical to the allocating version: the support is sorted, so the
/// kept impulses are exactly the suffix from the first value `>= cutoff`;
/// the kept mass is summed in the same left-to-right order and each
/// probability divided by it with the same arithmetic.
pub fn truncate_below_or_floor_in_place(pmf: &mut Pmf, cutoff: Time) {
    assert!(cutoff.is_finite(), "cutoff must be finite");
    let impulses = pmf.impulses_mut();
    let kept_from = impulses
        .iter()
        .position(|i| i.value >= cutoff)
        .unwrap_or(impulses.len());
    impulses.drain(..kept_from);
    if impulses.is_empty() {
        impulses.push(Impulse::new(cutoff, 1.0));
        return;
    }
    let mass: f64 = impulses.iter().map(|i| i.prob).sum();
    for imp in impulses.iter_mut() {
        imp.prob /= mass;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Pmf {
        Pmf::from_pairs(&[(10.0, 0.2), (20.0, 0.3), (30.0, 0.5)]).unwrap()
    }

    #[test]
    fn no_truncation_below_support() {
        let p = tri();
        let t = truncate_below(&p, 5.0).unwrap();
        assert_eq!(t, p);
    }

    #[test]
    fn truncation_removes_past_and_renormalizes() {
        let t = truncate_below(&tri(), 15.0).unwrap();
        assert_eq!(t.len(), 2);
        assert!((t.impulses()[0].prob - 0.3 / 0.8).abs() < 1e-12);
        assert!((t.impulses()[1].prob - 0.5 / 0.8).abs() < 1e-12);
        assert!((t.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cutoff_exactly_at_impulse_keeps_it() {
        let t = truncate_below(&tri(), 20.0).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.min_value(), 20.0);
    }

    #[test]
    fn all_mass_truncated_errors() {
        assert_eq!(
            truncate_below(&tri(), 31.0).unwrap_err(),
            PmfError::AllMassTruncated
        );
    }

    #[test]
    fn floor_variant_degenerates_to_now() {
        let t = truncate_below_or_floor(&tri(), 99.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.min_value(), 99.0);
    }

    #[test]
    fn floor_variant_matches_truncate_when_mass_remains() {
        let a = truncate_below(&tri(), 15.0).unwrap();
        let b = truncate_below_or_floor(&tri(), 15.0);
        assert_eq!(a, b);
    }

    #[test]
    fn truncation_raises_expectation() {
        let p = tri();
        let t = truncate_below(&p, 15.0).unwrap();
        assert!(t.expectation() > p.expectation());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_cutoff_panics() {
        let _ = truncate_below(&tri(), f64::NAN);
    }
}
