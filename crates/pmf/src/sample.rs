//! Building empirical pmfs from continuous samplers.
//!
//! The paper assumes execution-time pmfs "may in practice be obtained by
//! historical, experimental, or analytical techniques" (Sec. III-B). We
//! synthesize them the way the Smith et al. lineage does: draw a batch of
//! samples from the underlying continuous law (gamma around the CVB mean)
//! and compress them into an equal-probability-mass empirical pmf.

use rand::Rng;

use crate::impulse::Impulse;
use crate::pmf::{sort_and_merge, Pmf};

/// Configuration for empirical-pmf construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePmfConfig {
    /// Number of raw samples to draw from the continuous law.
    pub samples: usize,
    /// Maximum number of impulses in the resulting pmf.
    pub max_impulses: usize,
}

impl SamplePmfConfig {
    /// Creates a config; both fields must be at least 1 and
    /// `max_impulses <= samples`.
    pub fn new(samples: usize, max_impulses: usize) -> Self {
        assert!(samples >= 1, "need at least one sample");
        assert!(max_impulses >= 1, "need at least one impulse");
        assert!(
            max_impulses <= samples,
            "cannot have more impulses than samples"
        );
        Self {
            samples,
            max_impulses,
        }
    }
}

impl Default for SamplePmfConfig {
    /// The workspace default used for paper-scale experiments: 200 samples
    /// compressed to 24 impulses.
    fn default() -> Self {
        Self::new(200, 24)
    }
}

/// Draws `cfg.samples` values from `draw` and bins them into an
/// equal-probability-mass pmf with at most `cfg.max_impulses` impulses, each
/// impulse placed at the mean of its bin (so the pmf mean equals the sample
/// mean exactly).
pub fn empirical_pmf<R, F>(rng: &mut R, cfg: SamplePmfConfig, mut draw: F) -> Pmf
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> f64,
{
    let mut samples: Vec<f64> = (0..cfg.samples).map(|_| draw(rng)).collect();
    samples.retain(|x| x.is_finite());
    assert!(!samples.is_empty(), "sampler produced no finite values");
    samples.sort_by(|a, b| a.total_cmp(b));

    let n = samples.len();
    let k = cfg.max_impulses.min(n);
    let prob = 1.0 / n as f64;
    let mut impulses: Vec<Impulse> = Vec::with_capacity(k);
    // Split the sorted samples into k nearly-equal-count bins.
    for bin in 0..k {
        let start = bin * n / k;
        let end = ((bin + 1) * n / k).max(start + 1);
        let slice = &samples[start..end.min(n)];
        let mass = prob * slice.len() as f64;
        let centroid = slice.iter().sum::<f64>() / slice.len() as f64;
        impulses.push(Impulse::new(centroid, mass));
    }
    sort_and_merge(&mut impulses);
    // Renormalize defensively against floating-point drift.
    let total: f64 = impulses.iter().map(|i| i.prob).sum();
    for imp in &mut impulses {
        imp.prob /= total;
    }
    Pmf::from_invariant_impulses(impulses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Gamma;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn pmf_respects_impulse_cap() {
        let g = Gamma::from_mean_cv(750.0, 0.2);
        let p = empirical_pmf(&mut rng(), SamplePmfConfig::new(500, 16), |r| g.sample(r));
        assert!(p.len() <= 16);
    }

    #[test]
    fn pmf_mean_tracks_sample_mean() {
        let g = Gamma::from_mean_cv(750.0, 0.2);
        let p = empirical_pmf(&mut rng(), SamplePmfConfig::new(5_000, 24), |r| g.sample(r));
        assert!(
            (p.expectation() - 750.0).abs() < 15.0,
            "{}",
            p.expectation()
        );
    }

    #[test]
    fn pmf_std_dev_tracks_cv() {
        let g = Gamma::from_mean_cv(1000.0, 0.25);
        let p = empirical_pmf(&mut rng(), SamplePmfConfig::new(20_000, 24), |r| {
            g.sample(r)
        });
        let cv = p.std_dev() / p.expectation();
        assert!((cv - 0.25).abs() < 0.03, "cv {cv}");
    }

    #[test]
    fn single_sample_gives_singleton() {
        let p = empirical_pmf(&mut rng(), SamplePmfConfig::new(1, 1), |_| 5.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.expectation(), 5.0);
    }

    #[test]
    fn constant_sampler_collapses_to_one_impulse() {
        let p = empirical_pmf(&mut rng(), SamplePmfConfig::new(100, 10), |_| 3.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.expectation(), 3.0);
    }

    #[test]
    fn masses_are_nearly_equal() {
        let g = Gamma::from_mean_cv(100.0, 0.3);
        let p = empirical_pmf(&mut rng(), SamplePmfConfig::new(240, 12), |r| g.sample(r));
        for imp in p.impulses() {
            assert!((imp.prob - 1.0 / 12.0).abs() < 0.02, "prob {}", imp.prob);
        }
    }

    #[test]
    #[should_panic(expected = "more impulses than samples")]
    fn cap_cannot_exceed_samples() {
        let _ = SamplePmfConfig::new(4, 8);
    }

    #[test]
    fn deterministic_for_same_rng_seed() {
        let g = Gamma::from_mean_cv(50.0, 0.2);
        let a = empirical_pmf(&mut rng(), SamplePmfConfig::default(), |r| g.sample(r));
        let b = empirical_pmf(&mut rng(), SamplePmfConfig::default(), |r| g.sample(r));
        assert_eq!(a, b);
    }
}
