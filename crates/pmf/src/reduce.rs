//! Impulse reduction: bounding a pmf's support size after convolution.
//!
//! Each convolution multiplies support sizes, so a queue of `q` tasks with
//! `k`-impulse execution-time pmfs would otherwise produce `k^q` support
//! points. The reduction here merges *adjacent* impulses (the support is
//! sorted) into mass-weighted centroids, which preserves total mass and the
//! distribution mean exactly, and never moves mass across the bucket
//! boundaries by more than one bucket width — keeping deadline-tail
//! probabilities accurate to the bucket resolution.

use crate::impulse::Impulse;
use crate::pmf::Pmf;

/// Policy bounding the support size of reduced pmfs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionPolicy {
    /// Maximum number of impulses retained; pmfs at or below the cap are
    /// returned unchanged.
    pub max_impulses: usize,
}

impl ReductionPolicy {
    /// A policy capping the support at `max_impulses` (at least 1).
    pub fn new(max_impulses: usize) -> Self {
        assert!(max_impulses >= 1, "reduction cap must be at least 1");
        Self { max_impulses }
    }

    /// No reduction (cap of `usize::MAX`) — useful in tests and for exact
    /// small-scale computations.
    pub const fn unlimited() -> Self {
        Self {
            max_impulses: usize::MAX,
        }
    }

    /// The workspace default, matching the paper-scale experiments
    /// (24 impulses keeps per-assignment evaluation sub-microsecond while
    /// holding ρ errors well below the filter threshold granularity).
    pub const fn default_cap() -> Self {
        Self { max_impulses: 24 }
    }
}

impl Default for ReductionPolicy {
    fn default() -> Self {
        Self::default_cap()
    }
}

/// Reduces `pmf` to at most `policy.max_impulses` support points by merging
/// runs of adjacent impulses into their probability-weighted centroids.
///
/// Buckets are chosen with equal *probability mass* (not equal width): the
/// cumulative mass axis is split into `max_impulses` equal slices and each
/// slice collapses to its centroid. Equal-mass bucketing spends resolution
/// where the distribution actually has mass, which is what the robustness
/// computation (a CDF query at the deadline) cares about.
pub fn reduce(pmf: &Pmf, policy: ReductionPolicy) -> Pmf {
    let cap = policy.max_impulses;
    if pmf.len() <= cap {
        return pmf.clone();
    }
    let target_mass = 1.0 / cap as f64;
    let mut out: Vec<Impulse> = Vec::with_capacity(cap);
    let mut bucket_mass = 0.0;
    let mut bucket_weighted = 0.0;
    let mut filled_buckets = 0usize;
    // Mass emitted so far. Accumulated exactly as the previous
    // `out.iter().map(|i| i.prob).sum()` would recompute it (left-to-right
    // from 0.0), so results stay bit-identical — without the O(n·cap)
    // rescan per impulse.
    let mut emitted_mass = 0.0;
    let n = pmf.len();
    for (idx, imp) in pmf.impulses().iter().enumerate() {
        bucket_mass += imp.prob;
        bucket_weighted += imp.weighted_value();
        let remaining_impulses = n - idx - 1;
        let remaining_buckets = cap - filled_buckets - 1;
        // Close the bucket when it holds its fair share of mass, unless the
        // leftover impulses are needed one-per-bucket to fill the rest.
        let must_flush = remaining_impulses == remaining_buckets && remaining_buckets > 0;
        let quota_met =
            bucket_mass + 1e-15 >= target_mass * (filled_buckets + 1) as f64 - emitted_mass;
        if (quota_met || must_flush) && remaining_buckets > 0 {
            out.push(Impulse::new(bucket_weighted / bucket_mass, bucket_mass));
            emitted_mass += bucket_mass;
            filled_buckets += 1;
            bucket_mass = 0.0;
            bucket_weighted = 0.0;
        }
    }
    if bucket_mass > 0.0 {
        out.push(Impulse::new(bucket_weighted / bucket_mass, bucket_mass));
    }
    debug_assert!(out.len() <= cap);
    // Centroids of consecutive buckets are non-decreasing; coincident
    // centroids (possible when a heavy impulse spans a bucket boundary)
    // merge in the invariant constructor path below.
    let mut impulses = out;
    crate::pmf::sort_and_merge(&mut impulses);
    Pmf::from_invariant_impulses(impulses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pmf;

    fn uniform_support(n: usize) -> Pmf {
        let pairs: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 1.0)).collect();
        Pmf::from_pairs(&pairs).unwrap()
    }

    #[test]
    fn below_cap_is_identity() {
        let p = uniform_support(5);
        let r = reduce(&p, ReductionPolicy::new(8));
        assert_eq!(r, p);
    }

    #[test]
    fn at_cap_is_identity() {
        let p = uniform_support(8);
        let r = reduce(&p, ReductionPolicy::new(8));
        assert_eq!(r, p);
    }

    #[test]
    fn reduction_hits_cap() {
        let p = uniform_support(100);
        let r = reduce(&p, ReductionPolicy::new(10));
        assert!(r.len() <= 10);
        assert!(r.len() >= 5, "should not over-collapse");
    }

    #[test]
    fn reduction_preserves_mean_exactly() {
        let p = uniform_support(97);
        let r = reduce(&p, ReductionPolicy::new(12));
        assert!((r.expectation() - p.expectation()).abs() < 1e-9);
    }

    #[test]
    fn reduction_preserves_mass() {
        let p = uniform_support(50);
        let r = reduce(&p, ReductionPolicy::new(7));
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_never_widens_support() {
        let p = uniform_support(64);
        let r = reduce(&p, ReductionPolicy::new(9));
        assert!(r.min_value() >= p.min_value() - 1e-12);
        assert!(r.max_value() <= p.max_value() + 1e-12);
    }

    #[test]
    fn cap_one_collapses_to_mean() {
        let p = uniform_support(10);
        let r = reduce(&p, ReductionPolicy::new(1));
        assert_eq!(r.len(), 1);
        assert!((r.expectation() - p.expectation()).abs() < 1e-12);
    }

    #[test]
    fn skewed_mass_keeps_resolution_in_bulk() {
        // 90% of mass near zero, long light tail.
        let mut pairs: Vec<(f64, f64)> = (0..9).map(|i| (i as f64, 0.1)).collect();
        pairs.extend((0..10).map(|i| (100.0 + i as f64, 0.01)));
        let p = Pmf::from_pairs(&pairs).unwrap();
        let r = reduce(&p, ReductionPolicy::new(8));
        assert!(r.len() <= 8);
        // The bulk (values < 10) should retain several distinct points.
        let bulk = r.impulses().iter().filter(|i| i.value < 10.0).count();
        assert!(bulk >= 4, "bulk resolution too coarse: {bulk}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_rejected() {
        let _ = ReductionPolicy::new(0);
    }

    #[test]
    fn default_policy_is_default_cap() {
        assert_eq!(ReductionPolicy::default(), ReductionPolicy::default_cap());
    }

    #[test]
    fn cdf_error_is_bounded_after_reduction() {
        let p = uniform_support(200);
        let r = reduce(&p, ReductionPolicy::new(20));
        // Equal-mass buckets: CDF error at any point is at most one bucket
        // of mass (1/20) plus epsilon.
        for x in [10.0, 50.0, 99.5, 150.0] {
            assert!((r.prob_le(x) - p.prob_le(x)).abs() <= 0.05 + 1e-9);
        }
    }
}
