//! Stochastic substrate for energy-constrained dynamic resource allocation.
//!
//! The paper models every task execution time as a discrete random variable
//! described by a probability mass function (pmf). All of the scheduling
//! mathematics — completion-time prediction (Sec. IV-B), robustness
//! (Sec. IV-C), expected completion time, and expected energy consumption
//! (Sec. V-A) — reduces to a small algebra over pmfs:
//!
//! * **convolution** of independent execution-time pmfs to obtain queue
//!   completion-time pmfs,
//! * **shifting** a pmf by a scalar (a task's start time or a core's ready
//!   time),
//! * **truncation and renormalization** of an in-progress task's
//!   completion-time pmf (impulses in the past are impossible outcomes and
//!   must be removed, with the remaining mass rescaled to 1),
//! * **impulse reduction** so that repeated convolution does not blow up the
//!   support size,
//! * **moments and tail probabilities** (expectation for ECT/EET/EEC, the
//!   CDF at a deadline for the robustness value ρ).
//!
//! This crate implements that algebra, plus the deterministic random
//! machinery the rest of the workspace builds on: a seed-derivation scheme
//! for reproducible independent substreams and the continuous samplers
//! (gamma, exponential, uniform) that the CVB workload generator and the
//! cluster generator require. Gamma sampling is implemented here (Marsaglia &
//! Tsang) rather than pulled from `rand_distr` to keep the dependency
//! surface at the sanctioned set and to pin sampling behaviour across
//! dependency upgrades.
//!
//! # Quick example
//!
//! ```
//! use ecds_pmf::{Pmf, ReductionPolicy};
//!
//! // Execution time of task A: 10 with prob 0.5, 20 with prob 0.5.
//! let a = Pmf::from_pairs(&[(10.0, 0.5), (20.0, 0.5)]).unwrap();
//! // Execution time of task B: always 5.
//! let b = Pmf::singleton(5.0);
//!
//! // Completion time of B queued behind A on an idle core at time 0:
//! let completion = a.convolve(&b, ReductionPolicy::unlimited());
//! assert_eq!(completion.expectation(), 20.0);
//! assert!((completion.prob_le(15.0) - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod convolve;
pub mod dist;
pub mod distance;
pub mod error;
pub mod impulse;
pub mod pmf;
pub mod reduce;
pub mod sample;
pub mod scratch;
pub mod seed;
pub mod truncate;

pub use dist::{Exponential, Gamma, Uniform};
pub use distance::{kolmogorov_smirnov, wasserstein_1};
pub use error::PmfError;
pub use impulse::Impulse;
pub use pmf::Pmf;
pub use reduce::ReductionPolicy;
pub use sample::{empirical_pmf, SamplePmfConfig};
pub use scratch::{PmfScratch, PmfView};
pub use seed::{SeedDerive, Stream};

/// Probability type used throughout the workspace.
pub type Prob = f64;

/// Simulated-time type used throughout the workspace. The paper works in
/// abstract time units (mean task execution time μ_task = 750 units).
pub type Time = f64;

/// Tolerance used when checking that a pmf's mass sums to one and when
/// merging impulses that should be considered the same support point.
pub const MASS_EPSILON: f64 = 1e-9;

/// Relative tolerance used to merge adjacent support values produced by
/// convolution (floating-point noise can split what is mathematically a
/// single impulse into several).
pub const VALUE_MERGE_EPSILON: f64 = 1e-12;
