//! Convolution of pmfs — the sum of independent discrete random variables.
//!
//! Predicting the completion time of a task queued behind others requires
//! summing their (independent) execution-time random variables, which for
//! pmfs is a discrete convolution (Sec. IV-B). Convolving `n`-point and
//! `m`-point pmfs yields up to `n × m` support points, so repeated
//! convolution must be paired with [impulse reduction](crate::reduce) to
//! keep cost bounded; the paper notes the overhead "can be negligible if
//! task execution times are sufficiently long or the performance gained
//! justifies their usage".

use crate::impulse::Impulse;
use crate::pmf::{sort_and_merge, Pmf};
use crate::reduce::ReductionPolicy;

/// Convolves two pmfs: the distribution of `X + Y` for independent `X ~ a`,
/// `Y ~ b`. The result is reduced to `policy.max_impulses` support points.
pub fn convolve(a: &Pmf, b: &Pmf, policy: ReductionPolicy) -> Pmf {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut impulses = Vec::with_capacity(small.len() * large.len());
    for ia in small.impulses() {
        for ib in large.impulses() {
            impulses.push(Impulse::new(ia.value + ib.value, ia.prob * ib.prob));
        }
    }
    sort_and_merge(&mut impulses);
    let out = Pmf::from_invariant_impulses(impulses);
    out.reduce(policy)
}

/// Convolves a sequence of pmfs left-to-right, reducing after every step.
///
/// Returns `None` when the iterator is empty (the caller decides what the
/// identity is — for completion times it is a singleton at the ready time).
pub fn convolve_all<'a, I>(pmfs: I, policy: ReductionPolicy) -> Option<Pmf>
where
    I: IntoIterator<Item = &'a Pmf>,
{
    let mut iter = pmfs.into_iter();
    let first = iter.next()?;
    // Fold over a borrowed accumulator so the first pmf is cloned only in
    // the single-element case (where the clone is the return value).
    let Some(second) = iter.next() else {
        return Some(first.clone());
    };
    let seed = convolve(first, second, policy);
    Some(iter.fold(seed, |acc, next| convolve(&acc, next, policy)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pmf;

    fn coin(lo: f64, hi: f64) -> Pmf {
        Pmf::from_pairs(&[(lo, 0.5), (hi, 0.5)]).unwrap()
    }

    #[test]
    fn convolve_singletons_adds_values() {
        let a = Pmf::singleton(3.0);
        let b = Pmf::singleton(4.0);
        let c = convolve(&a, &b, ReductionPolicy::unlimited());
        assert_eq!(c.len(), 1);
        assert_eq!(c.expectation(), 7.0);
    }

    #[test]
    fn convolve_coins_gives_binomial_support() {
        let c = convolve(
            &coin(0.0, 1.0),
            &coin(0.0, 1.0),
            ReductionPolicy::unlimited(),
        );
        assert_eq!(c.len(), 3);
        let probs: Vec<f64> = c.impulses().iter().map(|i| i.prob).collect();
        assert!((probs[0] - 0.25).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
        assert!((probs[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn convolution_mean_is_sum_of_means() {
        let a = Pmf::from_pairs(&[(1.0, 0.2), (5.0, 0.8)]).unwrap();
        let b = Pmf::from_pairs(&[(10.0, 0.6), (30.0, 0.4)]).unwrap();
        let c = convolve(&a, &b, ReductionPolicy::unlimited());
        assert!((c.expectation() - (a.expectation() + b.expectation())).abs() < 1e-12);
    }

    #[test]
    fn convolution_variance_is_sum_of_variances() {
        let a = coin(0.0, 2.0);
        let b = coin(0.0, 6.0);
        let c = convolve(&a, &b, ReductionPolicy::unlimited());
        assert!((c.variance() - (a.variance() + b.variance())).abs() < 1e-9);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = Pmf::from_pairs(&[(1.0, 0.3), (2.0, 0.7)]).unwrap();
        let b = Pmf::from_pairs(&[(0.5, 0.5), (4.0, 0.25), (8.0, 0.25)]).unwrap();
        let ab = convolve(&a, &b, ReductionPolicy::unlimited());
        let ba = convolve(&b, &a, ReductionPolicy::unlimited());
        assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.impulses().iter().zip(ba.impulses()) {
            assert!((x.value - y.value).abs() < 1e-12);
            assert!((x.prob - y.prob).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_respects_reduction_cap() {
        let a = Pmf::from_pairs(&(0..20).map(|i| (i as f64, 1.0)).collect::<Vec<_>>()).unwrap();
        let b = a.clone();
        let c = convolve(&a, &b, ReductionPolicy::new(8));
        assert!(c.len() <= 8);
        // Mean preserved by mean-preserving reduction.
        assert!((c.expectation() - 2.0 * a.expectation()).abs() < 1e-9);
    }

    #[test]
    fn convolve_all_folds_left() {
        let pmfs = [
            Pmf::singleton(1.0),
            Pmf::singleton(2.0),
            Pmf::singleton(3.0),
        ];
        let c = convolve_all(pmfs.iter(), ReductionPolicy::unlimited()).unwrap();
        assert_eq!(c.expectation(), 6.0);
    }

    #[test]
    fn convolve_all_empty_is_none() {
        let pmfs: Vec<Pmf> = Vec::new();
        assert!(convolve_all(pmfs.iter(), ReductionPolicy::unlimited()).is_none());
    }

    #[test]
    fn convolve_all_single_is_identity() {
        let p = coin(1.0, 3.0);
        let c = convolve_all(std::iter::once(&p), ReductionPolicy::unlimited()).unwrap();
        assert_eq!(c, p);
    }

    #[test]
    fn overlapping_sums_merge() {
        // 1+4 == 2+3 == 5: the merged support must carry combined mass.
        let a = Pmf::from_pairs(&[(1.0, 0.5), (2.0, 0.5)]).unwrap();
        let b = Pmf::from_pairs(&[(3.0, 0.5), (4.0, 0.5)]).unwrap();
        let c = convolve(&a, &b, ReductionPolicy::unlimited());
        assert_eq!(c.len(), 3); // 4, 5, 6
        assert!((c.prob_le(5.0) - 0.75).abs() < 1e-12);
        let mid = c.impulses().iter().find(|i| i.value == 5.0).unwrap();
        assert!((mid.prob - 0.5).abs() < 1e-12);
    }
}
