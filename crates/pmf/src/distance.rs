//! Distances between pmfs — used to quantify what impulse reduction and
//! other approximations cost.
//!
//! Two metrics matter for this workspace:
//!
//! * **Kolmogorov–Smirnov** (`sup |F − G|`): bounds the error of any
//!   deadline-tail query `P(X ≤ δ)` — exactly the quantity the robustness
//!   value ρ reads off a completion-time pmf, so the KS distance between an
//!   exact and a reduced pmf bounds the ρ error the reduction can cause.
//! * **1-Wasserstein** (`∫ |F − G|`): the "earth mover" cost; bounds the
//!   error of expectations of Lipschitz functions, hence of ECT.

use crate::pmf::Pmf;

/// The Kolmogorov–Smirnov distance `sup_x |F_a(x) − F_b(x)|`.
pub fn kolmogorov_smirnov(a: &Pmf, b: &Pmf) -> f64 {
    let mut max_gap = 0.0f64;
    let mut fa = 0.0;
    let mut fb = 0.0;
    let (mut i, mut j) = (0, 0);
    let ia = a.impulses();
    let ib = b.impulses();
    while i < ia.len() || j < ib.len() {
        let xa = ia.get(i).map(|imp| imp.value).unwrap_or(f64::INFINITY);
        let xb = ib.get(j).map(|imp| imp.value).unwrap_or(f64::INFINITY);
        if xa <= xb {
            fa += ia[i].prob;
            i += 1;
        }
        if xb <= xa {
            fb += ib[j].prob;
            j += 1;
        }
        max_gap = max_gap.max((fa - fb).abs());
    }
    max_gap.min(1.0)
}

/// The 1-Wasserstein distance `∫ |F_a(x) − F_b(x)| dx`.
pub fn wasserstein_1(a: &Pmf, b: &Pmf) -> f64 {
    // Merge the supports and integrate the CDF gap over each interval.
    let mut xs: Vec<f64> = a
        .impulses()
        .iter()
        .chain(b.impulses())
        .map(|imp| imp.value)
        .collect();
    xs.sort_by(|p, q| p.total_cmp(q));
    xs.dedup();
    let mut total = 0.0;
    for w in xs.windows(2) {
        let gap = (a.prob_le(w[0]) - b.prob_le(w[0])).abs();
        total += gap * (w[1] - w[0]);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReductionPolicy;

    fn uniform(n: usize, scale: f64) -> Pmf {
        let pairs: Vec<(f64, f64)> = (0..n).map(|i| (i as f64 * scale, 1.0)).collect();
        Pmf::from_pairs(&pairs).unwrap()
    }

    #[test]
    fn identical_pmfs_have_zero_distance() {
        let p = uniform(10, 1.0);
        assert_eq!(kolmogorov_smirnov(&p, &p), 0.0);
        assert_eq!(wasserstein_1(&p, &p), 0.0);
    }

    #[test]
    fn disjoint_singletons_ks_is_one() {
        let a = Pmf::singleton(0.0);
        let b = Pmf::singleton(10.0);
        assert_eq!(kolmogorov_smirnov(&a, &b), 1.0);
        assert!((wasserstein_1(&a, &b) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_of_shift_is_the_shift() {
        let p = uniform(8, 2.0);
        let q = p.shift(5.0);
        assert!((wasserstein_1(&p, &q) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ks_is_symmetric() {
        let a = uniform(5, 1.0);
        let b = uniform(9, 1.3);
        assert!((kolmogorov_smirnov(&a, &b) - kolmogorov_smirnov(&b, &a)).abs() < 1e-12);
        assert!((wasserstein_1(&a, &b) - wasserstein_1(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn reduction_error_is_bounded_by_bucket_mass() {
        // Equal-mass reduction to k impulses keeps KS error ≲ 1/k.
        let p = uniform(200, 1.0);
        for cap in [10usize, 20, 50] {
            let r = p.reduce(ReductionPolicy::new(cap));
            let ks = kolmogorov_smirnov(&p, &r);
            assert!(ks <= 1.5 / cap as f64, "cap {cap}: ks {ks}");
        }
    }

    #[test]
    fn ks_bounds_deadline_query_error() {
        let p = uniform(100, 3.0);
        let r = p.reduce(ReductionPolicy::new(12));
        let ks = kolmogorov_smirnov(&p, &r);
        for deadline in [30.0, 90.0, 150.0, 250.0] {
            let gap = (p.prob_le(deadline) - r.prob_le(deadline)).abs();
            assert!(
                gap <= ks + 1e-12,
                "deadline {deadline}: gap {gap} > ks {ks}"
            );
        }
    }

    #[test]
    fn triangle_like_monotonicity() {
        // A coarser reduction is at least as far away (not a strict law,
        // but holds for nested equal-mass reductions of a uniform pmf).
        let p = uniform(128, 1.0);
        let fine = p.reduce(ReductionPolicy::new(32));
        let coarse = p.reduce(ReductionPolicy::new(4));
        assert!(wasserstein_1(&p, &coarse) >= wasserstein_1(&p, &fine));
    }
}
