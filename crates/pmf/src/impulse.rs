//! A single (value, probability) impulse of a discrete distribution.

use crate::{Prob, Time};

/// One impulse of a discrete probability mass function: the outcome `value`
/// occurs with probability `prob`.
///
/// Impulses inside a [`crate::Pmf`] are always sorted by `value`, carry
/// strictly positive probability, and jointly sum to one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impulse {
    /// The support point (for this workspace: a time, in abstract units).
    pub value: Time,
    /// The probability mass at `value`.
    pub prob: Prob,
}

impl Impulse {
    /// Creates a new impulse.
    #[inline]
    pub const fn new(value: Time, prob: Prob) -> Self {
        Self { value, prob }
    }

    /// `true` when both fields are finite and the probability is strictly
    /// positive — the invariant every impulse stored in a pmf satisfies.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.value.is_finite() && self.prob.is_finite() && self.prob > 0.0
    }

    /// The contribution of this impulse to the distribution mean.
    #[inline]
    pub fn weighted_value(&self) -> f64 {
        self.value * self.prob
    }
}

/// FNV-1a 64-bit offset basis — the fingerprint of an empty impulse slice.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic 64-bit FNV-1a hash over the exact bit patterns
/// (`value.to_bits()`, `prob.to_bits()`) of an impulse slice, in order.
///
/// Two slices with equal fingerprints are *very probably* bit-identical,
/// but equality of fingerprints is only a fast necessary condition —
/// callers that need soundness must confirm with
/// [`impulses_bit_identical`]. No per-process entropy is involved, so the
/// hash is stable across runs and platforms (the determinism discipline of
/// ecds-lint R2).
pub(crate) fn fingerprint_impulses(impulses: &[Impulse]) -> u64 {
    let mut hash = FNV_OFFSET;
    for imp in impulses {
        for byte in imp.value.to_bits().to_le_bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        for byte in imp.prob.to_bits().to_le_bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// `true` iff both slices have the same length and every impulse pair
/// matches bit-for-bit (`to_bits` on both fields) — NaN-robust, and exactly
/// the identity the non-associative convolution algebra cares about.
pub(crate) fn impulses_bit_identical(a: &[Impulse], b: &[Impulse]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.value.to_bits() == y.value.to_bits() && x.prob.to_bits() == y.prob.to_bits()
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_impulse() {
        assert!(Impulse::new(3.0, 0.25).is_valid());
    }

    #[test]
    fn zero_probability_is_invalid() {
        assert!(!Impulse::new(3.0, 0.0).is_valid());
    }

    #[test]
    fn negative_probability_is_invalid() {
        assert!(!Impulse::new(3.0, -0.1).is_valid());
    }

    #[test]
    fn non_finite_value_is_invalid() {
        assert!(!Impulse::new(f64::INFINITY, 0.5).is_valid());
        assert!(!Impulse::new(f64::NAN, 0.5).is_valid());
    }

    #[test]
    fn non_finite_probability_is_invalid() {
        assert!(!Impulse::new(1.0, f64::NAN).is_valid());
    }

    #[test]
    fn weighted_value_is_product() {
        assert_eq!(Impulse::new(4.0, 0.5).weighted_value(), 2.0);
    }

    #[test]
    fn negative_values_are_allowed() {
        // Support values may be negative in general pmf algebra (e.g. after
        // shifting); validity only demands finiteness.
        assert!(Impulse::new(-7.5, 0.3).is_valid());
    }

    #[test]
    fn fingerprint_is_deterministic_and_order_sensitive() {
        let a = [Impulse::new(1.0, 0.5), Impulse::new(2.0, 0.5)];
        let b = [Impulse::new(2.0, 0.5), Impulse::new(1.0, 0.5)];
        assert_eq!(fingerprint_impulses(&a), fingerprint_impulses(&a));
        assert_ne!(fingerprint_impulses(&a), fingerprint_impulses(&b));
        assert_eq!(fingerprint_impulses(&[]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn fingerprint_distinguishes_bit_level_differences() {
        // 0.1 + 0.2 != 0.3 bitwise: the fingerprint must see the ulp.
        let x = [Impulse::new(0.1f64 + 0.2, 1.0)];
        let y = [Impulse::new(0.3, 1.0)];
        assert_ne!(fingerprint_impulses(&x), fingerprint_impulses(&y));
        assert!(!impulses_bit_identical(&x, &y));
    }

    #[test]
    fn bit_identity_requires_equal_lengths_and_bits() {
        let a = [Impulse::new(1.0, 0.5), Impulse::new(2.0, 0.5)];
        assert!(impulses_bit_identical(&a, &a));
        assert!(!impulses_bit_identical(&a, &a[..1]));
        // -0.0 == 0.0 under float eq but differs bitwise: bit identity is
        // the stricter (and cache-correct) relation.
        let pos = [Impulse::new(0.0, 1.0)];
        let neg = [Impulse::new(-0.0, 1.0)];
        assert!(!impulses_bit_identical(&pos, &neg));
    }
}
