//! A single (value, probability) impulse of a discrete distribution.

use crate::{Prob, Time};

/// One impulse of a discrete probability mass function: the outcome `value`
/// occurs with probability `prob`.
///
/// Impulses inside a [`crate::Pmf`] are always sorted by `value`, carry
/// strictly positive probability, and jointly sum to one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impulse {
    /// The support point (for this workspace: a time, in abstract units).
    pub value: Time,
    /// The probability mass at `value`.
    pub prob: Prob,
}

impl Impulse {
    /// Creates a new impulse.
    #[inline]
    pub const fn new(value: Time, prob: Prob) -> Self {
        Self { value, prob }
    }

    /// `true` when both fields are finite and the probability is strictly
    /// positive — the invariant every impulse stored in a pmf satisfies.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.value.is_finite() && self.prob.is_finite() && self.prob > 0.0
    }

    /// The contribution of this impulse to the distribution mean.
    #[inline]
    pub fn weighted_value(&self) -> f64 {
        self.value * self.prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_impulse() {
        assert!(Impulse::new(3.0, 0.25).is_valid());
    }

    #[test]
    fn zero_probability_is_invalid() {
        assert!(!Impulse::new(3.0, 0.0).is_valid());
    }

    #[test]
    fn negative_probability_is_invalid() {
        assert!(!Impulse::new(3.0, -0.1).is_valid());
    }

    #[test]
    fn non_finite_value_is_invalid() {
        assert!(!Impulse::new(f64::INFINITY, 0.5).is_valid());
        assert!(!Impulse::new(f64::NAN, 0.5).is_valid());
    }

    #[test]
    fn non_finite_probability_is_invalid() {
        assert!(!Impulse::new(1.0, f64::NAN).is_valid());
    }

    #[test]
    fn weighted_value_is_product() {
        assert_eq!(Impulse::new(4.0, 0.5).weighted_value(), 2.0);
    }

    #[test]
    fn negative_values_are_allowed() {
        // Support values may be negative in general pmf algebra (e.g. after
        // shifting); validity only demands finiteness.
        assert!(Impulse::new(-7.5, 0.3).is_valid());
    }
}
