//! Allocation-free fused convolution kernel over a reusable workspace.
//!
//! The mapper hot path (Sec. IV-B) convolves a queue-prefix pmf with an
//! execution-time pmf for *every* (core, P-state) candidate of every
//! mapping event — millions of times per experiment grid. The legacy
//! pipeline ([`crate::convolve::convolve`] → [`crate::reduce::reduce`])
//! allocates an `n × m` impulse buffer, stable-sorts it (another hidden
//! allocation), constructs an intermediate [`Pmf`], and then `reduce`
//! allocates (or clones) once more. [`PmfScratch`] fuses the pipeline into
//! passes over buffers that are reused across calls, so the steady-state
//! cost is arithmetic only.
//!
//! # Bit-identity contract
//!
//! The fused kernel produces output **bit-identical** to the legacy
//! pipeline — not approximately equal. This is load-bearing: the
//! queue-prefix cache (DESIGN.md §7) argues correctness via "recompute ≡
//! cached bit-for-bit", and impulse reduction makes convolution
//! non-associative, so any rounding divergence would compound across a
//! trial. Three properties carry the contract:
//!
//! 1. **Sorting.** The legacy path stable-sorts the `n × m` products. A
//!    stable sort's output *sequence* is uniquely determined (non-decreasing
//!    values, ties in original order), so any stable algorithm reproduces it
//!    bit-for-bit. Each of the `n` product rows (one `small` impulse against
//!    every `large` impulse) is already non-decreasing — float addition is
//!    monotone — so a bottom-up merge of the `n` pre-sorted rows (adjacent
//!    run pairs, ties taking the left run) is such a stable algorithm, and
//!    it runs in `O(n·m·log n)` without allocating.
//! 2. **Summation order.** Coincident-value merging accumulates
//!    probabilities in emission order, exactly as
//!    `sort_and_merge` (in `crate::pmf`) does; the reduction pass replays
//!    [`crate::reduce::reduce`]'s bucket walk (including its running
//!    emitted-mass accumulator) operation for operation.
//! 3. **Post-reduction normalization.** `reduce` stable-sorts and
//!    coincidence-merges its bucket centroids; the kernel does the same
//!    with an in-place insertion sort (stable, therefore the same
//!    permutation) and an in-place merge.
//!
//! The legacy entry points remain untouched as the differential reference;
//! `crates/pmf/tests/kernel_equivalence.rs` proves the equivalence over
//! arbitrary pmfs, policies, and chained convolutions.

use crate::impulse::Impulse;
use crate::pmf::{values_coincide, Pmf};
use crate::reduce::ReductionPolicy;
use crate::{Prob, Time};

/// A borrowed view of a valid impulse sequence (sorted, merged, positive,
/// unit mass) living in a [`PmfScratch`] buffer.
///
/// Mirrors the read-only query API of [`Pmf`] with the *same* floating-point
/// evaluation order, so moments and tail probabilities computed through a
/// view are bit-identical to materializing a `Pmf` first.
#[derive(Debug, Clone, Copy)]
pub struct PmfView<'a> {
    impulses: &'a [Impulse],
}

impl<'a> PmfView<'a> {
    fn new(impulses: &'a [Impulse]) -> Self {
        debug_assert!(!impulses.is_empty(), "views require at least one impulse");
        Self { impulses }
    }

    /// The impulses, sorted ascending by value.
    #[inline]
    pub fn impulses(&self) -> &'a [Impulse] {
        self.impulses
    }

    /// Number of support points.
    #[inline]
    pub fn len(&self) -> usize {
        self.impulses.len()
    }

    /// `true` for an empty view (unconstructible; API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.impulses.is_empty()
    }

    /// Smallest support value.
    #[inline]
    pub fn min_value(&self) -> Time {
        self.impulses[0].value
    }

    /// Largest support value.
    #[inline]
    pub fn max_value(&self) -> Time {
        self.impulses[self.impulses.len() - 1].value
    }

    /// The expectation `E[X]` — same summation order as
    /// [`Pmf::expectation`].
    pub fn expectation(&self) -> f64 {
        self.impulses.iter().map(Impulse::weighted_value).sum()
    }

    /// `P(X <= x)` — same accumulation order as [`Pmf::prob_le`].
    pub fn prob_le(&self, x: Time) -> Prob {
        let mut acc = 0.0;
        for imp in self.impulses {
            if imp.value <= x {
                acc += imp.prob;
            } else {
                break;
            }
        }
        acc.min(1.0)
    }

    /// Materializes the view as an owned [`Pmf`] (the view's one
    /// allocation; use the slice queries when the distribution is
    /// consumed immediately).
    pub fn to_pmf(&self) -> Pmf {
        Pmf::from_invariant_impulses(self.impulses.to_vec())
    }

    /// Deterministic 64-bit fingerprint of the viewed impulses' exact bit
    /// pattern — same hash as [`Pmf::fingerprint`], so a view and its
    /// materialized pmf always agree.
    pub fn fingerprint(&self) -> u64 {
        crate::impulse::fingerprint_impulses(self.impulses)
    }
}

/// Reusable workspace for the fused convolve→merge→reduce kernel and for a
/// resident queue-prefix pmf built without intermediate allocations.
///
/// One scratch serves one evaluation thread; buffers grow to the high-water
/// mark of the workload and are then reused, so steady-state kernel calls
/// perform **zero heap allocations**. The struct also counts kernel
/// invocations ([`PmfScratch::kernel_calls`]) so callers can report
/// allocation-free-path coverage.
#[derive(Debug, Default)]
pub struct PmfScratch {
    /// The `n × m` products, row-major: row `r` holds `small[r] + large[·]`.
    products: Vec<Impulse>,
    /// Ping-pong buffer for the bottom-up run merge over `products`.
    merge_buf: Vec<Impulse>,
    /// Sorted, coincidence-merged support of the convolution.
    merged: Vec<Impulse>,
    /// Final (reduced) result of the most recent kernel call.
    out: Vec<Impulse>,
    /// The resident queue-prefix pmf (empty = no prefix loaded).
    prefix: Vec<Impulse>,
    /// Fused kernel invocations since construction or the last
    /// [`PmfScratch::reset_kernel_calls`].
    kernel_calls: u64,
}

impl PmfScratch {
    /// An empty workspace; buffers are grown lazily by the first calls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fused kernel invocations recorded so far.
    #[inline]
    pub fn kernel_calls(&self) -> u64 {
        self.kernel_calls
    }

    /// Zeroes the kernel invocation counter (buffers are kept).
    pub fn reset_kernel_calls(&mut self) {
        self.kernel_calls = 0;
    }

    /// Restores the kernel invocation counter to a checkpointed value, so
    /// a resumed run reports the same cumulative instrumentation as an
    /// uninterrupted one. The workspace buffers are untouched — they carry
    /// no observable state between kernel calls.
    pub fn set_kernel_calls(&mut self, calls: u64) {
        self.kernel_calls = calls;
    }

    /// Fused equivalent of `a.convolve(b, policy)`: convolves and reduces
    /// entirely inside the workspace and returns a view of the result,
    /// valid until the next call that touches the workspace.
    ///
    /// Bit-identical to the legacy pipeline (see the module docs).
    pub fn convolve_reduced(&mut self, a: &Pmf, b: &Pmf, policy: ReductionPolicy) -> PmfView<'_> {
        self.convolve_reduced_slices(a.impulses(), b.impulses(), policy)
    }

    /// [`PmfScratch::convolve_reduced`] over raw impulse slices (both must
    /// satisfy the [`Pmf`] invariants).
    pub fn convolve_reduced_slices(
        &mut self,
        a: &[Impulse],
        b: &[Impulse],
        policy: ReductionPolicy,
    ) -> PmfView<'_> {
        let Self {
            products,
            merge_buf,
            merged,
            out,
            kernel_calls,
            ..
        } = self;
        fused_convolve_reduce(a, b, policy, products, merge_buf, merged, out);
        *kernel_calls += 1;
        PmfView::new(out)
    }

    /// Fused convolution returning an owned [`Pmf`] (one allocation for the
    /// returned impulse vector — the workspace itself allocates nothing in
    /// steady state).
    pub fn convolve_reduced_into(&mut self, a: &Pmf, b: &Pmf, policy: ReductionPolicy) -> Pmf {
        self.convolve_reduced(a, b, policy).to_pmf()
    }

    // --- resident queue-prefix operations -------------------------------

    /// Discards the resident prefix (the "idle empty core" state).
    pub fn clear_prefix(&mut self) {
        self.prefix.clear();
    }

    /// `true` when a prefix is loaded.
    #[inline]
    pub fn has_prefix(&self) -> bool {
        !self.prefix.is_empty()
    }

    /// A view of the resident prefix.
    ///
    /// # Panics
    ///
    /// Panics (via the view's debug assertion) if no prefix is loaded;
    /// check [`PmfScratch::has_prefix`] first.
    pub fn prefix(&self) -> PmfView<'_> {
        PmfView::new(&self.prefix)
    }

    /// Loads `pmf.shift(dt)` as the resident prefix without allocating —
    /// the buffer-reuse equivalent of [`Pmf::shift`], value arithmetic
    /// identical (`value + dt` per impulse).
    pub fn load_prefix_shifted(&mut self, pmf: &Pmf, dt: Time) {
        assert!(dt.is_finite(), "shift must be finite");
        self.prefix.clear();
        self.prefix.extend(
            pmf.impulses()
                .iter()
                .map(|i| Impulse::new(i.value + dt, i.prob)),
        );
    }

    /// In-place [`crate::truncate::truncate_below_or_floor`] on the
    /// resident prefix: drops impulses below `cutoff` and renormalizes with
    /// the same summation order as the legacy function; if every impulse is
    /// in the past the prefix degenerates to a singleton at `cutoff`.
    pub fn truncate_prefix_below_or_floor(&mut self, cutoff: Time) {
        assert!(cutoff.is_finite(), "cutoff must be finite");
        debug_assert!(self.has_prefix(), "no prefix loaded");
        // Support is sorted, so the kept impulses are a suffix.
        let kept_from = self
            .prefix
            .iter()
            .position(|i| i.value >= cutoff)
            .unwrap_or(self.prefix.len());
        self.prefix.drain(..kept_from);
        if self.prefix.is_empty() {
            self.prefix.push(Impulse::new(cutoff, 1.0));
            return;
        }
        // Same order as `truncate_below`: sum the kept run, then divide.
        let mass: f64 = self.prefix.iter().map(|i| i.prob).sum();
        for imp in &mut self.prefix {
            imp.prob /= mass;
        }
    }

    /// Replaces the resident prefix with `prefix ⊛ b` (reduced per
    /// `policy`) via the fused kernel — the zero-allocation equivalent of
    /// `prefix = prefix.convolve(b, policy)`.
    pub fn convolve_prefix_with(&mut self, b: &Pmf, policy: ReductionPolicy) {
        debug_assert!(self.has_prefix(), "no prefix loaded");
        let Self {
            products,
            merge_buf,
            merged,
            out,
            prefix,
            kernel_calls,
        } = self;
        fused_convolve_reduce(
            prefix,
            b.impulses(),
            policy,
            products,
            merge_buf,
            merged,
            out,
        );
        *kernel_calls += 1;
        std::mem::swap(prefix, out);
    }
}

/// The fused kernel: convolve `a ⊛ b`, merge coincident support points, and
/// reduce to `policy.max_impulses`, leaving the result in `out`. All
/// buffers are caller-owned and reused; no allocation happens once they
/// have grown to the workload's high-water mark.
// lint: alloc-free
#[allow(clippy::too_many_arguments)]
fn fused_convolve_reduce(
    a: &[Impulse],
    b: &[Impulse],
    policy: ReductionPolicy,
    products: &mut Vec<Impulse>,
    merge_buf: &mut Vec<Impulse>,
    merged: &mut Vec<Impulse>,
    out: &mut Vec<Impulse>,
) {
    debug_assert!(!a.is_empty() && !b.is_empty());
    // Same operand orientation as the legacy `convolve` (ties keep `a`).
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (n, m) = (small.len(), large.len());

    // Pass 1: the n × m products, row-major — identical push order (and
    // identical `value + value` / `prob * prob` arithmetic) to the legacy
    // product loop, so the stable-sort-equivalence argument applies.
    products.clear();
    products.reserve(n * m);
    for ia in small {
        for ib in large {
            products.push(Impulse::new(ia.value + ib.value, ia.prob * ib.prob));
        }
    }

    // Pass 2: bottom-up merge of the n pre-sorted rows (each row is
    // non-decreasing because float addition is monotone in one operand).
    // Adjacent runs are merged pairwise, ties always taking the *left* run —
    // a stable merge sort seeded with the row-major runs. A stable sort's
    // output sequence is uniquely determined, so this emits the products in
    // exactly the order the legacy stable `sort_by` would, in O(n·m·log n)
    // and without allocating. The sorted products are then streamed through
    // the coincident-value merge, replaying `sort_and_merge`'s accumulation.
    let total = n * m;
    let mut width = m;
    // Ping-pong between `products` and `merge_buf`; `src` always holds the
    // current (partially merged) runs.
    merge_buf.clear();
    merge_buf.resize(total, Impulse::new(0.0, 1.0));
    let mut src: &mut [Impulse] = products;
    let mut dst: &mut [Impulse] = merge_buf;
    while width < total {
        let mut start = 0;
        while start < total {
            let mid = usize::min(start + width, total);
            let end = usize::min(start + 2 * width, total);
            merge_runs(&src[start..mid], &src[mid..end], &mut dst[start..end]);
            start = end;
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    merged.clear();
    for &imp in src.iter() {
        push_merged(merged, imp);
    }

    // Pass 3: equal-mass impulse reduction, replaying `reduce`'s bucket
    // walk exactly. At or under the cap the merged support *is* the result
    // (the legacy path clones here; we just hand the buffer over).
    let cap = policy.max_impulses;
    if merged.len() <= cap {
        std::mem::swap(merged, out);
    } else {
        reduce_into(merged, cap, out);
    }

    debug_assert!(!out.is_empty());
    debug_assert!(out.windows(2).all(|w| w[0].value < w[1].value));
    debug_assert!(out.iter().all(Impulse::is_valid));
    debug_assert!(
        (out.iter().map(|i| i.prob).sum::<f64>() - 1.0).abs() < 1e-6,
        "kernel output mass must be 1"
    );
}

/// One stable two-run merge step: `a` and `b` are non-decreasing by value;
/// ties take `a` (the left run), so relative order of equal values — and
/// with it the stable-sort output permutation — is preserved.
#[inline]
fn merge_runs(a: &[Impulse], b: &[Impulse], out: &mut [Impulse]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        // `b` wins only on strict `<`; equality keeps the left run.
        if i < a.len() && (j >= b.len() || a[i].value <= b[j].value) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Streaming arm of [`crate::pmf::sort_and_merge`]: merge `imp` into the
/// last emitted impulse when their values coincide, preserving the legacy
/// accumulation order.
#[inline]
fn push_merged(merged: &mut Vec<Impulse>, imp: Impulse) {
    match merged.last_mut() {
        Some(last) if values_coincide(last.value, imp.value) => {
            last.prob += imp.prob;
        }
        _ => merged.push(imp),
    }
}

/// The equal-mass bucket pass of [`crate::reduce::reduce`], writing into a
/// reused buffer. Operation-for-operation identical to the legacy function
/// (including the running emitted-mass accumulator and the trailing
/// stable-sort + coincidence-merge), minus its allocations.
fn reduce_into(src: &[Impulse], cap: usize, out: &mut Vec<Impulse>) {
    debug_assert!(src.len() > cap && cap >= 1);
    let target_mass = 1.0 / cap as f64;
    out.clear();
    let mut bucket_mass = 0.0;
    let mut bucket_weighted = 0.0;
    let mut filled_buckets = 0usize;
    let mut emitted_mass = 0.0;
    let n = src.len();
    for (idx, imp) in src.iter().enumerate() {
        bucket_mass += imp.prob;
        bucket_weighted += imp.weighted_value();
        let remaining_impulses = n - idx - 1;
        let remaining_buckets = cap - filled_buckets - 1;
        let must_flush = remaining_impulses == remaining_buckets && remaining_buckets > 0;
        let quota_met =
            bucket_mass + 1e-15 >= target_mass * (filled_buckets + 1) as f64 - emitted_mass;
        if (quota_met || must_flush) && remaining_buckets > 0 {
            out.push(Impulse::new(bucket_weighted / bucket_mass, bucket_mass));
            emitted_mass += bucket_mass;
            filled_buckets += 1;
            bucket_mass = 0.0;
            bucket_weighted = 0.0;
        }
    }
    if bucket_mass > 0.0 {
        out.push(Impulse::new(bucket_weighted / bucket_mass, bucket_mass));
    }
    debug_assert!(out.len() <= cap);
    // `reduce` runs `sort_and_merge` on its bucket centroids; replicate
    // with a stable in-place sort (same permutation as any stable sort —
    // centroids are already sorted in all but pathological rounding cases)
    // and an in-place coincidence merge (same accumulation order).
    insertion_sort_stable(out);
    merge_coincident_in_place(out);
}

/// Stable in-place insertion sort by value — O(n) on the (nearly always
/// already sorted) centroid list, and by stability bit-identical in output
/// order to the legacy `sort_by`.
fn insertion_sort_stable(xs: &mut [Impulse]) {
    for i in 1..xs.len() {
        let mut j = i;
        while j > 0 && xs[j - 1].value > xs[j].value {
            xs.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// In-place arm of [`crate::pmf::sort_and_merge`]'s coincidence merge:
/// compacts runs of coinciding values into their first element, summing
/// probabilities in the legacy order.
fn merge_coincident_in_place(xs: &mut Vec<Impulse>) {
    if xs.is_empty() {
        return;
    }
    let mut w = 0usize;
    for r in 1..xs.len() {
        if values_coincide(xs[w].value, xs[r].value) {
            let prob = xs[r].prob;
            xs[w].prob += prob;
        } else {
            w += 1;
            xs[w] = xs[r];
        }
    }
    xs.truncate(w + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolve::convolve;
    use crate::truncate::truncate_below_or_floor;

    fn pmf(pairs: &[(f64, f64)]) -> Pmf {
        Pmf::from_pairs(pairs).unwrap()
    }

    fn wide(n: usize) -> Pmf {
        let pairs: Vec<(f64, f64)> = (0..n).map(|i| (i as f64 * 1.7, 1.0 + i as f64)).collect();
        Pmf::from_pairs(&pairs).unwrap()
    }

    #[test]
    fn fused_matches_legacy_bitwise_simple() {
        let a = pmf(&[(1.0, 0.3), (2.0, 0.7)]);
        let b = pmf(&[(0.5, 0.5), (4.0, 0.25), (8.0, 0.25)]);
        let mut scratch = PmfScratch::new();
        for policy in [
            ReductionPolicy::unlimited(),
            ReductionPolicy::new(1),
            ReductionPolicy::new(3),
            ReductionPolicy::default_cap(),
        ] {
            let legacy = convolve(&a, &b, policy);
            let fused = scratch.convolve_reduced_into(&a, &b, policy);
            assert_eq!(fused, legacy);
        }
    }

    #[test]
    fn fused_matches_legacy_with_overlapping_sums() {
        // 1+4 == 2+3: exercises the coincidence merge.
        let a = pmf(&[(1.0, 0.5), (2.0, 0.5)]);
        let b = pmf(&[(3.0, 0.5), (4.0, 0.5)]);
        let mut scratch = PmfScratch::new();
        let legacy = convolve(&a, &b, ReductionPolicy::unlimited());
        let fused = scratch.convolve_reduced_into(&a, &b, ReductionPolicy::unlimited());
        assert_eq!(fused, legacy);
        assert_eq!(fused.len(), 3);
    }

    #[test]
    fn fused_matches_legacy_under_heavy_reduction() {
        let a = wide(20);
        let b = wide(17);
        let mut scratch = PmfScratch::new();
        for cap in [1, 2, 5, 8, 24] {
            let policy = ReductionPolicy::new(cap);
            assert_eq!(
                scratch.convolve_reduced_into(&a, &b, policy),
                convolve(&a, &b, policy),
                "cap {cap}"
            );
        }
    }

    #[test]
    fn scratch_is_reusable_across_mismatched_sizes() {
        let mut scratch = PmfScratch::new();
        let big = wide(30);
        let small = pmf(&[(5.0, 1.0)]);
        let policy = ReductionPolicy::new(8);
        // Big → small → big again: buffers must not carry stale state.
        assert_eq!(
            scratch.convolve_reduced_into(&big, &big, policy),
            convolve(&big, &big, policy)
        );
        assert_eq!(
            scratch.convolve_reduced_into(&small, &small, policy),
            convolve(&small, &small, policy)
        );
        assert_eq!(
            scratch.convolve_reduced_into(&big, &small, policy),
            convolve(&big, &small, policy)
        );
    }

    #[test]
    fn view_queries_match_pmf_queries() {
        let a = wide(12);
        let b = wide(9);
        let policy = ReductionPolicy::new(6);
        let mut scratch = PmfScratch::new();
        let legacy = convolve(&a, &b, policy);
        let view = scratch.convolve_reduced(&a, &b, policy);
        assert_eq!(view.expectation(), legacy.expectation());
        assert_eq!(view.min_value(), legacy.min_value());
        assert_eq!(view.max_value(), legacy.max_value());
        assert_eq!(view.len(), legacy.len());
        for x in [0.0, 3.0, 17.5, 80.0] {
            assert_eq!(view.prob_le(x), legacy.prob_le(x));
        }
    }

    #[test]
    fn prefix_pipeline_matches_legacy_pipeline() {
        let exec = wide(10);
        let queued = [wide(7), pmf(&[(3.0, 0.4), (9.0, 0.6)]), wide(5)];
        let policy = ReductionPolicy::new(8);
        let (start, now) = (12.5, 20.0);

        // Legacy: shift → truncate-or-floor → fold convolutions.
        let mut legacy = truncate_below_or_floor(&exec.shift(start), now);
        for q in &queued {
            legacy = legacy.convolve(q, policy);
        }

        let mut scratch = PmfScratch::new();
        scratch.load_prefix_shifted(&exec, start);
        scratch.truncate_prefix_below_or_floor(now);
        for q in &queued {
            scratch.convolve_prefix_with(q, policy);
        }
        assert_eq!(scratch.prefix().to_pmf(), legacy);
    }

    #[test]
    fn truncate_prefix_floors_to_singleton() {
        let mut scratch = PmfScratch::new();
        scratch.load_prefix_shifted(&wide(6), 0.0);
        scratch.truncate_prefix_below_or_floor(1e9);
        let view = scratch.prefix();
        assert_eq!(view.len(), 1);
        assert_eq!(view.min_value(), 1e9);
        assert_eq!(view.impulses()[0].prob, 1.0);
    }

    #[test]
    fn kernel_call_counter_counts_and_resets() {
        let mut scratch = PmfScratch::new();
        let a = wide(4);
        assert_eq!(scratch.kernel_calls(), 0);
        let _ = scratch.convolve_reduced(&a, &a, ReductionPolicy::default_cap());
        scratch.load_prefix_shifted(&a, 0.0);
        scratch.convolve_prefix_with(&a, ReductionPolicy::default_cap());
        assert_eq!(scratch.kernel_calls(), 2);
        scratch.reset_kernel_calls();
        assert_eq!(scratch.kernel_calls(), 0);
    }

    #[test]
    fn clear_prefix_resets_residency() {
        let mut scratch = PmfScratch::new();
        assert!(!scratch.has_prefix());
        scratch.load_prefix_shifted(&wide(3), 1.0);
        assert!(scratch.has_prefix());
        scratch.clear_prefix();
        assert!(!scratch.has_prefix());
    }

    #[test]
    fn insertion_sort_is_stable_and_sorts() {
        let mut xs = vec![
            Impulse::new(3.0, 0.1),
            Impulse::new(1.0, 0.2),
            Impulse::new(3.0, 0.3),
            Impulse::new(2.0, 0.4),
        ];
        insertion_sort_stable(&mut xs);
        let values: Vec<f64> = xs.iter().map(|i| i.value).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0, 3.0]);
        // Stability: the 3.0 with prob 0.1 was pushed first and stays first.
        assert_eq!(xs[2].prob, 0.1);
        assert_eq!(xs[3].prob, 0.3);
    }
}
