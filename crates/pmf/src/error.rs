//! Error type for pmf construction and manipulation.

use std::fmt;

/// Errors produced while constructing or transforming a [`crate::Pmf`].
#[derive(Debug, Clone, PartialEq)]
pub enum PmfError {
    /// The impulse list supplied to a constructor was empty.
    Empty,
    /// An impulse carried a non-finite or non-positive probability.
    InvalidProbability {
        /// The offending probability value.
        prob: f64,
    },
    /// An impulse carried a non-finite support value.
    InvalidValue {
        /// The offending support value.
        value: f64,
    },
    /// The probabilities did not sum to one within [`crate::MASS_EPSILON`].
    NotNormalized {
        /// The actual total mass observed.
        total: f64,
    },
    /// A truncation removed all probability mass (every outcome was in the
    /// past), so no valid distribution remains.
    AllMassTruncated,
    /// A quantile query was outside `[0, 1]`.
    InvalidQuantile {
        /// The offending quantile.
        u: f64,
    },
}

impl fmt::Display for PmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmfError::Empty => write!(f, "pmf must contain at least one impulse"),
            PmfError::InvalidProbability { prob } => {
                write!(f, "impulse probability {prob} is not finite and positive")
            }
            PmfError::InvalidValue { value } => {
                write!(f, "impulse value {value} is not finite")
            }
            PmfError::NotNormalized { total } => {
                write!(f, "pmf mass {total} does not sum to 1")
            }
            PmfError::AllMassTruncated => {
                write!(f, "truncation removed all probability mass")
            }
            PmfError::InvalidQuantile { u } => {
                write!(f, "quantile {u} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for PmfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(PmfError::Empty.to_string().contains("at least one"));
        assert!(PmfError::InvalidProbability { prob: -0.5 }
            .to_string()
            .contains("-0.5"));
        assert!(PmfError::InvalidValue { value: f64::NAN }
            .to_string()
            .contains("NaN"));
        assert!(PmfError::NotNormalized { total: 0.7 }
            .to_string()
            .contains("0.7"));
        assert!(PmfError::AllMassTruncated
            .to_string()
            .contains("truncation"));
        assert!(PmfError::InvalidQuantile { u: 1.5 }
            .to_string()
            .contains("1.5"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<PmfError>();
    }
}
