//! Hand-rolled versioned binary codec for checkpoint/restore (DESIGN.md
//! §12).
//!
//! The serve loop (`ecds_sim::serve`) snapshots complete simulation state —
//! clock, event queue, per-core state, RNG positions, energy logs,
//! discipline internals — and must restore it **bit-identically**: a trial
//! checkpointed at any event boundary and resumed produces byte-identical
//! outcomes and telemetry versus an uninterrupted run. This workspace
//! builds hermetically with no registry access, so instead of serde the
//! codec is written by hand against three rules:
//!
//! 1. **Fixed-width little-endian only.** Every integer on the wire is
//!    `u8`/`u16`/`u32`/`u64`; floats travel as `f64::to_bits`. Pointer-width
//!    types never appear in the format (enforced by ecds-lint R2's
//!    persist-crate ban table), so a checkpoint written on one platform
//!    restores on any other.
//! 2. **Typed failures, never panics.** Decoding attacker- or
//!    disk-corrupted bytes returns [`DecodeError`]; no code path in this
//!    crate unwraps, panics, or silently misreads.
//! 3. **Versioned, checksummed envelope.** [`seal`] frames a payload with a
//!    magic number, a format version, and an FNV-1a-64 checksum; [`open`]
//!    rejects foreign bytes ([`DecodeError::BadMagic`]), future formats
//!    ([`DecodeError::UnsupportedVersion`]), and bit rot
//!    ([`DecodeError::ChecksumMismatch`]) before any field is interpreted.
//!
//! Domain crates implement [`Persist`] for their own types (the pmf
//! impulses, core states, event queues, RNG streams) next to the private
//! fields they must restore exactly; this crate only defines the wire
//! primitives.

#![warn(missing_docs)]

/// Magic number opening every sealed envelope (`b"ECDSCKPT"` read as a
/// little-endian `u64`).
pub const MAGIC: u64 = u64::from_le_bytes(*b"ECDSCKPT");

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` — deterministic, platform-independent,
/// no per-process entropy.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A typed decoding failure. Every constructor of this enum is a *refusal*:
/// the decoder never guesses, truncates silently, or panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the field (or envelope frame) it should
    /// contain.
    Truncated,
    /// The envelope does not start with [`MAGIC`] — these are not
    /// checkpoint bytes.
    BadMagic,
    /// The envelope's format version is not the one the reader supports.
    UnsupportedVersion {
        /// The version number found in the envelope header.
        found: u32,
    },
    /// The envelope checksum does not match its payload.
    ChecksumMismatch,
    /// A field decoded to a value that violates a documented invariant of
    /// the persisted type (the message names the invariant).
    Corrupt(&'static str),
    /// Decoding finished but unread bytes remain — the buffer does not
    /// match the schema that is being read.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "buffer truncated"),
            Self::BadMagic => write!(f, "bad magic: not a checkpoint envelope"),
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            Self::ChecksumMismatch => write!(f, "envelope checksum mismatch"),
            Self::Corrupt(what) => write!(f, "corrupt field: {what}"),
            Self::TrailingBytes => write!(f, "trailing bytes after decoded payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only little-endian byte sink. Encoding is infallible; the
/// companion [`Decoder`] re-reads the exact sequence of fields.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern ([`f64::to_bits`],
    /// little-endian) — the representation round-trips NaN payloads and the
    /// sign of zero.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (`0` or `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends raw bytes verbatim (callers frame them with an explicit
    /// length field when the boundary is not implied by the schema).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn written(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Consumes the encoder and returns the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a byte buffer that reads back the sequence an [`Encoder`]
/// wrote. Every read is bounds-checked and returns
/// [`DecodeError::Truncated`] past the end; nothing here panics.
#[derive(Debug, Clone, Copy)]
pub struct Decoder<'b> {
    rest: &'b [u8],
}

impl<'b> Decoder<'b> {
    /// A decoder over `bytes`.
    pub fn new(bytes: &'b [u8]) -> Self {
        Self { rest: bytes }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.rest.len() as u64
    }

    /// Returns [`DecodeError::TrailingBytes`] unless the buffer has been
    /// consumed exactly.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let (first, rest) = self.rest.split_first().ok_or(DecodeError::Truncated)?;
        self.rest = rest;
        Ok(*first)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let (chunk, rest) = self
            .rest
            .split_first_chunk::<2>()
            .ok_or(DecodeError::Truncated)?;
        self.rest = rest;
        Ok(u16::from_le_bytes(*chunk))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let (chunk, rest) = self
            .rest
            .split_first_chunk::<4>()
            .ok_or(DecodeError::Truncated)?;
        self.rest = rest;
        Ok(u32::from_le_bytes(*chunk))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let (chunk, rest) = self
            .rest
            .split_first_chunk::<8>()
            .ok_or(DecodeError::Truncated)?;
        self.rest = rest;
        Ok(u64::from_le_bytes(*chunk))
    }

    /// Reads an `f64` from its exact bit pattern ([`f64::from_bits`]).
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than `0` or `1` is
    /// [`DecodeError::Corrupt`].
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Corrupt("bool byte must be 0 or 1")),
        }
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: u64) -> Result<&'b [u8], DecodeError> {
        if n > self.remaining() {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.rest.split_at(n as _);
        self.rest = rest;
        Ok(head)
    }
}

/// A type that round-trips through the codec bit-identically:
/// `decode(encode(x)) == x` down to the exact bit pattern of every float.
pub trait Persist: Sized {
    /// Appends this value's wire representation.
    fn encode(&self, enc: &mut Encoder);
    /// Reads one value back, validating every documented invariant.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

impl Persist for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u8()
    }
}

impl Persist for u16 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u16(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u16()
    }
}

impl Persist for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u32()
    }
}

impl Persist for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u64()
    }
}

impl Persist for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.f64()
    }
}

impl Persist for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.bool()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_bool(false),
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        if dec.bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.len() as u64);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.u64()?;
        // Each element occupies at least one byte, so a length exceeding
        // the remaining buffer is a truncation (and this guard keeps a
        // corrupted length field from driving a huge reservation).
        if n > dec.remaining() {
            return Err(DecodeError::Truncated);
        }
        let mut out = Vec::with_capacity(n as _);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

/// Byte length of the envelope header ([`MAGIC`] + version).
const HEADER_LEN: u64 = 12;
/// Byte length of the trailing checksum.
const CHECKSUM_LEN: u64 = 8;

/// Frames `body` in the versioned envelope:
/// `MAGIC (u64) ‖ version (u32) ‖ body ‖ FNV-1a-64(prefix) (u64)`,
/// everything little-endian.
pub fn seal(version: u32, body: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(MAGIC);
    enc.put_u32(version);
    enc.put_bytes(body);
    let checksum = fnv1a_64(enc.as_slice());
    enc.put_u64(checksum);
    enc.into_bytes()
}

/// Validates an envelope produced by [`seal`] and returns its body.
///
/// Checks, in order: the buffer frames a complete envelope
/// ([`DecodeError::Truncated`]), it opens with [`MAGIC`]
/// ([`DecodeError::BadMagic`]), its version equals `expect_version`
/// ([`DecodeError::UnsupportedVersion`]), and the trailing checksum matches
/// the prefix ([`DecodeError::ChecksumMismatch`]). Only then may callers
/// interpret body fields.
pub fn open(bytes: &[u8], expect_version: u32) -> Result<&[u8], DecodeError> {
    if (bytes.len() as u64) < HEADER_LEN + CHECKSUM_LEN {
        return Err(DecodeError::Truncated);
    }
    let Some((payload, check)) = bytes.split_last_chunk::<8>() else {
        return Err(DecodeError::Truncated);
    };
    let mut dec = Decoder::new(payload);
    if dec.u64()? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = dec.u32()?;
    if version != expect_version {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }
    if fnv1a_64(payload) != u64::from_le_bytes(*check) {
        return Err(DecodeError::ChecksumMismatch);
    }
    // The decoder has consumed exactly the header; what remains is the body.
    Ok(dec.rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(0xAB);
        enc.put_u16(0xBEEF);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(0x0123_4567_89AB_CDEF);
        enc.put_f64(-0.0);
        enc.put_bool(true);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 0xAB);
        assert_eq!(dec.u16().unwrap(), 0xBEEF);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.bool().unwrap());
        dec.finish().unwrap();
    }

    #[test]
    fn nan_payload_and_zero_sign_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut enc = Encoder::new();
        enc.put_f64(weird);
        enc.put_f64(-0.0);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.f64().unwrap().to_bits(), weird.to_bits());
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn reads_past_end_are_truncated() {
        let mut dec = Decoder::new(&[1, 2, 3]);
        assert_eq!(dec.u64(), Err(DecodeError::Truncated));
        assert_eq!(dec.u32(), Err(DecodeError::Truncated));
        // The failed reads consumed nothing.
        assert_eq!(dec.remaining(), 3);
        assert_eq!(dec.u16().unwrap(), 0x0201);
        assert_eq!(dec.u8().unwrap(), 3);
        assert_eq!(dec.u8(), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut dec = Decoder::new(&[2]);
        assert!(matches!(dec.bool(), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let dec = Decoder::new(&[0]);
        assert_eq!(dec.finish(), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn vec_round_trips_and_rejects_oversized_length() {
        let v: Vec<u64> = vec![1, u64::MAX, 42];
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Vec::<u64>::decode(&mut dec).unwrap(), v);
        dec.finish().unwrap();

        // A length field claiming more elements than bytes remain must be
        // refused before any allocation is attempted.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Vec::<u8>::decode(&mut dec), Err(DecodeError::Truncated));
    }

    #[test]
    fn option_round_trips() {
        for v in [None, Some(7.5f64)] {
            let mut enc = Encoder::new();
            v.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(Option::<f64>::decode(&mut dec).unwrap(), v);
        }
    }

    #[test]
    fn seal_open_round_trips() {
        let body = b"checkpoint payload";
        let sealed = seal(3, body);
        assert_eq!(open(&sealed, 3).unwrap(), body);
    }

    #[test]
    fn open_rejects_truncation_magic_version_and_corruption() {
        let sealed = seal(1, b"payload");
        assert_eq!(open(&sealed[..10], 1), Err(DecodeError::Truncated));
        assert_eq!(open(&[], 1), Err(DecodeError::Truncated));

        let mut bad_magic = sealed.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(open(&bad_magic, 1), Err(DecodeError::BadMagic));

        assert_eq!(
            open(&sealed, 2),
            Err(DecodeError::UnsupportedVersion { found: 1 })
        );

        let mut flipped = sealed.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert_eq!(open(&flipped, 1), Err(DecodeError::ChecksumMismatch));
    }

    #[test]
    fn checksum_covers_header_and_body() {
        // Flipping a bit in the version field must fail the checksum even
        // when the flipped version happens to be the expected one.
        let sealed_v3 = seal(3, b"x");
        let mut forged = seal(1, b"x");
        forged[8..12].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(open(&forged, 3), Err(DecodeError::ChecksumMismatch));
        assert!(open(&sealed_v3, 3).is_ok());
    }

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(DecodeError::Truncated.to_string(), "buffer truncated");
        assert_eq!(
            DecodeError::UnsupportedVersion { found: 9 }.to_string(),
            "unsupported checkpoint format version 9"
        );
    }
}
