//! Property tests of the checkpoint codec (DESIGN.md §12).
//!
//! Two families of properties:
//!
//! 1. **Round-trip bit-identity** — `decode(encode(x))` reproduces `x`
//!    exactly, down to the bit pattern of every float (NaN payloads and the
//!    sign of zero included), for every `Persist` type in the workspace:
//!    the wire primitives, `Option`/`Vec`/tuples, the pmf types, the
//!    prefix-cache stamp, and the RNG state words.
//! 2. **Hostile bytes never panic** — corrupted, truncated, bit-flipped,
//!    or wrong-version buffers produce a typed [`DecodeError`]; no input
//!    reaches an unwrap, an overflow, or an oversized allocation.

use ecds_persist::{open, seal, DecodeError, Decoder, Encoder, Persist};
use ecds_pmf::{Impulse, Pmf};
use ecds_sim::PrefixStamp;
use proptest::prelude::*;
use proptest::strategy::Map;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::RangeInclusive;

fn roundtrip<T: Persist>(value: &T) -> T {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    let out = T::decode(&mut dec).expect("encoded value must decode");
    dec.finish()
        .expect("decode must consume exactly what encode wrote");
    out
}

/// Full-range `u64` (the vendored proptest has no `any::<T>()`).
fn arb_u64() -> RangeInclusive<u64> {
    0..=u64::MAX
}

/// `f64` from raw bits: covers NaN payloads, infinities, subnormals, and
/// both zeros — everything `==` would mishandle and `to_bits` must not.
fn arb_f64_bits() -> Map<RangeInclusive<u64>, fn(u64) -> f64> {
    arb_u64().prop_map(f64::from_bits)
}

/// `Option<T>` strategy built from a presence flag (no `option::of` in the
/// vendored stand-in).
fn arb_option<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (prop::bool::ANY, inner).prop_map(|(some, v)| some.then_some(v))
}

/// A structurally valid pmf: strictly increasing values, positive mass
/// normalised to 1 (within the codec's documented 1e-6 tolerance).
fn arb_pmf() -> impl Strategy<Value = Pmf> {
    prop::collection::vec(1u32..1000, 1..8).prop_map(|weights| {
        let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
        let pairs: Vec<(f64, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (10.0 + 5.0 * i as f64, f64::from(w) / total))
            .collect();
        Pmf::from_pairs(&pairs).expect("strategy builds a valid pmf")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // -- round-trip bit-identity ------------------------------------------

    #[test]
    fn primitives_round_trip(a in 0u8..=u8::MAX, b in 0u16..=u16::MAX,
                             c in 0u32..=u32::MAX, d in arb_u64(),
                             e in arb_f64_bits(), f in prop::bool::ANY) {
        prop_assert_eq!(roundtrip(&a), a);
        prop_assert_eq!(roundtrip(&b), b);
        prop_assert_eq!(roundtrip(&c), c);
        prop_assert_eq!(roundtrip(&d), d);
        prop_assert_eq!(roundtrip(&e).to_bits(), e.to_bits());
        prop_assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn containers_round_trip(opt in arb_option(arb_f64_bits()),
                             vec in prop::collection::vec(arb_u64(), 0..32),
                             pair in (arb_u64(), arb_f64_bits()),
                             triple in (arb_f64_bits(), arb_f64_bits(), 0u32..=u32::MAX)) {
        prop_assert_eq!(roundtrip(&opt).map(f64::to_bits), opt.map(f64::to_bits));
        prop_assert_eq!(roundtrip(&vec), vec);
        let back = roundtrip(&pair);
        prop_assert_eq!(back.0, pair.0);
        prop_assert_eq!(back.1.to_bits(), pair.1.to_bits());
        let back = roundtrip(&triple);
        prop_assert_eq!(back.0.to_bits(), triple.0.to_bits());
        prop_assert_eq!(back.1.to_bits(), triple.1.to_bits());
        prop_assert_eq!(back.2, triple.2);
    }

    #[test]
    fn float_vectors_round_trip_bitwise(vec in prop::collection::vec(arb_f64_bits(), 0..32)) {
        let back = roundtrip(&vec);
        prop_assert_eq!(back.len(), vec.len());
        for (x, y) in back.iter().zip(&vec) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn impulse_round_trips_bitwise(value in arb_f64_bits(), prob in arb_f64_bits()) {
        let imp = Impulse { value, prob };
        let back = roundtrip(&imp);
        prop_assert_eq!(back.value.to_bits(), imp.value.to_bits());
        prop_assert_eq!(back.prob.to_bits(), imp.prob.to_bits());
    }

    #[test]
    fn pmf_round_trips_bitwise(pmf in arb_pmf()) {
        prop_assert!(roundtrip(&pmf).bit_eq(&pmf));
    }

    #[test]
    fn prefix_stamp_round_trips(fp in arb_option(arb_u64()), epoch in arb_u64()) {
        let stamp = PrefixStamp::from_checkpoint(fp, epoch);
        let back = roundtrip(&stamp);
        prop_assert_eq!(back.fingerprint(), stamp.fingerprint());
        prop_assert_eq!(back.epoch(), stamp.epoch());
    }

    #[test]
    fn rng_state_round_trip_continues_the_stream(seed in arb_u64(), burn in 0usize..64) {
        // The serve checkpoint stores RNG positions as their four state
        // words; a restored stream must continue exactly where the
        // original left off.
        let mut original = StdRng::seed_from_u64(seed);
        for _ in 0..burn {
            let _ = original.gen_range(0..u64::MAX);
        }
        let mut enc = Encoder::new();
        for word in original.state() {
            enc.put_u64(word);
        }
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = dec.u64().expect("state words present");
        }
        let mut restored = StdRng::from_state(state);
        for _ in 0..16 {
            prop_assert_eq!(
                original.gen_range(0..u64::MAX),
                restored.gen_range(0..u64::MAX)
            );
        }
    }

    // -- the envelope ------------------------------------------------------

    #[test]
    fn seal_open_round_trips(body in prop::collection::vec(0u8..=u8::MAX, 0..256),
                             version in 0u32..=u32::MAX) {
        let sealed = seal(version, &body);
        prop_assert_eq!(open(&sealed, version).expect("fresh envelope opens"), &body[..]);
    }

    #[test]
    fn any_single_bit_flip_is_rejected(body in prop::collection::vec(0u8..=u8::MAX, 0..64),
                                       byte_sel in 0usize..4096,
                                       bit in 0u8..8) {
        // The checksum covers the full prefix (magic and version included),
        // so no single-bit corruption anywhere in the envelope can open.
        let sealed = seal(1, &body);
        let mut bent = sealed.clone();
        let idx = byte_sel % bent.len();
        bent[idx] ^= 1 << bit;
        prop_assert!(open(&bent, 1).is_err(), "flip at byte {idx} bit {bit} opened");
    }

    #[test]
    fn every_strict_prefix_is_rejected(body in prop::collection::vec(0u8..=u8::MAX, 0..48)) {
        let sealed = seal(1, &body);
        for len in 0..sealed.len() {
            prop_assert!(open(&sealed[..len], 1).is_err(), "prefix of {len} bytes opened");
        }
    }

    #[test]
    fn foreign_versions_are_typed(body in prop::collection::vec(0u8..=u8::MAX, 0..32),
                                  wrote in 0u32..=u32::MAX, bump in 1u32..=u32::MAX) {
        let expect = wrote.wrapping_add(bump); // always != wrote
        let sealed = seal(wrote, &body);
        prop_assert_eq!(
            open(&sealed, expect),
            Err(DecodeError::UnsupportedVersion { found: wrote })
        );
    }

    // -- hostile bytes never panic ----------------------------------------

    #[test]
    fn decoders_never_panic_on_random_bytes(bytes in prop::collection::vec(0u8..=u8::MAX, 0..128)) {
        // Every decode either succeeds or returns a typed error; reaching
        // the end of this body at all is the property.
        let _ = open(&bytes, 1);
        let _ = Pmf::decode(&mut Decoder::new(&bytes));
        let _ = Impulse::decode(&mut Decoder::new(&bytes));
        let _ = PrefixStamp::decode(&mut Decoder::new(&bytes));
        let _ = Vec::<f64>::decode(&mut Decoder::new(&bytes));
        let _ = Vec::<(u64, f64)>::decode(&mut Decoder::new(&bytes));
        let _ = Option::<Pmf>::decode(&mut Decoder::new(&bytes));
        let _ = bool::decode(&mut Decoder::new(&bytes));
    }

    #[test]
    fn truncated_values_report_truncated(vec in prop::collection::vec(arb_u64(), 1..16),
                                         cut_sel in 0usize..4096) {
        let mut enc = Encoder::new();
        vec.encode(&mut enc);
        let bytes = enc.into_bytes();
        // Cut strictly inside the payload: some suffix is missing.
        let len = 8 + cut_sel % (bytes.len() - 8);
        let mut dec = Decoder::new(&bytes[..len]);
        prop_assert_eq!(Vec::<u64>::decode(&mut dec), Err(DecodeError::Truncated));
    }

    #[test]
    fn oversized_length_fields_never_allocate(claim in (1u64 << 32)..u64::MAX) {
        // A corrupted length field far beyond the buffer must be refused
        // before any reservation is attempted.
        let mut enc = Encoder::new();
        enc.put_u64(claim);
        let bytes = enc.into_bytes();
        prop_assert_eq!(
            Vec::<u8>::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::Truncated)
        );
        prop_assert_eq!(
            Pmf::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::Truncated)
        );
    }
}
