//! # ecds — Energy-Constrained Dynamic Scheduling
//!
//! A complete reproduction of *"Energy-Constrained Dynamic Resource
//! Allocation in a Heterogeneous Computing Environment"* (Young et al.,
//! ICPP 2011) as a reusable Rust library: the stochastic completion-time
//! machinery, the robustness model, the SQ/MECT/LL/Random heuristics, the
//! energy and robustness filters, and every substrate the paper's
//! simulation study depends on (heterogeneous DVFS cluster model, CVB
//! workload generator, discrete-event simulator with exact energy
//! accounting, result statistics).
//!
//! This facade re-exports each subsystem under a stable module name; see
//! the individual crates for full documentation:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`pmf`] | `ecds-pmf` | discrete pmfs, convolution, truncation, samplers, seed derivation |
//! | [`cluster`] | `ecds-cluster` | nodes/processors/cores, ACPI P-states, CMOS power model |
//! | [`workload`] | `ecds-workload` | CVB task heterogeneity, bursty Poisson arrivals, deadlines |
//! | [`sim`] | `ecds-sim` | discrete-event engine, energy accounting, trial results |
//! | [`core`] | `ecds-core` | robustness, heuristics, filters, the scheduler |
//! | [`stats`] | `ecds-stats` | box-plot summaries, ASCII figures, tables, CSV |
//! | [`ext`] | `ecds-ext` | future-work extensions: priorities, cancellation, stochastic power, arrival variety |
//!
//! # Quickstart
//!
//! ```
//! use ecds::prelude::*;
//!
//! // Everything reproduces from one master seed.
//! let scenario = Scenario::small_for_tests(42);
//! let trace = scenario.trace(0);
//!
//! // The paper's best configuration: LL heuristic + both filters.
//! let mut mapper = build_scheduler(
//!     HeuristicKind::LightestLoad,
//!     FilterVariant::EnergyAndRobustness,
//!     &scenario,
//!     0,
//! );
//! let result = Simulation::new(&scenario, &trace).run(mapper.as_mut());
//! println!(
//!     "missed {} of {} deadlines, {:.1}% of the energy budget consumed",
//!     result.missed(),
//!     result.window(),
//!     100.0 * result.total_energy() / scenario.energy_budget().unwrap(),
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ecds_cluster as cluster;
pub use ecds_core as core;
pub use ecds_ext as ext;
pub use ecds_persist as persist;
pub use ecds_pmf as pmf;
pub use ecds_sim as sim;
pub use ecds_stats as stats;
pub use ecds_workload as workload;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use ecds_cluster::{
        generate_cluster, Cluster, ClusterGenConfig, CoreId, NodeSpec, PState, PStateLadder,
        PowerProfile,
    };
    pub use ecds_core::{
        build_scheduler, candidates_bit_eq, core_robustness, system_robustness, AssignmentEstimate,
        CandidateEvaluator, DeterministicMct, EnergyFilter, EvaluatedCandidate, Filter, FilterCtx,
        FilterVariant, Heuristic, HeuristicKind, KPercentBest, LightestLoad, MinimumExecutionTime,
        MinimumExpectedCompletionTime, OpportunisticLoadBalancing, RandomChoice, RobustnessFilter,
        Scheduler, ShortestQueue, ZetaMulPolicy,
    };
    pub use ecds_pmf::{Impulse, Pmf, ReductionPolicy, SeedDerive, Stream};
    pub use ecds_sim::{
        Assignment, Discipline, EnergyBreakdown, EngineCtx, Horizon, ImmediateDiscipline, Mapper,
        MapperStats, Retention, RetiredTally, Scenario, ServeConfig, ServeSession, ServeSummary,
        SimConfig, Simulation, SystemView, TaskOutcome, Telemetry, TrialResult,
    };
    pub use ecds_stats::{render_boxplots, BoxStats, MarkdownTable};
    pub use ecds_workload::{
        ArrivalSource, BurstPattern, BurstyArrivalSource, ExecTable, Task, TaskId, TaskTypeId,
        TraceArrivalSource, WorkloadConfig, WorkloadTrace,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_runs() {
        let scenario = Scenario::small_for_tests(1);
        let trace = scenario.trace(0);
        let mut mapper = build_scheduler(
            HeuristicKind::ShortestQueue,
            FilterVariant::None,
            &scenario,
            0,
        );
        let result = Simulation::new(&scenario, &trace).run(mapper.as_mut());
        assert_eq!(result.window(), trace.len());
    }
}
