//! Continuous-serving scheduler loop: streaming arrivals, bounded resident
//! memory, and bit-identical checkpoint/restore.
//!
//! The classic engine ([`Simulation::run_with`](crate::Simulation::run_with))
//! pre-schedules a whole trace and keeps every outcome until the end — fine
//! for a 1,000-task trial, impossible for an unbounded stream.
//! [`ServeSession`] runs the *same* event mechanics against an
//! [`ArrivalSource`]:
//!
//! * exactly one pending arrival is kept in the event queue; when it pops,
//!   the next task is pulled from the source *before* the discipline runs,
//! * settled tasks (completed, cancelled, or discarded) are retired from
//!   the windowed store into a running [`RetiredTally`], telemetry is
//!   folded, and energy logs are compacted, so resident memory is bounded
//!   by in-flight work under [`Retention::Bounded`],
//! * [`ServeSession::checkpoint`] serializes the complete simulation state
//!   (clock, event queue with insertion sequence numbers, core states with
//!   epochs, energy logs, counters, telemetry, plus the source's and
//!   discipline's own state) through `ecds-persist`;
//!   [`ServeSession::restore`] resumes bit-identically.
//!
//! # Equivalence with the classic engine
//!
//! With a finite [`TraceArrivalSource`](ecds_workload::TraceArrivalSource),
//! [`Horizon::Fixed`] and [`Retention::Full`], a serving run is
//! *bit-identical* to `run_with` on the same trace. The argument: event pop
//! order is governed by `(time, rank, seq)` with `seq` only breaking ties
//! within the same rank. Arrivals enter the queue in id order here just as
//! in the classic engine (the stream is id-ordered with nondecreasing
//! arrival times, and the next arrival is pushed before the current one is
//! processed), so equal-time arrivals keep their FIFO order; completions
//! are scheduled by the identical discipline-hook sequence, so their
//! relative seq order matches too; cross-rank ties never consult `seq`.
//! Identical pop order drives identical hook sequences, hence identical
//! f64 operation sequences, outcomes, telemetry, and RNG consumption.

use ecds_cluster::{Cluster, PState};
use ecds_persist::{open, seal, DecodeError, Decoder, Encoder};
use ecds_pmf::Time;
use ecds_workload::{ArrivalSource, ExecTable, Task, TaskId, TaskTypeId};

use crate::config::SimConfig;
use crate::discipline::{Discipline, EngineCtx};
use crate::energy::TransitionLog;
use crate::event::EventKind;
use crate::result::{TaskOutcome, TrialResult};
use crate::state::{CoreState, ExecutingTask, QueuedTask};
use crate::store::TaskStore;

pub use crate::store::RetiredTally;

/// Wire-format version of serving checkpoints (bumped on any layout
/// change; old versions are rejected, never reinterpreted).
pub const CHECKPOINT_VERSION: u32 = 1;

/// How the mapper-visible window is derived for a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// The window is a known constant — the classic-trial semantics. A
    /// finite source of exactly this many tasks reproduces
    /// `Simulation::run_with` bit-for-bit.
    Fixed(u64),
    /// The window rolls with the stream: `arrived + lookahead`, updated at
    /// every arrival. `T_left` stays pinned at `lookahead + 1`, modelling
    /// a server that always expects about `lookahead` more tasks.
    Rolling {
        /// Tasks the mapper should assume are still coming.
        lookahead: u64,
    },
}

/// What the session keeps in memory as the stream flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Keep every outcome and telemetry sample — required to build a full
    /// [`TrialResult`] via [`ServeSession::finish`].
    Full,
    /// Every `flush_every` events: retire settled tasks into the tally,
    /// fold telemetry samples, and compact energy logs. Resident memory is
    /// then bounded by in-flight work. Finish with
    /// [`ServeSession::finish_summary`].
    Bounded {
        /// Events between retire/fold/compact sweeps.
        flush_every: u64,
    },
}

/// Configuration of a serving session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Window semantics.
    pub horizon: Horizon,
    /// Memory policy.
    pub retention: Retention,
    /// Stop pulling from the source after this many arrivals (`None`:
    /// pull until the source is exhausted — mandatory cap for infinite
    /// sources).
    pub max_arrivals: Option<u64>,
}

impl ServeConfig {
    /// Classic-equivalent configuration for a finite trace of `window`
    /// tasks: fixed horizon, full retention, no cap.
    pub fn finite(window: usize) -> Self {
        Self {
            horizon: Horizon::Fixed(window as u64),
            retention: Retention::Full,
            max_arrivals: None,
        }
    }

    /// Bounded-memory configuration for an endless stream.
    pub fn streaming(lookahead: u64, flush_every: u64, max_arrivals: u64) -> Self {
        Self {
            horizon: Horizon::Rolling { lookahead },
            retention: Retention::Bounded { flush_every },
            max_arrivals: Some(max_arrivals),
        }
    }
}

pub use crate::telemetry::TelemetryFold;

/// The summary a bounded-retention session reports instead of a
/// per-task [`TrialResult`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSummary {
    /// Retired-task counts.
    pub tally: RetiredTally,
    /// Folded telemetry.
    pub fold: TelemetryFold,
    /// Total wall energy over the served span (Eq. 2, bit-identical to an
    /// uncompacted run).
    pub total_energy: f64,
    /// Time of the last processed event.
    pub makespan: Time,
    /// Events processed.
    pub events: u64,
    /// Arrivals pulled from the source.
    pub arrivals: u64,
}

/// A long-running scheduler session over an [`ArrivalSource`].
///
/// The source and discipline are passed to each method rather than owned,
/// so callers keep them inspectable between steps (and can checkpoint all
/// three together).
#[derive(Debug)]
pub struct ServeSession<'a> {
    ctx: EngineCtx<'a>,
    serve_cfg: ServeConfig,
    end_time: Time,
    events_processed: u64,
    arrivals_pulled: u64,
    done_pulling: bool,
    tally: RetiredTally,
}

impl<'a> ServeSession<'a> {
    /// Opens a session: primes the queue with the stream's first arrival
    /// and gives the discipline its trial-start hook.
    ///
    /// # Panics
    ///
    /// Panics when [`Retention::Bounded`] is combined with an energy
    /// budget (the exhaustion instant needs the full transition history
    /// that compaction folds away) or a zero `flush_every`.
    pub fn new(
        cluster: &'a Cluster,
        table: &'a ExecTable,
        cfg: &'a SimConfig,
        serve_cfg: ServeConfig,
        source: &mut dyn ArrivalSource,
        discipline: &mut dyn Discipline,
    ) -> Self {
        if let Retention::Bounded { flush_every } = serve_cfg.retention {
            assert!(flush_every > 0, "flush_every must be positive");
            assert!(
                cfg.energy_budget.is_none(),
                "bounded retention compacts energy logs and cannot honour an energy budget"
            );
        }
        let mut ctx = EngineCtx::new_streaming(cluster, table, cfg);
        ctx.window = match serve_cfg.horizon {
            Horizon::Fixed(n) => n as usize,
            Horizon::Rolling { lookahead } => lookahead as usize,
        };
        if matches!(serve_cfg.retention, Retention::Bounded { .. }) {
            // Stream samples straight into the fold: the per-trial
            // telemetry vectors stay empty for the whole session.
            ctx.fold = Some(TelemetryFold::default());
        }
        let mut session = Self {
            ctx,
            serve_cfg,
            end_time: 0.0,
            events_processed: 0,
            arrivals_pulled: 0,
            done_pulling: false,
            tally: RetiredTally::default(),
        };
        session.pull_next(source);
        discipline.on_trial_start(&mut session.ctx);
        session
    }

    /// Pulls the next task off the stream into the store and event queue.
    /// Keeps the one-pending-arrival invariant; a `None` from the source
    /// (or hitting `max_arrivals`) ends pulling permanently.
    fn pull_next(&mut self, source: &mut dyn ArrivalSource) {
        if self.done_pulling {
            return;
        }
        if let Some(max) = self.serve_cfg.max_arrivals {
            if self.arrivals_pulled >= max {
                self.done_pulling = true;
                return;
            }
        }
        match source.next_task() {
            None => self.done_pulling = true,
            Some(task) => {
                assert!(
                    task.arrival >= self.ctx.now,
                    "arrival stream must be nondecreasing in time"
                );
                self.ctx.store.push(task); // asserts dense id order
                self.ctx
                    .queue
                    .push(task.arrival, EventKind::Arrival(task.id));
                self.arrivals_pulled += 1;
            }
        }
    }

    /// Processes one event; returns `false` once the queue has drained
    /// (stream exhausted or capped, and all work completed).
    pub fn step(
        &mut self,
        source: &mut dyn ArrivalSource,
        discipline: &mut dyn Discipline,
    ) -> bool {
        let Some(event) = self.ctx.queue.pop() else {
            return false;
        };
        self.events_processed += 1;
        self.end_time = self.end_time.max(event.time);
        self.ctx.now = event.time;
        match event.kind {
            EventKind::Arrival(task_id) => {
                // Pull the successor before processing: equal-time arrivals
                // must already be queued when completions scheduled by this
                // hook land, preserving the classic engine's pop order.
                self.pull_next(source);
                self.ctx.arrived += 1;
                if let Horizon::Rolling { lookahead } = self.serve_cfg.horizon {
                    self.ctx.window = self.ctx.arrived + lookahead as usize;
                }
                debug_assert_eq!(
                    self.ctx.task(task_id).id,
                    task_id,
                    "stream must be id-ordered"
                );
                discipline.on_arrival(&mut self.ctx, task_id);
            }
            EventKind::Completion { core, task } => {
                self.ctx.store.outcome_mut(task).completion = Some(event.time);
                discipline.on_completion(&mut self.ctx, core, task);
            }
        }
        discipline.after_event(&mut self.ctx);
        if let Retention::Bounded { flush_every } = self.serve_cfg.retention {
            if self.events_processed % flush_every == 0 {
                self.retire_and_flush(discipline.holds_unassigned_tasks());
            }
        }
        true
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self, source: &mut dyn ArrivalSource, discipline: &mut dyn Discipline) {
        while self.step(source, discipline) {}
    }

    /// Runs at most `n` events; returns how many were processed (fewer
    /// only when the queue drained).
    pub fn run_events(
        &mut self,
        n: u64,
        source: &mut dyn ArrivalSource,
        discipline: &mut dyn Discipline,
    ) -> u64 {
        let mut done = 0;
        while done < n && self.step(source, discipline) {
            done += 1;
        }
        done
    }

    fn retire_and_flush(&mut self, holds_unassigned: bool) {
        self.ctx
            .store
            .retire_settled(self.ctx.arrived, holds_unassigned, &mut self.tally);
        // Samples stream directly into the fold nowadays; absorbing here
        // only drains whatever a non-folding path buffered.
        let ctx = &mut self.ctx;
        if let Some(fold) = &mut ctx.fold {
            fold.absorb(&mut ctx.telemetry);
        }
        ctx.accountant.compact(ctx.cluster);
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.ctx.now
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Arrivals pulled from the source so far.
    pub fn arrivals_pulled(&self) -> u64 {
        self.arrivals_pulled
    }

    /// Tasks currently resident in the windowed store.
    pub fn resident_tasks(&self) -> usize {
        self.ctx.store.resident()
    }

    /// The running retired-task tally (empty under [`Retention::Full`]).
    pub fn tally(&self) -> &RetiredTally {
        &self.tally
    }

    /// Finalizes a full-retention session into a classic [`TrialResult`]
    /// — bit-identical to `Simulation::run_with` for a finite trace.
    ///
    /// # Panics
    ///
    /// Panics under bounded retention, or before the event queue drained.
    pub fn finish(mut self, discipline: &mut dyn Discipline) -> TrialResult {
        assert!(
            matches!(self.serve_cfg.retention, Retention::Full),
            "finish() needs full retention; use finish_summary()"
        );
        assert!(
            self.ctx.queue.is_empty(),
            "finish() before the event stream drained"
        );
        self.ctx.accountant.finalize(self.end_time);
        let mut telemetry = self.ctx.telemetry;
        telemetry.mapper = discipline.stats();
        telemetry.power = self.ctx.accountant.power_timeline(self.ctx.cluster);
        let total_energy = self.ctx.accountant.total_energy(self.ctx.cluster);
        let exhausted_at = self.ctx.cfg.energy_budget.and_then(|budget| {
            self.ctx
                .accountant
                .exhaustion_time(self.ctx.cluster, budget)
        });
        TrialResult::new(
            self.ctx.store.into_outcomes(),
            total_energy,
            exhausted_at,
            self.end_time,
            telemetry,
        )
    }

    /// Finalizes a bounded-retention session: one last retire/fold sweep,
    /// then the streaming summary.
    pub fn finish_summary(mut self, discipline: &dyn Discipline) -> ServeSummary {
        self.retire_and_flush(discipline.holds_unassigned_tasks());
        self.ctx.accountant.finalize(self.end_time);
        let total_energy = self.ctx.accountant.total_energy(self.ctx.cluster);
        let fold = match self.ctx.fold {
            Some(fold) => fold,
            // Full retention buffered every sample; fold them now.
            None => {
                let mut fold = TelemetryFold::default();
                fold.absorb(&mut self.ctx.telemetry);
                fold
            }
        };
        ServeSummary {
            tally: self.tally,
            fold,
            total_energy,
            makespan: self.end_time,
            events: self.events_processed,
            arrivals: self.arrivals_pulled,
        }
    }

    // ---- checkpoint / restore -------------------------------------------

    /// Serializes the complete session state — clock, queue, cores, energy
    /// logs, counters, telemetry, plus `source` and `discipline` state —
    /// into a sealed, versioned, checksummed buffer. Call only at an event
    /// boundary (between [`ServeSession::step`] calls).
    pub fn checkpoint(&self, source: &dyn ArrivalSource, discipline: &dyn Discipline) -> Vec<u8> {
        let mut enc = Encoder::new();
        // Config digests, verified on restore.
        encode_sim_config(&mut enc, self.ctx.cfg);
        encode_serve_config(&mut enc, &self.serve_cfg);
        // Scalars.
        enc.put_f64(self.ctx.now);
        enc.put_f64(self.end_time);
        enc.put_u64(self.ctx.arrived as u64);
        enc.put_u64(self.ctx.window as u64);
        enc.put_u64(self.events_processed);
        enc.put_u64(self.arrivals_pulled);
        enc.put_bool(self.done_pulling);
        // Tally and fold.
        enc.put_u64(self.tally.retired);
        enc.put_u64(self.tally.completed);
        enc.put_u64(self.tally.on_time);
        enc.put_u64(self.tally.cancelled);
        enc.put_u64(self.tally.discarded);
        let fold = self.ctx.fold.unwrap_or_default();
        enc.put_u64(fold.samples);
        enc.put_f64(fold.sum_queue_depth);
        enc.put_f64(fold.peak_queue_depth);
        enc.put_u64(fold.max_busy);
        // Windowed store.
        enc.put_u64(self.ctx.store.base() as u64);
        enc.put_u64(self.ctx.store.resident() as u64);
        for (task, outcome) in self
            .ctx
            .store
            .resident_tasks()
            .iter()
            .zip(self.ctx.store.resident_outcomes())
        {
            encode_task(&mut enc, task);
            encode_outcome(&mut enc, outcome);
        }
        // Cores, with epochs.
        enc.put_u64(self.ctx.cores.len() as u64);
        for core in &self.ctx.cores {
            match core.executing() {
                None => enc.put_bool(false),
                Some(exec) => {
                    enc.put_bool(true);
                    encode_executing(&mut enc, exec);
                }
            }
            enc.put_u64(core.queued().len() as u64);
            for queued in core.queued() {
                encode_queued(&mut enc, queued);
            }
            enc.put_u64(core.epoch());
        }
        // Energy logs (one per core).
        for i in 0..self.ctx.cores.len() {
            let log = self.ctx.accountant.log(i);
            enc.put_f64(log.folded());
            enc.put_u64(log.entries().len() as u64);
            for &(time, state) in log.entries() {
                enc.put_f64(time);
                enc.put_u8(state.index() as u8);
            }
            log.end_time().encode_into(&mut enc);
        }
        // Event queue, in pop order with preserved sequence numbers.
        enc.put_u64(self.ctx.queue.next_seq());
        let events = self.ctx.queue.snapshot();
        enc.put_u64(events.len() as u64);
        for (time, kind, seq) in events {
            enc.put_f64(time);
            encode_event_kind(&mut enc, kind);
            enc.put_u64(seq);
        }
        // Unflushed telemetry buffers.
        enc.put_u64(self.ctx.telemetry.queue_depth.len() as u64);
        for &(t, d) in &self.ctx.telemetry.queue_depth {
            enc.put_f64(t);
            enc.put_f64(d);
        }
        enc.put_u64(self.ctx.telemetry.busy_cores.len() as u64);
        for &(t, b) in &self.ctx.telemetry.busy_cores {
            enc.put_f64(t);
            enc.put_u64(b as u64);
        }
        // Collaborator state.
        source.save_state(&mut enc);
        discipline.save_state(&mut enc);
        seal(CHECKPOINT_VERSION, enc.as_slice())
    }

    /// Rebuilds a session from a [`checkpoint`](ServeSession::checkpoint),
    /// restoring `source` and `discipline` in place. The passed `cfg` must
    /// match the checkpointed configuration digest. The discipline's
    /// `on_trial_start` is *not* invoked — the decoded state is the
    /// mid-trial state, and resuming produces bit-identical behaviour to
    /// the uninterrupted run.
    ///
    /// Corrupted, truncated, or version-mismatched buffers yield a typed
    /// [`DecodeError`]; this path never panics on bad input.
    pub fn restore(
        cluster: &'a Cluster,
        table: &'a ExecTable,
        cfg: &'a SimConfig,
        bytes: &[u8],
        source: &mut dyn ArrivalSource,
        discipline: &mut dyn Discipline,
    ) -> Result<Self, DecodeError> {
        let body = open(bytes, CHECKPOINT_VERSION)?;
        let mut dec = Decoder::new(body);
        let saved_cfg = decode_sim_config(&mut dec)?;
        if saved_cfg != *cfg {
            return Err(DecodeError::Corrupt("checkpoint simulator config mismatch"));
        }
        let serve_cfg = decode_serve_config(&mut dec)?;
        // Scalars.
        let now = decode_finite(&mut dec)?;
        let end_time = decode_finite(&mut dec)?;
        let arrived = dec.u64()? as usize;
        let window = dec.u64()? as usize;
        let events_processed = dec.u64()?;
        let arrivals_pulled = dec.u64()?;
        let done_pulling = dec.bool()?;
        let tally = RetiredTally {
            retired: dec.u64()?,
            completed: dec.u64()?,
            on_time: dec.u64()?,
            cancelled: dec.u64()?,
            discarded: dec.u64()?,
        };
        let fold = TelemetryFold {
            samples: dec.u64()?,
            sum_queue_depth: dec.f64()?,
            peak_queue_depth: dec.f64()?,
            max_busy: dec.u64()?,
        };
        // Windowed store.
        let base = dec.u64()? as usize;
        let resident = checked_len(&mut dec, 41)?;
        let mut tasks = Vec::with_capacity(resident);
        let mut outcomes = Vec::with_capacity(resident);
        for i in 0..resident {
            let task = decode_task(&mut dec)?;
            if task.id.0 != base + i {
                return Err(DecodeError::Corrupt("store tasks not dense and id-ordered"));
            }
            outcomes.push(decode_outcome(&mut dec, &task)?);
            tasks.push(task);
        }
        if arrived > base + resident {
            return Err(DecodeError::Corrupt("arrived count exceeds streamed tasks"));
        }
        let store = TaskStore::from_checkpoint_parts(base, tasks, outcomes);
        // Cores.
        let num_cores = dec.u64()? as usize;
        if num_cores != cluster.total_cores() {
            return Err(DecodeError::Corrupt(
                "core count does not match the cluster",
            ));
        }
        let mut cores = Vec::with_capacity(num_cores);
        for _ in 0..num_cores {
            let executing = if dec.bool()? {
                Some(decode_executing(&mut dec)?)
            } else {
                None
            };
            let queued_len = checked_len(&mut dec, 25)?;
            let mut queued = std::collections::VecDeque::with_capacity(queued_len);
            for _ in 0..queued_len {
                queued.push_back(decode_queued(&mut dec)?);
            }
            let epoch = dec.u64()?;
            cores.push(CoreState::from_checkpoint_parts(executing, queued, epoch));
        }
        // Energy logs.
        let mut logs = Vec::with_capacity(num_cores);
        for _ in 0..num_cores {
            let folded = dec.f64()?;
            let entry_len = checked_len(&mut dec, 9)?;
            if entry_len == 0 {
                return Err(DecodeError::Corrupt("transition log must not be empty"));
            }
            let mut entries = Vec::with_capacity(entry_len);
            let mut prev = f64::NEG_INFINITY;
            for _ in 0..entry_len {
                let time = decode_finite(&mut dec)?;
                if time < prev {
                    return Err(DecodeError::Corrupt("transition log out of time order"));
                }
                prev = time;
                entries.push((time, decode_pstate(&mut dec)?));
            }
            let end = decode_opt_f64(&mut dec)?;
            logs.push(TransitionLog::from_checkpoint_parts(folded, entries, end));
        }
        // Event queue.
        let next_seq = dec.u64()?;
        let event_len = checked_len(&mut dec, 18)?;
        let mut events = Vec::with_capacity(event_len);
        for _ in 0..event_len {
            let time = decode_finite(&mut dec)?;
            let kind = decode_event_kind(&mut dec)?;
            let seq = dec.u64()?;
            if seq >= next_seq {
                return Err(DecodeError::Corrupt(
                    "event sequence beyond the queue counter",
                ));
            }
            events.push((time, kind, seq));
        }
        // Telemetry buffers.
        let depth_len = checked_len(&mut dec, 16)?;
        let mut queue_depth = Vec::with_capacity(depth_len);
        for _ in 0..depth_len {
            queue_depth.push((dec.f64()?, dec.f64()?));
        }
        let busy_len = checked_len(&mut dec, 16)?;
        let mut busy_cores = Vec::with_capacity(busy_len);
        for _ in 0..busy_len {
            busy_cores.push((dec.f64()?, dec.u64()? as usize));
        }
        // Collaborator state, then the trailing-bytes check.
        source.restore_state(&mut dec)?;
        discipline.restore_state(&mut dec)?;
        dec.finish()?;

        let telemetry = crate::telemetry::Telemetry {
            queue_depth,
            busy_cores,
            power: Vec::new(),
            mapper: crate::telemetry::MapperStats::default(),
        };
        // Derived engine state is rebuilt, not decoded: the load
        // aggregates come from one scan of the restored cores, and the
        // dirty-core mailbox restarts empty (consumers full-scan once).
        let depth_total = cores.iter().map(CoreState::depth).sum();
        let busy = cores.iter().filter(|c| !c.is_idle()).count();
        let ctx = EngineCtx {
            cluster,
            table,
            cfg,
            store,
            window,
            cores,
            accountant: crate::energy::EnergyAccountant::from_logs(logs),
            queue: crate::event::EventQueue::from_parts(next_seq, events),
            telemetry,
            arrived,
            now,
            dirty: crate::dirty::DirtyCores::default(),
            depth_total,
            busy,
            fold: match serve_cfg.retention {
                Retention::Bounded { .. } => Some(fold),
                Retention::Full => None,
            },
        };
        Ok(Self {
            ctx,
            serve_cfg,
            end_time,
            events_processed,
            arrivals_pulled,
            done_pulling,
            tally,
        })
    }
}

// ---- field codecs -------------------------------------------------------

/// Reads a vector length and rejects lengths that cannot possibly fit the
/// remaining buffer (`min_elem` = minimum encoded bytes per element), so a
/// corrupted count fails fast instead of attempting a huge allocation.
fn checked_len(dec: &mut Decoder<'_>, min_elem: u64) -> Result<usize, DecodeError> {
    let n = dec.u64()?;
    if n > dec.remaining() / min_elem {
        return Err(DecodeError::Truncated);
    }
    Ok(n as usize)
}

fn decode_finite(dec: &mut Decoder<'_>) -> Result<f64, DecodeError> {
    let v = dec.f64()?;
    if !v.is_finite() {
        return Err(DecodeError::Corrupt("expected a finite f64"));
    }
    Ok(v)
}

fn decode_opt_f64(dec: &mut Decoder<'_>) -> Result<Option<f64>, DecodeError> {
    Ok(if dec.bool()? { Some(dec.f64()?) } else { None })
}

/// Extension trait shim: encode an `Option<f64>` with a presence flag.
trait EncodeOptF64 {
    fn encode_into(&self, enc: &mut Encoder);
}

impl EncodeOptF64 for Option<f64> {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_bool(false),
            Some(v) => {
                enc.put_bool(true);
                enc.put_f64(*v);
            }
        }
    }
}

fn decode_pstate(dec: &mut Decoder<'_>) -> Result<PState, DecodeError> {
    let idx = dec.u8()?;
    if idx >= 5 {
        return Err(DecodeError::Corrupt("p-state index out of range"));
    }
    Ok(PState::from_index(idx as usize))
}

fn encode_sim_config(enc: &mut Encoder, cfg: &SimConfig) {
    enc.put_u8(cfg.initial_pstate.index() as u8);
    match cfg.energy_budget {
        None => enc.put_bool(false),
        Some(b) => {
            enc.put_bool(true);
            enc.put_f64(b);
        }
    }
    match cfg.idle_downshift {
        None => enc.put_bool(false),
        Some(s) => {
            enc.put_bool(true);
            enc.put_u8(s.index() as u8);
        }
    }
    enc.put_bool(cfg.cancel_overdue);
}

fn decode_sim_config(dec: &mut Decoder<'_>) -> Result<SimConfig, DecodeError> {
    let initial_pstate = decode_pstate(dec)?;
    let energy_budget = decode_opt_f64(dec)?;
    let idle_downshift = if dec.bool()? {
        Some(decode_pstate(dec)?)
    } else {
        None
    };
    let cancel_overdue = dec.bool()?;
    Ok(SimConfig {
        initial_pstate,
        energy_budget,
        idle_downshift,
        cancel_overdue,
    })
}

fn encode_serve_config(enc: &mut Encoder, cfg: &ServeConfig) {
    match cfg.horizon {
        Horizon::Fixed(n) => {
            enc.put_u8(0);
            enc.put_u64(n);
        }
        Horizon::Rolling { lookahead } => {
            enc.put_u8(1);
            enc.put_u64(lookahead);
        }
    }
    match cfg.retention {
        Retention::Full => {
            enc.put_u8(0);
            enc.put_u64(0);
        }
        Retention::Bounded { flush_every } => {
            enc.put_u8(1);
            enc.put_u64(flush_every);
        }
    }
    match cfg.max_arrivals {
        None => enc.put_bool(false),
        Some(n) => {
            enc.put_bool(true);
            enc.put_u64(n);
        }
    }
}

fn decode_serve_config(dec: &mut Decoder<'_>) -> Result<ServeConfig, DecodeError> {
    let horizon = match dec.u8()? {
        0 => Horizon::Fixed(dec.u64()?),
        1 => Horizon::Rolling {
            lookahead: dec.u64()?,
        },
        _ => return Err(DecodeError::Corrupt("unknown horizon tag")),
    };
    let retention = match dec.u8()? {
        0 => {
            let _ = dec.u64()?;
            Retention::Full
        }
        1 => {
            let flush_every = dec.u64()?;
            if flush_every == 0 {
                return Err(DecodeError::Corrupt("flush_every must be positive"));
            }
            Retention::Bounded { flush_every }
        }
        _ => return Err(DecodeError::Corrupt("unknown retention tag")),
    };
    let max_arrivals = if dec.bool()? { Some(dec.u64()?) } else { None };
    Ok(ServeConfig {
        horizon,
        retention,
        max_arrivals,
    })
}

fn encode_task(enc: &mut Encoder, task: &Task) {
    enc.put_u64(task.id.0 as u64);
    enc.put_u64(task.type_id.0 as u64);
    enc.put_f64(task.arrival);
    enc.put_f64(task.deadline);
    enc.put_f64(task.quantile);
}

fn decode_task(dec: &mut Decoder<'_>) -> Result<Task, DecodeError> {
    Ok(Task {
        id: TaskId(dec.u64()? as usize),
        type_id: TaskTypeId(dec.u64()? as usize),
        arrival: decode_finite(dec)?,
        deadline: decode_finite(dec)?,
        quantile: dec.f64()?,
    })
}

fn encode_outcome(enc: &mut Encoder, outcome: &TaskOutcome) {
    match outcome.assignment {
        None => enc.put_bool(false),
        Some((core, pstate)) => {
            enc.put_bool(true);
            enc.put_u64(core as u64);
            enc.put_u8(pstate.index() as u8);
        }
    }
    outcome.start.encode_into(enc);
    outcome.completion.encode_into(enc);
    enc.put_bool(outcome.cancelled);
}

/// Decodes an outcome; the identifying fields are rebuilt from the
/// already-decoded task rather than stored twice.
fn decode_outcome(dec: &mut Decoder<'_>, task: &Task) -> Result<TaskOutcome, DecodeError> {
    let assignment = if dec.bool()? {
        Some((dec.u64()? as usize, decode_pstate(dec)?))
    } else {
        None
    };
    Ok(TaskOutcome {
        task: task.id,
        type_id: task.type_id,
        arrival: task.arrival,
        deadline: task.deadline,
        assignment,
        start: decode_opt_f64(dec)?,
        completion: decode_opt_f64(dec)?,
        cancelled: dec.bool()?,
    })
}

fn encode_executing(enc: &mut Encoder, exec: &ExecutingTask) {
    enc.put_u64(exec.task.0 as u64);
    enc.put_u64(exec.type_id.0 as u64);
    enc.put_u8(exec.pstate.index() as u8);
    enc.put_f64(exec.start);
    enc.put_f64(exec.deadline);
}

fn decode_executing(dec: &mut Decoder<'_>) -> Result<ExecutingTask, DecodeError> {
    Ok(ExecutingTask {
        task: TaskId(dec.u64()? as usize),
        type_id: TaskTypeId(dec.u64()? as usize),
        pstate: decode_pstate(dec)?,
        start: decode_finite(dec)?,
        deadline: decode_finite(dec)?,
    })
}

fn encode_queued(enc: &mut Encoder, queued: &QueuedTask) {
    enc.put_u64(queued.task.0 as u64);
    enc.put_u64(queued.type_id.0 as u64);
    enc.put_u8(queued.pstate.index() as u8);
    enc.put_f64(queued.deadline);
}

fn decode_queued(dec: &mut Decoder<'_>) -> Result<QueuedTask, DecodeError> {
    Ok(QueuedTask {
        task: TaskId(dec.u64()? as usize),
        type_id: TaskTypeId(dec.u64()? as usize),
        pstate: decode_pstate(dec)?,
        deadline: decode_finite(dec)?,
    })
}

fn encode_event_kind(enc: &mut Encoder, kind: EventKind) {
    match kind {
        EventKind::Arrival(task) => {
            enc.put_u8(0);
            enc.put_u64(task.0 as u64);
            enc.put_u64(0);
        }
        EventKind::Completion { core, task } => {
            enc.put_u8(1);
            enc.put_u64(core as u64);
            enc.put_u64(task.0 as u64);
        }
    }
}

fn decode_event_kind(dec: &mut Decoder<'_>) -> Result<EventKind, DecodeError> {
    match dec.u8()? {
        0 => {
            let task = TaskId(dec.u64()? as usize);
            let _ = dec.u64()?;
            Ok(EventKind::Arrival(task))
        }
        1 => Ok(EventKind::Completion {
            core: dec.u64()? as usize,
            task: TaskId(dec.u64()? as usize),
        }),
        _ => Err(DecodeError::Corrupt("unknown event tag")),
    }
}
