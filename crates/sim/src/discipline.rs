//! The commitment-discipline seam of the unified engine.
//!
//! One event-driven core ([`Simulation::run_with`](crate::Simulation::run_with))
//! owns everything both simulation modes share — the deterministic
//! [`EventQueue`], per-core run state, the
//! Eq. 1–2 energy accountant, per-task outcomes, telemetry, and the
//! exhaustion cutoff. What *differs* between modes is only **when mapped
//! work is committed to a core**, and that policy is factored into the
//! [`Discipline`] trait:
//!
//! * [`ImmediateDiscipline`] — the paper's model: every task is committed
//!   to a core FIFO (and a P-state) at its arrival instant by a
//!   [`Mapper`], and never reassigned.
//! * `BatchDiscipline` (in `ecds-ext`) — the future-work relaxation:
//!   arriving tasks wait in a central pending bag and are committed only
//!   when a core is actually free.
//!
//! Disciplines never touch engine state directly; they act through
//! [`EngineCtx`], whose mutators encapsulate the shared mechanics (start a
//! task = record the P-state transition, mark the core busy, log the start,
//! schedule the completion event). This is what makes engine fixes land
//! once for every mode.

use ecds_cluster::Cluster;
use ecds_persist::{DecodeError, Decoder, Encoder};
use ecds_pmf::Time;
use ecds_workload::{ExecTable, Task, TaskId};

use crate::config::SimConfig;
use crate::dirty::DirtyCores;
use crate::energy::EnergyAccountant;
use crate::event::{EventKind, EventQueue};
use crate::result::TaskOutcome;
use crate::state::{CoreState, ExecutingTask, QueuedTask};
use crate::store::TaskStore;
use crate::telemetry::{MapperStats, Telemetry, TelemetryFold};
use crate::view::{Mapper, SystemView};

/// A commitment discipline: the pluggable half of the unified engine.
///
/// The engine pops events off the deterministic queue (completions before
/// arrivals at equal times, then insertion order) and calls the matching
/// hook; the discipline decides what work to commit where, using
/// [`EngineCtx`]'s mutators. Bookkeeping that is identical across
/// disciplines (recording completion outcomes, bumping `arrived`, energy
/// finalization) stays in the engine.
pub trait Discipline {
    /// Invoked once before the first event of a trial, after the engine
    /// state is initialized — reset ledgers and per-trial state here.
    fn on_trial_start(&mut self, _ctx: &mut EngineCtx<'_>) {}

    /// A task arrived at `ctx.now()`. The engine has already counted it in
    /// [`EngineCtx::arrived`].
    fn on_arrival(&mut self, ctx: &mut EngineCtx<'_>, task: TaskId);

    /// `task` finished on `core` at `ctx.now()`. The engine has already
    /// recorded the completion outcome; the discipline must release the
    /// core (via [`EngineCtx::complete_core`]) and decide what runs next.
    fn on_completion(&mut self, ctx: &mut EngineCtx<'_>, core: usize, task: TaskId);

    /// Invoked after *every* event (arrival or completion) — the batch
    /// mapping event hook. Default: no-op (immediate mode commits inside
    /// [`Discipline::on_arrival`]).
    fn after_event(&mut self, _ctx: &mut EngineCtx<'_>) {}

    /// Structured instrumentation for the finished trial, copied into
    /// [`Telemetry`] by the engine. Default: all zeros.
    fn stats(&self) -> MapperStats {
        MapperStats::default()
    }

    /// `true` when the discipline may still assign a task that has arrived
    /// but holds no assignment yet (batch mode's pending bag). The serving
    /// loop must not retire such tasks as discarded. Default: `false`
    /// (immediate mode commits or discards at arrival).
    fn holds_unassigned_tasks(&self) -> bool {
        false
    }

    /// Serializes the discipline's mutable mid-trial state (pending bags,
    /// ledgers, and the wrapped mapper's state) into a checkpoint.
    /// Default: no-op for stateless disciplines. Encodings must be
    /// fixed-width and platform-independent.
    fn save_state(&self, _enc: &mut Encoder) {}

    /// Restores state written by [`Discipline::save_state`]. Default:
    /// no-op. A restored discipline never sees `on_trial_start` — the
    /// decoded state *is* the mid-trial state.
    fn restore_state(&mut self, _dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        Ok(())
    }
}

/// Mutable engine state handed to a [`Discipline`] at each hook.
///
/// Accessors expose the shared world (cluster, pmf table, core states,
/// clock, outcomes); mutators encapsulate the mechanics both modes share,
/// keeping the energy accounting and event scheduling in exactly one
/// place.
#[derive(Debug)]
pub struct EngineCtx<'a> {
    pub(crate) cluster: &'a Cluster,
    pub(crate) table: &'a ExecTable,
    pub(crate) cfg: &'a SimConfig,
    pub(crate) store: TaskStore,
    pub(crate) window: usize,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) accountant: EnergyAccountant,
    pub(crate) queue: EventQueue,
    pub(crate) telemetry: Telemetry,
    pub(crate) arrived: usize,
    pub(crate) now: Time,
    /// Mailbox of recently mutated cores, consumed by shard-indexed
    /// evaluators through [`SystemView::dirty_cores`]. Transient runtime
    /// state — never checkpointed; a restored engine starts empty.
    pub(crate) dirty: DirtyCores,
    /// Running Σ `CoreState::depth()` over all cores — maintained by the
    /// mutators below so [`EngineCtx::avg_queue_depth`] is O(1).
    pub(crate) depth_total: usize,
    /// Running count of non-idle cores — the telemetry busy-core sample.
    pub(crate) busy: usize,
    /// Streaming telemetry sink. When present, samples fold directly into
    /// the accumulator instead of growing per-trial vectors (the bounded-
    /// retention serve path); when absent, samples append to
    /// [`Telemetry`] exactly as before.
    pub(crate) fold: Option<TelemetryFold>,
}

impl<'a> EngineCtx<'a> {
    /// Builds the initial engine state for one trial: idle cores in the
    /// configured initial P-state, blank outcomes, and every arrival
    /// pre-scheduled in task-id order.
    pub(crate) fn new(
        cluster: &'a Cluster,
        table: &'a ExecTable,
        cfg: &'a SimConfig,
        tasks: &[Task],
    ) -> Self {
        let mut ctx = Self::new_streaming(cluster, table, cfg);
        ctx.window = tasks.len();
        ctx.store = TaskStore::from_tasks(tasks);
        ctx.queue.reserve(tasks.len());
        for task in tasks {
            ctx.queue.push(task.arrival, EventKind::Arrival(task.id));
        }
        ctx
    }

    /// Builds empty engine state for the continuous-serving loop: no tasks
    /// yet, an empty event queue, and a zero window (the serving loop sets
    /// the window from its horizon before the first mapping event).
    pub(crate) fn new_streaming(
        cluster: &'a Cluster,
        table: &'a ExecTable,
        cfg: &'a SimConfig,
    ) -> Self {
        Self {
            cluster,
            table,
            cfg,
            store: TaskStore::new(),
            window: 0,
            cores: vec![CoreState::new(); cluster.total_cores()],
            accountant: EnergyAccountant::new(cluster, 0.0, cfg.initial_pstate),
            queue: EventQueue::new(),
            telemetry: Telemetry::new(),
            arrived: 0,
            now: 0.0,
            dirty: DirtyCores::default(),
            depth_total: 0,
            busy: 0,
            fold: None,
        }
    }

    /// Current simulated time (the time of the event being processed).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The cluster model.
    #[inline]
    pub fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    /// The execution-time pmf table.
    #[inline]
    pub fn table(&self) -> &'a ExecTable {
        self.table
    }

    /// The simulator configuration (budget, idle downshift, cancellation).
    #[inline]
    pub fn config(&self) -> &'a SimConfig {
        self.cfg
    }

    /// One resident task by id.
    ///
    /// # Panics
    ///
    /// Panics when `id` was retired by the serving loop or has not been
    /// streamed in yet (never happens for ids the engine hands to
    /// discipline hooks).
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        self.store.task(id)
    }

    /// Tasks that have arrived so far, including the one being processed.
    #[inline]
    pub fn arrived(&self) -> usize {
        self.arrived
    }

    /// The trial window size: total tasks for a classic trial, the
    /// serving horizon (arrived plus lookahead) for a rolling stream.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total cores in the cluster.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// All core run states, flat-indexed.
    #[inline]
    pub fn core_states(&self) -> &[CoreState] {
        &self.cores
    }

    /// Resident per-task outcomes accumulated so far (all outcomes for a
    /// classic trial; the unretired suffix in a serving session).
    #[inline]
    pub fn outcomes(&self) -> &[TaskOutcome] {
        self.store.resident_outcomes()
    }

    /// Instantaneous average queue depth over all cores (executing tasks
    /// count) — what immediate mode samples into telemetry. O(1): the
    /// integer Σ depth is maintained incrementally by the mutators, and
    /// the exact integer sum divides to the same bits as a fresh scan.
    pub fn avg_queue_depth(&self) -> f64 {
        self.depth_total as f64 / self.cores.len() as f64
    }

    /// A read-only [`SystemView`] of the current state, as handed to a
    /// [`Mapper`] at a mapping event. Carries the dirty-core mailbox and
    /// the running depth aggregate so shard-indexed consumers stay
    /// incremental.
    pub fn system_view(&self) -> SystemView<'_> {
        SystemView::new(
            self.cluster,
            self.table,
            &self.cores,
            self.now,
            self.arrived,
            self.window,
        )
        .with_dirty(&self.dirty)
        .with_depth_total(self.depth_total)
    }

    /// Records one telemetry sample at the current time: `queue_depth` is
    /// discipline-defined (FIFO depth in immediate mode, normalized bag
    /// depth in batch mode); the busy-core count comes from the running
    /// aggregate. Routed to the streaming fold when one is installed
    /// (bounded retention), to the per-trial vectors otherwise.
    pub fn sample_telemetry(&mut self, queue_depth: f64) {
        let busy = self.busy;
        match &mut self.fold {
            Some(fold) => fold.record(queue_depth, busy),
            None => self.telemetry.sample(self.now, queue_depth, busy),
        }
    }

    /// Records the chosen `(core, pstate)` assignment for `task`.
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn record_assignment(&mut self, task: TaskId, core: usize, pstate: ecds_cluster::PState) {
        assert!(
            core < self.cores.len(),
            "mapper chose nonexistent core {core}"
        );
        self.store.outcome_mut(task).assignment = Some((core, pstate));
    }

    /// Starts `task` executing on `core` in `pstate` at the current time:
    /// logs the P-state transition with the energy accountant, marks the
    /// core busy, records the start outcome, and schedules the completion
    /// event from the task's realized execution time.
    ///
    /// # Panics
    ///
    /// Panics when the core is already executing a task.
    pub fn start_task(&mut self, core: usize, task: TaskId, pstate: ecds_cluster::PState) {
        let task_data = *self.store.task(task);
        self.accountant.record(core, self.now, pstate);
        self.dirty.mark(core);
        self.depth_total += 1;
        self.busy += 1;
        self.cores[core].start(ExecutingTask {
            task,
            type_id: task_data.type_id,
            pstate,
            start: self.now,
            deadline: task_data.deadline,
        });
        self.store.outcome_mut(task).start = Some(self.now);
        let node = self.cluster.core(core).node;
        let actual = self
            .table
            .actual_time(task_data.type_id, node, pstate, task_data.quantile);
        self.queue
            .push(self.now + actual, EventKind::Completion { core, task });
    }

    /// Appends `task` to `core`'s FIFO wait queue (immediate mode's
    /// commit-at-arrival for busy cores).
    pub fn enqueue_task(&mut self, core: usize, task: TaskId, pstate: ecds_cluster::PState) {
        let task_data = *self.store.task(task);
        self.dirty.mark(core);
        self.depth_total += 1;
        self.cores[core].enqueue(QueuedTask {
            task,
            type_id: task_data.type_id,
            pstate,
            deadline: task_data.deadline,
        });
    }

    /// Releases `core` after its executing task finished, returning the
    /// next FIFO-queued task (if any) for the discipline to start.
    ///
    /// # Panics
    ///
    /// Panics when nothing is executing on the core.
    pub fn complete_core(&mut self, core: usize) -> Option<QueuedTask> {
        let (_done, next) = self.cores[core].complete();
        self.dirty.mark(core);
        self.busy -= 1;
        // The finished executing task leaves the depth count, and so does
        // the queued task `complete` popped out of the FIFO, if any (the
        // discipline re-adds it when it starts the task).
        self.depth_total -= 1 + usize::from(next.is_some());
        next
    }

    /// Pops the next waiting task off `core`'s FIFO without starting it —
    /// the cancel-overdue path.
    pub fn pop_queued(&mut self, core: usize) -> Option<QueuedTask> {
        let popped = self.cores[core].pop_queued();
        if popped.is_some() {
            self.dirty.mark(core);
            self.depth_total -= 1;
        }
        popped
    }

    /// Marks `task` as cancelled (the `cancel_overdue` extension dropped
    /// it instead of running it).
    pub fn mark_cancelled(&mut self, task: TaskId) {
        self.store.outcome_mut(task).cancelled = true;
    }

    /// Parks an idle `core` in the configured idle-downshift P-state, if
    /// any (no-op otherwise).
    pub fn park_idle(&mut self, core: usize) {
        if let Some(idle_state) = self.cfg.idle_downshift {
            self.accountant.record(core, self.now, idle_state);
        }
    }
}

/// The paper's commitment discipline: every task is mapped by a [`Mapper`]
/// at its arrival instant and committed to a core FIFO immediately;
/// `None` from the mapper discards the task.
pub struct ImmediateDiscipline<'m> {
    mapper: &'m mut dyn Mapper,
}

impl std::fmt::Debug for ImmediateDiscipline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImmediateDiscipline")
            .finish_non_exhaustive()
    }
}

impl<'m> ImmediateDiscipline<'m> {
    /// Wraps a mapper for the unified engine.
    pub fn new(mapper: &'m mut dyn Mapper) -> Self {
        Self { mapper }
    }
}

impl Discipline for ImmediateDiscipline<'_> {
    fn on_trial_start(&mut self, _ctx: &mut EngineCtx<'_>) {
        self.mapper.on_trial_start();
    }

    fn on_arrival(&mut self, ctx: &mut EngineCtx<'_>, task: TaskId) {
        let depth = ctx.avg_queue_depth();
        ctx.sample_telemetry(depth);
        let assignment = {
            let view = ctx.system_view();
            self.mapper.assign(ctx.task(task), &view)
        };
        let Some(assignment) = assignment else {
            return; // discarded — counts as a miss
        };
        ctx.record_assignment(task, assignment.core, assignment.pstate);
        if ctx.core_states()[assignment.core].is_idle() {
            // Start immediately: the core transitions to the task's
            // P-state now (it was idle, so it may switch).
            ctx.start_task(assignment.core, task, assignment.pstate);
        } else {
            ctx.enqueue_task(assignment.core, task, assignment.pstate);
        }
    }

    fn on_completion(&mut self, ctx: &mut EngineCtx<'_>, core: usize, _task: TaskId) {
        let mut next = ctx.complete_core(core);
        // Extension: drop queued tasks that already missed their deadlines
        // instead of burning energy on them.
        if ctx.config().cancel_overdue {
            while let Some(queued) = next {
                if ctx.now() > queued.deadline {
                    ctx.mark_cancelled(queued.task);
                    next = ctx.pop_queued(core);
                } else {
                    next = Some(queued);
                    break;
                }
            }
        }
        if let Some(queued) = next {
            ctx.start_task(core, queued.task, queued.pstate);
        } else {
            // Extension (paper future work): park the idle core in a
            // frugal state.
            ctx.park_idle(core);
        }
    }

    fn stats(&self) -> MapperStats {
        self.mapper.stats()
    }

    fn save_state(&self, enc: &mut Encoder) {
        self.mapper.save_state(enc);
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.mapper.restore_state(dec)
    }
}
