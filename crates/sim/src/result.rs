//! Trial results: per-task outcomes and the paper's headline metric.

use ecds_cluster::PState;
use ecds_pmf::Time;
use ecds_workload::{TaskId, TaskTypeId};

use crate::telemetry::Telemetry;

/// What happened to one task during a trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskOutcome {
    /// The task.
    pub task: TaskId,
    /// Its type.
    pub type_id: TaskTypeId,
    /// Arrival (= mapping) time.
    pub arrival: Time,
    /// Hard deadline `δ(z)`.
    pub deadline: Time,
    /// Chosen assignment, or `None` when the mapper discarded the task.
    pub assignment: Option<(usize, PState)>,
    /// When the task began executing (if assigned).
    pub start: Option<Time>,
    /// When it finished (tasks run to completion even past their deadlines —
    /// the resource manager cannot cancel them, unless the
    /// `cancel_overdue` extension is enabled).
    pub completion: Option<Time>,
    /// `true` when the `cancel_overdue` extension dropped the task at the
    /// moment it would have started (its deadline had already passed).
    pub cancelled: bool,
}

impl TaskOutcome {
    /// `true` when the task finished by its deadline (ignoring energy).
    pub fn on_time(&self) -> bool {
        matches!(self.completion, Some(c) if c <= self.deadline)
    }

    /// `true` when the task counts as completed for the paper's metric:
    /// finished by its deadline *and* before the energy budget ran out.
    pub fn counted(&self, exhausted_at: Option<Time>) -> bool {
        match (self.completion, exhausted_at) {
            (Some(c), Some(cutoff)) => c <= self.deadline && c <= cutoff,
            (Some(c), None) => c <= self.deadline,
            (None, _) => false,
        }
    }
}

/// The result of one simulated trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    outcomes: Vec<TaskOutcome>,
    total_energy: f64,
    exhausted_at: Option<Time>,
    makespan: Time,
    telemetry: Telemetry,
}

impl TrialResult {
    /// Assembles a result (engine-internal).
    pub(crate) fn new(
        outcomes: Vec<TaskOutcome>,
        total_energy: f64,
        exhausted_at: Option<Time>,
        makespan: Time,
        telemetry: Telemetry,
    ) -> Self {
        Self {
            outcomes,
            total_energy,
            exhausted_at,
            makespan,
            telemetry,
        }
    }

    /// Public constructor for alternative engines (e.g. the batch-mode
    /// engine in `ecds-ext`) that produce results comparable with the
    /// bundled immediate-mode engine's. `outcomes` must be in task-id
    /// order.
    pub fn new_for_alternative_engines(
        outcomes: Vec<TaskOutcome>,
        total_energy: f64,
        exhausted_at: Option<Time>,
        makespan: Time,
        telemetry: Telemetry,
    ) -> Self {
        assert!(
            outcomes.iter().enumerate().all(|(i, o)| o.task.0 == i),
            "outcomes must be dense and in task-id order"
        );
        Self::new(outcomes, total_energy, exhausted_at, makespan, telemetry)
    }

    /// Time series sampled during the trial.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Per-task outcomes in arrival order.
    pub fn outcomes(&self) -> &[TaskOutcome] {
        &self.outcomes
    }

    /// The window size (total tasks in the trial).
    pub fn window(&self) -> usize {
        self.outcomes.len()
    }

    /// Total wall energy actually consumed over the whole trial (Eq. 2) —
    /// includes idle draw, so it can exceed the budget; the budget caps
    /// *credited* work via the cutoff, not physical consumption.
    pub fn total_energy(&self) -> f64 {
        self.total_energy
    }

    /// The exact time the energy budget was exhausted, if it was.
    pub fn exhausted_at(&self) -> Option<Time> {
        self.exhausted_at
    }

    /// Completion time of the last task (or last arrival when nothing ran).
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Tasks completed by their deadlines within the energy constraint —
    /// the quantity the paper maximizes.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.counted(self.exhausted_at))
            .count()
    }

    /// Missed deadlines (the figures' y-axis): window minus completed.
    /// Includes discarded tasks and tasks finishing after the energy
    /// cutoff.
    pub fn missed(&self) -> usize {
        self.window() - self.completed()
    }

    /// Tasks the mapper discarded (filters eliminated every assignment).
    pub fn discarded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.assignment.is_none())
            .count()
    }

    /// Tasks cancelled by the `cancel_overdue` extension (always 0 in
    /// paper-faithful runs).
    pub fn cancelled(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cancelled).count()
    }

    /// Tasks that finished by their deadlines ignoring the energy cutoff
    /// (diagnostic; equals [`TrialResult::completed`] when the budget never
    /// ran out).
    pub fn on_time_ignoring_energy(&self) -> usize {
        self.outcomes.iter().filter(|o| o.on_time()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(completion: Option<f64>, deadline: f64) -> TaskOutcome {
        TaskOutcome {
            task: TaskId(0),
            type_id: TaskTypeId(0),
            arrival: 0.0,
            deadline,
            assignment: completion.map(|_| (0, PState::P0)),
            start: completion.map(|_| 0.0),
            completion,
            cancelled: false,
        }
    }

    #[test]
    fn on_time_requires_completion_before_deadline() {
        assert!(outcome(Some(5.0), 10.0).on_time());
        assert!(outcome(Some(10.0), 10.0).on_time());
        assert!(!outcome(Some(11.0), 10.0).on_time());
        assert!(!outcome(None, 10.0).on_time());
    }

    #[test]
    fn counted_applies_energy_cutoff() {
        let o = outcome(Some(5.0), 10.0);
        assert!(o.counted(None));
        assert!(o.counted(Some(5.0)));
        assert!(!o.counted(Some(4.9)));
    }

    #[test]
    fn result_counts_are_consistent() {
        let outcomes = vec![
            outcome(Some(5.0), 10.0),  // counted
            outcome(Some(12.0), 10.0), // late
            outcome(None, 10.0),       // discarded
            outcome(Some(20.0), 30.0), // on time but after cutoff
        ];
        let r = TrialResult::new(outcomes, 100.0, Some(15.0), 20.0, Telemetry::new());
        assert_eq!(r.window(), 4);
        assert_eq!(r.completed(), 1);
        assert_eq!(r.missed(), 3);
        assert_eq!(r.discarded(), 1);
        assert_eq!(r.on_time_ignoring_energy(), 2);
        assert_eq!(r.total_energy(), 100.0);
        assert_eq!(r.exhausted_at(), Some(15.0));
        assert_eq!(r.makespan(), 20.0);
    }

    #[test]
    fn missed_plus_completed_equals_window() {
        let outcomes = vec![outcome(Some(1.0), 2.0); 7];
        let r = TrialResult::new(outcomes, 0.0, None, 1.0, Telemetry::new());
        assert_eq!(r.missed() + r.completed(), r.window());
    }
}
