//! Windowed storage for tasks and their outcomes.
//!
//! The classic engine holds every task and outcome of a trial for its whole
//! duration; the continuous-serving loop cannot — its arrival stream is
//! unbounded. [`TaskStore`] keeps the two parallel arrays *windowed*: ids
//! below `base` have been retired (their outcome folded into the serving
//! tally) and only the resident suffix stays in memory, so resident bytes
//! are bounded by in-flight work rather than stream length. The classic
//! path never retires, so `base` stays 0 and behaviour is unchanged.

use ecds_workload::{Task, TaskId};

use crate::result::TaskOutcome;

/// Running counts of retired (settled and evicted) tasks in a serving
/// session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetiredTally {
    /// Tasks retired from the store.
    pub retired: u64,
    /// Retired tasks that finished executing (on time or not).
    pub completed: u64,
    /// Retired tasks that finished by their deadlines.
    pub on_time: u64,
    /// Retired tasks dropped by the `cancel_overdue` extension.
    pub cancelled: u64,
    /// Retired tasks the discipline discarded (never assigned).
    pub discarded: u64,
}

impl RetiredTally {
    fn absorb(&mut self, outcome: &TaskOutcome) {
        self.retired += 1;
        if outcome.completion.is_some() {
            self.completed += 1;
        }
        if outcome.on_time() {
            self.on_time += 1;
        }
        if outcome.cancelled {
            self.cancelled += 1;
        }
        if outcome.assignment.is_none() {
            self.discarded += 1;
        }
    }
}

/// Parallel task/outcome arrays with a retired prefix.
///
/// `tasks[i]` always has id `base + i`; `outcomes[i]` is its outcome.
#[derive(Debug)]
pub(crate) struct TaskStore {
    base: usize,
    tasks: Vec<Task>,
    outcomes: Vec<TaskOutcome>,
}

impl TaskStore {
    /// An empty store (streaming construction).
    pub(crate) fn new() -> Self {
        Self {
            base: 0,
            tasks: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// A store pre-filled with a whole trace (the classic engine path).
    pub(crate) fn from_tasks(tasks: &[Task]) -> Self {
        let mut store = Self::new();
        for &task in tasks {
            store.push(task);
        }
        store
    }

    /// Rebuilds a store from checkpointed parts; ids stay dense starting
    /// at `base` (validated by the caller's decode path).
    pub(crate) fn from_checkpoint_parts(
        base: usize,
        tasks: Vec<Task>,
        outcomes: Vec<TaskOutcome>,
    ) -> Self {
        debug_assert_eq!(tasks.len(), outcomes.len());
        Self {
            base,
            tasks,
            outcomes,
        }
    }

    /// Appends the next task of the stream with a blank outcome.
    ///
    /// # Panics
    ///
    /// Panics when `task.id` is not the next dense id.
    pub(crate) fn push(&mut self, task: Task) {
        assert_eq!(
            task.id.0,
            self.total(),
            "arrival stream must be dense and id-ordered"
        );
        self.tasks.push(task);
        self.outcomes.push(TaskOutcome {
            task: task.id,
            type_id: task.type_id,
            arrival: task.arrival,
            deadline: task.deadline,
            assignment: None,
            start: None,
            completion: None,
            cancelled: false,
        });
    }

    /// First resident id (ids below are retired).
    pub(crate) fn base(&self) -> usize {
        self.base
    }

    /// One past the highest id ever stored.
    pub(crate) fn total(&self) -> usize {
        self.base + self.tasks.len()
    }

    /// Resident task count.
    pub(crate) fn resident(&self) -> usize {
        self.tasks.len()
    }

    /// The resident tasks, id-ordered from [`TaskStore::base`].
    pub(crate) fn resident_tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The resident outcomes, parallel to
    /// [`TaskStore::resident_tasks`].
    pub(crate) fn resident_outcomes(&self) -> &[TaskOutcome] {
        &self.outcomes
    }

    /// One resident task by id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is retired or not yet streamed in.
    pub(crate) fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 - self.base]
    }

    /// Mutable outcome of one resident task.
    pub(crate) fn outcome_mut(&mut self, id: TaskId) -> &mut TaskOutcome {
        &mut self.outcomes[id.0 - self.base]
    }

    /// Immutable outcome of one resident task.
    #[cfg(test)]
    pub(crate) fn outcome(&self, id: TaskId) -> &TaskOutcome {
        &self.outcomes[id.0 - self.base]
    }

    /// Retires the maximal settled prefix into `tally` and returns how
    /// many tasks were evicted.
    ///
    /// A task is settled once its fate can never change: it completed, it
    /// was cancelled, or it arrived unassigned under a discipline that
    /// commits (or discards) at arrival (`holds_unassigned` is `true` for
    /// disciplines — batch mode — that may still assign an arrived,
    /// unassigned task later). Only ids below `arrived` are candidates:
    /// a streamed-in task whose arrival event has not fired yet has a
    /// blank outcome that looks discarded but is not settled.
    pub(crate) fn retire_settled(
        &mut self,
        arrived: usize,
        holds_unassigned: bool,
        tally: &mut RetiredTally,
    ) -> usize {
        let mut n = 0;
        while n < self.tasks.len() && self.base + n < arrived {
            let outcome = &self.outcomes[n];
            let settled = outcome.completion.is_some()
                || outcome.cancelled
                || (outcome.assignment.is_none() && !holds_unassigned);
            if !settled {
                break;
            }
            tally.absorb(outcome);
            n += 1;
        }
        self.tasks.drain(..n);
        self.outcomes.drain(..n);
        self.base += n;
        n
    }

    /// Consumes the store into the full outcome vector (classic-path
    /// finalization).
    ///
    /// # Panics
    ///
    /// Panics when any outcome was retired — a retired trial can only be
    /// summarized, not turned into a per-task result.
    pub(crate) fn into_outcomes(self) -> Vec<TaskOutcome> {
        assert_eq!(self.base, 0, "cannot build a TrialResult after retirement");
        self.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_workload::TaskTypeId;

    fn task(id: usize) -> Task {
        Task {
            id: TaskId(id),
            type_id: TaskTypeId(0),
            arrival: id as f64,
            deadline: id as f64 + 10.0,
            quantile: 0.5,
        }
    }

    fn filled(n: usize) -> TaskStore {
        let tasks: Vec<Task> = (0..n).map(task).collect();
        TaskStore::from_tasks(&tasks)
    }

    #[test]
    fn push_creates_blank_outcome() {
        let store = filled(3);
        assert_eq!(store.total(), 3);
        assert_eq!(store.resident(), 3);
        let o = store.outcome(TaskId(1));
        assert_eq!(o.task, TaskId(1));
        assert!(o.assignment.is_none() && o.completion.is_none() && !o.cancelled);
    }

    #[test]
    #[should_panic(expected = "dense and id-ordered")]
    fn out_of_order_push_panics() {
        let mut store = TaskStore::new();
        store.push(task(1));
    }

    #[test]
    fn retire_stops_at_unsettled() {
        let mut store = filled(4);
        store.outcome_mut(TaskId(0)).assignment = Some((0, ecds_cluster::PState::P0));
        store.outcome_mut(TaskId(0)).completion = Some(5.0);
        store.outcome_mut(TaskId(1)).cancelled = true;
        store.outcome_mut(TaskId(1)).assignment = Some((0, ecds_cluster::PState::P0));
        // Task 2: assigned but still running — not settled.
        store.outcome_mut(TaskId(2)).assignment = Some((0, ecds_cluster::PState::P0));
        let mut tally = RetiredTally::default();
        let n = store.retire_settled(4, false, &mut tally);
        assert_eq!(n, 2);
        assert_eq!(store.base(), 2);
        assert_eq!(store.resident(), 2);
        assert_eq!(tally.retired, 2);
        assert_eq!(tally.completed, 1);
        assert_eq!(tally.cancelled, 1);
        assert_eq!(tally.discarded, 0);
        // Resident indexing still works after the shift.
        assert_eq!(store.task(TaskId(2)).id, TaskId(2));
    }

    #[test]
    fn unarrived_tasks_are_not_retired_as_discarded() {
        let mut store = filled(2);
        let mut tally = RetiredTally::default();
        // Nothing arrived yet: blank outcomes must not count as discarded.
        assert_eq!(store.retire_settled(0, false, &mut tally), 0);
        // Arrived and still unassigned under an immediate discipline:
        // genuinely discarded.
        assert_eq!(store.retire_settled(1, false, &mut tally), 1);
        assert_eq!(tally.discarded, 1);
        // Batch-style disciplines may still assign it later.
        assert_eq!(store.retire_settled(2, true, &mut tally), 0);
    }

    #[test]
    #[should_panic(expected = "after retirement")]
    fn into_outcomes_rejects_retired_store() {
        let mut store = filled(1);
        store.outcome_mut(TaskId(0)).completion = Some(1.0);
        let mut tally = RetiredTally::default();
        store.retire_settled(1, false, &mut tally);
        let _ = store.into_outcomes();
    }

    #[test]
    fn on_time_feeds_tally() {
        let mut store = filled(2);
        store.outcome_mut(TaskId(0)).completion = Some(5.0); // deadline 10
        store.outcome_mut(TaskId(1)).completion = Some(99.0); // deadline 11
        let mut tally = RetiredTally::default();
        store.retire_settled(2, false, &mut tally);
        assert_eq!(tally.completed, 2);
        assert_eq!(tally.on_time, 1);
    }
}
