//! Energy accounting per the paper's Eqs. 1–2.
//!
//! Each core's consumption is fully determined by its list of P-state
//! transitions ν(i,j,k): between consecutive transitions the core draws the
//! constant power μ(i, π) of its current state, so core energy is
//! `η(i,j,k) = Σ μ(i, pstate(ν_n)) × Δt_n` (Eq. 1), and cluster energy is
//! `ζ = Σ η(i,j,k) / ε(i)` (Eq. 2 — supply losses).
//!
//! Because total cluster power is piecewise constant between transitions,
//! the instant cumulative energy crosses a budget is computed *exactly* by
//! walking the merged transition timeline — no numerical integration.

use ecds_cluster::{Cluster, PState};
use ecds_pmf::Time;

/// One core's P-state transition log.
///
/// The first entry is the mandatory transition at workload start; the log is
/// closed by [`TransitionLog::finalize`] at workload end (the paper assumes
/// "each core makes at least two P-state transitions, one at the start of
/// workload execution and one at the end").
///
/// ```
/// use ecds_cluster::PState;
/// use ecds_sim::TransitionLog;
///
/// // A core parked at P4 (20 W) runs one task at P0 (100 W) from t=5 to
/// // the workload end at t=8: Eq. 1 gives 5·20 + 3·100 = 400.
/// let mut log = TransitionLog::new(0.0, PState::P4);
/// log.record(5.0, PState::P0);
/// log.finalize(8.0);
/// let watts = |s: PState| if s == PState::P0 { 100.0 } else { 20.0 };
/// assert_eq!(log.core_energy(watts), 400.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionLog {
    /// Energy of transitions already folded away by
    /// `TransitionLog::compact`, accumulated in the same left-to-right
    /// `+=` order [`TransitionLog::core_energy`] would have used, so
    /// compaction never changes the final sum's bit pattern.
    folded: f64,
    /// `(time, state entered)`, strictly ordered by time; consecutive
    /// entries always change state (same-state records are coalesced).
    entries: Vec<(Time, PState)>,
    end: Option<Time>,
}

impl TransitionLog {
    /// Opens the log with the initial state at `start` (usually 0).
    pub fn new(start: Time, initial: PState) -> Self {
        assert!(start.is_finite(), "start time must be finite");
        Self {
            folded: 0.0,
            entries: vec![(start, initial)],
            end: None,
        }
    }

    /// Rebuilds a log from checkpointed parts (associated constructor for
    /// the restore path).
    ///
    /// # Panics
    ///
    /// Panics when `entries` is empty (a log always holds the transition
    /// at workload start).
    pub(crate) fn from_checkpoint_parts(
        folded: f64,
        entries: Vec<(Time, PState)>,
        end: Option<Time>,
    ) -> Self {
        assert!(!entries.is_empty(), "log never empty");
        Self {
            folded,
            entries,
            end,
        }
    }

    /// Energy already folded out of the entry list by
    /// `TransitionLog::compact` (zero until the first compaction).
    pub fn folded(&self) -> f64 {
        self.folded
    }

    /// Folds every completed segment into [`TransitionLog::folded`] and
    /// drops all entries but the last, bounding the log's memory by the
    /// transition rate between compactions instead of the run length.
    ///
    /// The fold performs exactly the `+=` sequence
    /// [`TransitionLog::core_energy`] would have performed over the
    /// dropped prefix, so the eventual total is bit-identical to an
    /// uncompacted run. Only valid before [`TransitionLog::finalize`];
    /// note [`EnergyAccountant::power_timeline`] and
    /// [`EnergyAccountant::exhaustion_time`] only see transitions that
    /// survive compaction, so compacting callers must not rely on them.
    pub(crate) fn compact(&mut self, watts: impl Fn(PState) -> f64) {
        assert!(self.end.is_none(), "cannot compact a finalized log");
        for w in self.entries.windows(2) {
            let (t0, s0) = w[0];
            let (t1, _) = w[1];
            self.folded += watts(s0) * (t1 - t0);
        }
        let last = *self.entries.last().expect("log never empty");
        self.entries.clear();
        self.entries.push(last);
    }

    /// Records a transition to `state` at `time`. Out-of-order records are
    /// rejected; re-entering the current state is a no-op (the core never
    /// physically transitioned).
    pub fn record(&mut self, time: Time, state: PState) {
        assert!(self.end.is_none(), "log already finalized");
        let (last_t, last_s) = *self.entries.last().expect("log never empty");
        assert!(
            time >= last_t,
            "transitions must be recorded in time order ({time} < {last_t})"
        );
        if state != last_s {
            self.entries.push((time, state));
        }
    }

    /// Closes the log at `end` (the workload-end transition).
    pub fn finalize(&mut self, end: Time) {
        assert!(self.end.is_none(), "log already finalized");
        let (last_t, _) = *self.entries.last().expect("log never empty");
        assert!(end >= last_t, "end must not precede the last transition");
        self.end = Some(end);
    }

    /// The transitions recorded so far.
    pub fn entries(&self) -> &[(Time, PState)] {
        &self.entries
    }

    /// Whether [`TransitionLog::finalize`] has been called.
    pub fn is_finalized(&self) -> bool {
        self.end.is_some()
    }

    /// The workload-end time, once finalized.
    pub fn end_time(&self) -> Option<Time> {
        self.end
    }

    /// Eq. 1: this core's internal (pre-supply-loss) energy, given its
    /// node's per-state power `watts`.
    ///
    /// # Panics
    ///
    /// Panics when the log is not finalized.
    pub fn core_energy(&self, watts: impl Fn(PState) -> f64) -> f64 {
        let end = self.end.expect("finalize the log before integrating");
        // `folded` is 0.0 unless compaction ran, so the uncompacted f64 op
        // sequence is unchanged.
        let mut total = self.folded;
        for w in self.entries.windows(2) {
            let (t0, s0) = w[0];
            let (t1, _) = w[1];
            total += watts(s0) * (t1 - t0);
        }
        let (t_last, s_last) = *self.entries.last().expect("log never empty");
        total += watts(s_last) * (end - t_last);
        total
    }
}

/// Cluster-wide energy accountant: one [`TransitionLog`] per core (flat
/// indexing matching [`Cluster::cores`]).
#[derive(Debug, Clone)]
pub struct EnergyAccountant {
    logs: Vec<TransitionLog>,
}

impl EnergyAccountant {
    /// Opens one log per core of `cluster`, all starting at `start` in
    /// `initial`.
    pub fn new(cluster: &Cluster, start: Time, initial: PState) -> Self {
        Self {
            logs: (0..cluster.total_cores())
                .map(|_| TransitionLog::new(start, initial))
                .collect(),
        }
    }

    /// Rebuilds an accountant from checkpointed per-core logs (associated
    /// constructor for the restore path).
    pub(crate) fn from_logs(logs: Vec<TransitionLog>) -> Self {
        Self { logs }
    }

    /// Records a transition on the core with flat index `core`.
    pub fn record(&mut self, core: usize, time: Time, state: PState) {
        self.logs[core].record(time, state);
    }

    /// Compacts every core's log (see `TransitionLog::compact`),
    /// bounding accountant memory for long-running serving loops. Total
    /// energy stays bit-identical; the power timeline and exhaustion
    /// query lose the folded prefix, so compaction is only used on the
    /// unconstrained serving path.
    pub(crate) fn compact(&mut self, cluster: &Cluster) {
        for (core, log) in self.logs.iter_mut().enumerate() {
            let node = cluster.node_of(cluster.core(core));
            log.compact(|s| node.power.watts(s));
        }
    }

    /// Closes every log at `end`.
    pub fn finalize(&mut self, end: Time) {
        for log in &mut self.logs {
            log.finalize(end);
        }
    }

    /// Access to a core's log.
    pub fn log(&self, core: usize) -> &TransitionLog {
        &self.logs[core]
    }

    /// Eq. 2: total wall energy `ζ` of the cluster (supply losses applied
    /// per node).
    pub fn total_energy(&self, cluster: &Cluster) -> f64 {
        self.logs
            .iter()
            .zip(cluster.cores())
            .map(|(log, core)| {
                let node = cluster.node_of(*core);
                log.core_energy(|s| node.power.watts(s)) / node.efficiency
            })
            .sum()
    }

    /// The total cluster wall-power timeline: `(time, watts)` pairs where
    /// `watts` is the piecewise-constant power drawn from each `time` until
    /// the next entry (the last entry holds until workload end). Requires
    /// finalized logs.
    pub fn power_timeline(&self, cluster: &Cluster) -> Vec<(Time, f64)> {
        let mut changes: Vec<(Time, usize, PState)> = Vec::new();
        for (core, log) in self.logs.iter().enumerate() {
            assert!(log.is_finalized(), "finalize before querying the timeline");
            for &(time, state) in log.entries() {
                changes.push((time, core, state));
            }
        }
        changes.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut per_core = vec![0.0f64; self.logs.len()];
        let mut total = 0.0f64;
        let mut out: Vec<(Time, f64)> = Vec::new();
        let mut idx = 0;
        while idx < changes.len() {
            let t = changes[idx].0;
            while idx < changes.len() && changes[idx].0 == t {
                let (_, core, state) = changes[idx];
                let node = cluster.node_of(cluster.core(core));
                total -= per_core[core];
                per_core[core] = node.power.watts(state) / node.efficiency;
                total += per_core[core];
                idx += 1;
            }
            match out.last_mut() {
                Some(last) if last.0 == t => last.1 = total,
                _ => out.push((t, total)),
            }
        }
        out
    }

    /// The exact instant cumulative wall energy reaches `budget`, or `None`
    /// if the budget outlasts the workload.
    ///
    /// Walks the merged transition timeline maintaining total cluster wall
    /// power (piecewise constant), so the crossing point is solved in closed
    /// form within the segment where it occurs.
    pub fn exhaustion_time(&self, cluster: &Cluster, budget: f64) -> Option<Time> {
        assert!(budget >= 0.0, "budget must be non-negative");
        // Merge per-core transitions into one ordered change list.
        #[derive(Clone, Copy)]
        struct Change {
            time: Time,
            core: usize,
            state: PState,
        }
        let mut changes: Vec<Change> = Vec::new();
        let mut end_time: Time = f64::NEG_INFINITY;
        for (core, log) in self.logs.iter().enumerate() {
            let end = log
                .end
                .expect("finalize the accountant before querying exhaustion");
            end_time = end_time.max(end);
            for &(time, state) in log.entries() {
                changes.push(Change { time, core, state });
            }
        }
        changes.sort_by(|a, b| a.time.total_cmp(&b.time));
        if changes.is_empty() {
            return None;
        }
        if budget == 0.0 {
            return Some(changes[0].time);
        }

        let wall_watts = |core: usize, state: PState| -> f64 {
            let node = cluster.node_of(cluster.core(core));
            node.power.watts(state) / node.efficiency
        };

        let mut per_core_power = vec![0.0f64; self.logs.len()];
        let mut total_power = 0.0f64;
        let mut consumed = 0.0f64;
        let mut now = changes[0].time;
        let mut idx = 0;
        while idx < changes.len() {
            // Apply all changes at this instant.
            let t = changes[idx].time;
            // Integrate the segment [now, t).
            let dt = t - now;
            if dt > 0.0 {
                let segment = total_power * dt;
                if consumed + segment >= budget {
                    return Some(now + (budget - consumed) / total_power);
                }
                consumed += segment;
                now = t;
            }
            while idx < changes.len() && changes[idx].time == t {
                let c = changes[idx];
                total_power -= per_core_power[c.core];
                per_core_power[c.core] = wall_watts(c.core, c.state);
                total_power += per_core_power[c.core];
                idx += 1;
            }
        }
        // Final segment up to the workload end.
        let dt = end_time - now;
        if dt > 0.0 {
            let segment = total_power * dt;
            if consumed + segment >= budget {
                return Some(now + (budget - consumed) / total_power);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_cluster::{NodeSpec, PStateLadder, PowerProfile};

    fn flat_power_node(cores: usize, watts: [f64; 5], eff: f64) -> NodeSpec {
        NodeSpec::new(
            1,
            cores,
            PStateLadder::from_relative_performance([2.0, 1.7, 1.4, 1.2, 1.0]),
            PowerProfile::from_watts(watts),
            eff,
        )
    }

    fn one_core_cluster() -> Cluster {
        Cluster::new(vec![flat_power_node(
            1,
            [100.0, 80.0, 60.0, 40.0, 20.0],
            1.0,
        )])
    }

    #[test]
    fn single_state_energy_is_power_times_time() {
        let mut log = TransitionLog::new(0.0, PState::P4);
        log.finalize(10.0);
        let e = log.core_energy(|s| if s == PState::P4 { 20.0 } else { 0.0 });
        assert!((e - 200.0).abs() < 1e-9);
    }

    #[test]
    fn multi_segment_energy_sums_segments() {
        let mut log = TransitionLog::new(0.0, PState::P4); // 20 W
        log.record(5.0, PState::P0); // 100 W
        log.record(8.0, PState::P2); // 60 W
        log.finalize(10.0);
        let watts = |s: PState| [100.0, 80.0, 60.0, 40.0, 20.0][s.index()];
        // 5·20 + 3·100 + 2·60 = 100 + 300 + 120 = 520.
        assert!((log.core_energy(watts) - 520.0).abs() < 1e-9);
    }

    #[test]
    fn same_state_records_coalesce() {
        let mut log = TransitionLog::new(0.0, PState::P4);
        log.record(3.0, PState::P4);
        assert_eq!(log.entries().len(), 1);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_panics() {
        let mut log = TransitionLog::new(5.0, PState::P4);
        log.record(3.0, PState::P0);
    }

    #[test]
    #[should_panic(expected = "finalize the log")]
    fn unfinalized_energy_panics() {
        let log = TransitionLog::new(0.0, PState::P4);
        let _ = log.core_energy(|_| 1.0);
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn record_after_finalize_panics() {
        let mut log = TransitionLog::new(0.0, PState::P4);
        log.finalize(1.0);
        log.record(2.0, PState::P0);
    }

    #[test]
    fn accountant_total_applies_efficiency() {
        let cluster = Cluster::new(vec![flat_power_node(
            2,
            [100.0, 80.0, 60.0, 40.0, 20.0],
            0.5,
        )]);
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4);
        acc.finalize(10.0);
        // Two cores × 20 W × 10 / 0.5 efficiency = 800.
        assert!((acc.total_energy(&cluster) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn exhaustion_time_exact_single_core() {
        let cluster = one_core_cluster();
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4); // 20 W
        acc.record(0, 10.0, PState::P0); // 100 W afterwards
        acc.finalize(20.0);
        // Energy: 200 by t=10, then 100 W. Budget 500 → t = 10 + 300/100 = 13.
        let t = acc.exhaustion_time(&cluster, 500.0).unwrap();
        assert!((t - 13.0).abs() < 1e-9);
    }

    #[test]
    fn exhaustion_in_first_segment() {
        let cluster = one_core_cluster();
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4); // 20 W
        acc.finalize(100.0);
        let t = acc.exhaustion_time(&cluster, 1000.0).unwrap();
        assert!((t - 50.0).abs() < 1e-9);
    }

    #[test]
    fn budget_outlasting_workload_returns_none() {
        let cluster = one_core_cluster();
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4);
        acc.finalize(10.0);
        assert_eq!(acc.exhaustion_time(&cluster, 1e9), None);
    }

    #[test]
    fn exhaustion_exactly_at_end_is_reported() {
        let cluster = one_core_cluster();
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4); // 20 W
        acc.finalize(10.0);
        // Total energy = 200 exactly.
        let t = acc.exhaustion_time(&cluster, 200.0).unwrap();
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_exhausts_at_start() {
        let cluster = one_core_cluster();
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4);
        acc.finalize(10.0);
        assert_eq!(acc.exhaustion_time(&cluster, 0.0), Some(0.0));
    }

    #[test]
    fn power_timeline_tracks_transitions() {
        let cluster = one_core_cluster();
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4); // 20 W
        acc.record(0, 5.0, PState::P0); // 100 W
        acc.record(0, 9.0, PState::P2); // 60 W
        acc.finalize(12.0);
        let timeline = acc.power_timeline(&cluster);
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline[0], (0.0, 20.0));
        assert_eq!(timeline[1], (5.0, 100.0));
        assert_eq!(timeline[2], (9.0, 60.0));
    }

    #[test]
    fn power_timeline_sums_cores_and_applies_efficiency() {
        let cluster = Cluster::new(vec![flat_power_node(
            2,
            [100.0, 80.0, 60.0, 40.0, 20.0],
            0.5,
        )]);
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4);
        acc.record(1, 3.0, PState::P0);
        acc.finalize(10.0);
        let timeline = acc.power_timeline(&cluster);
        // t=0: 2 cores × 20/0.5 = 80 W; t=3: 40 + 200 = 240 W.
        assert_eq!(timeline[0], (0.0, 80.0));
        assert!((timeline[1].1 - 240.0).abs() < 1e-9);
    }

    #[test]
    fn exhaustion_matches_total_energy_consistency() {
        // The budget equal to total energy must exhaust at or before the
        // end; any larger budget must not exhaust.
        let cluster = Cluster::new(vec![
            flat_power_node(2, [100.0, 80.0, 60.0, 40.0, 20.0], 0.9),
            flat_power_node(1, [130.0, 100.0, 70.0, 50.0, 30.0], 0.95),
        ]);
        let mut acc = EnergyAccountant::new(&cluster, 0.0, PState::P4);
        acc.record(0, 2.0, PState::P0);
        acc.record(1, 4.0, PState::P2);
        acc.record(2, 5.0, PState::P1);
        acc.record(0, 7.0, PState::P3);
        acc.finalize(12.0);
        let total = acc.total_energy(&cluster);
        let t = acc.exhaustion_time(&cluster, total).unwrap();
        assert!((t - 12.0).abs() < 1e-6);
        assert_eq!(acc.exhaustion_time(&cluster, total * 1.001), None);
    }
}
