//! Per-core runtime state: the executing task and the FIFO wait queue.

use std::collections::VecDeque;

use ecds_cluster::PState;
use ecds_pmf::Time;
use ecds_workload::{TaskId, TaskTypeId};

/// A task waiting in a core's FIFO queue (its P-state was fixed at mapping
/// time and cannot change — Sec. III-B: "tasks cannot be reassigned, either
/// to a new core or a new P-state, once they are mapped").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedTask {
    /// The waiting task.
    pub task: TaskId,
    /// Its type (cached for completion-time math).
    pub type_id: TaskTypeId,
    /// The P-state it will execute in.
    pub pstate: PState,
    /// Its hard deadline `δ(z)` (cached for robustness math).
    pub deadline: Time,
}

/// The task currently executing on a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutingTask {
    /// The running task.
    pub task: TaskId,
    /// Its type.
    pub type_id: TaskTypeId,
    /// The P-state the core is running it in.
    pub pstate: PState,
    /// When it started (needed to shift + truncate its completion pmf).
    pub start: Time,
    /// Its hard deadline `δ(z)` (cached for robustness math).
    pub deadline: Time,
}

/// One core's run state.
// lint: epoch-guarded
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreState {
    executing: Option<ExecutingTask>,
    queued: VecDeque<QueuedTask>,
    /// Monotone mutation counter: bumped by every state change so derived
    /// quantities (the mapper's queue-prefix pmf cache) can detect
    /// staleness without comparing queue contents.
    epoch: u64,
}

impl CoreState {
    /// A fresh idle core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a core's run state from checkpointed parts, including its
    /// mutation epoch — an exact restore must resume the epoch sequence,
    /// not restart it, or observers' caches would treat stale derived
    /// state as fresh (associated constructor: it creates state rather
    /// than mutating it, so it is exempt from the R1 bump rule).
    pub(crate) fn from_checkpoint_parts(
        executing: Option<ExecutingTask>,
        queued: VecDeque<QueuedTask>,
        epoch: u64,
    ) -> Self {
        Self {
            executing,
            queued,
            epoch,
        }
    }

    /// The mutation epoch: strictly increases on every
    /// [`enqueue`](CoreState::enqueue), [`start`](CoreState::start),
    /// [`complete`](CoreState::complete), and
    /// [`pop_queued`](CoreState::pop_queued). Two observations of the same
    /// core with equal epochs saw identical executing/queued state.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The executing task, if any.
    #[inline]
    pub fn executing(&self) -> Option<&ExecutingTask> {
        self.executing.as_ref()
    }

    /// The waiting tasks, in execution order.
    #[inline]
    pub fn queued(&self) -> impl ExactSizeIterator<Item = &QueuedTask> {
        self.queued.iter()
    }

    /// The paper's `|MQ(i, j, k, t_l)|`: number of tasks queued for
    /// execution or currently executing on this core.
    #[inline]
    pub fn depth(&self) -> usize {
        self.queued.len() + usize::from(self.executing.is_some())
    }

    /// `true` when nothing is executing (a newly-assigned task may start
    /// immediately).
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.executing.is_none()
    }

    /// Appends a task to the wait queue.
    pub fn enqueue(&mut self, task: QueuedTask) {
        self.queued.push_back(task);
        self.epoch += 1;
    }

    /// Marks `task` as executing. The core must be idle.
    pub fn start(&mut self, task: ExecutingTask) {
        assert!(self.executing.is_none(), "core already executing a task");
        self.executing = Some(task);
        self.epoch += 1;
    }

    /// Finishes the executing task, returning it; the next queued task (if
    /// any) is returned for the engine to start.
    pub fn complete(&mut self) -> (ExecutingTask, Option<QueuedTask>) {
        let done = self.executing.take().expect("no task executing");
        self.epoch += 1;
        (done, self.queued.pop_front())
    }

    /// Pops the next waiting task without starting it — used by the
    /// cancel-overdue extension to skip tasks that already missed.
    pub fn pop_queued(&mut self) -> Option<QueuedTask> {
        let popped = self.queued.pop_front();
        if popped.is_some() {
            self.epoch += 1;
        }
        popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(id: usize) -> QueuedTask {
        QueuedTask {
            task: TaskId(id),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            deadline: 100.0,
        }
    }

    fn executing(id: usize) -> ExecutingTask {
        ExecutingTask {
            task: TaskId(id),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            start: 1.0,
            deadline: 100.0,
        }
    }

    #[test]
    fn fresh_core_is_idle_with_zero_depth() {
        let c = CoreState::new();
        assert!(c.is_idle());
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn depth_counts_executing_and_queued() {
        let mut c = CoreState::new();
        c.start(executing(0));
        c.enqueue(queued(1));
        c.enqueue(queued(2));
        assert_eq!(c.depth(), 3);
        assert!(!c.is_idle());
    }

    #[test]
    fn complete_pops_fifo() {
        let mut c = CoreState::new();
        c.start(executing(0));
        c.enqueue(queued(1));
        c.enqueue(queued(2));
        let (done, next) = c.complete();
        assert_eq!(done.task, TaskId(0));
        assert_eq!(next.unwrap().task, TaskId(1));
        assert!(c.is_idle()); // engine is responsible for starting `next`
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn complete_on_empty_queue_returns_none_next() {
        let mut c = CoreState::new();
        c.start(executing(5));
        let (done, next) = c.complete();
        assert_eq!(done.task, TaskId(5));
        assert!(next.is_none());
    }

    #[test]
    #[should_panic(expected = "already executing")]
    fn double_start_panics() {
        let mut c = CoreState::new();
        c.start(executing(0));
        c.start(executing(1));
    }

    #[test]
    #[should_panic(expected = "no task executing")]
    fn complete_idle_panics() {
        let mut c = CoreState::new();
        let _ = c.complete();
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let mut c = CoreState::new();
        assert_eq!(c.epoch(), 0);
        c.enqueue(queued(1));
        assert_eq!(c.epoch(), 1);
        c.start(executing(0));
        assert_eq!(c.epoch(), 2);
        let _ = c.complete();
        assert_eq!(c.epoch(), 3);
        c.enqueue(queued(2));
        let _ = c.pop_queued();
        assert_eq!(c.epoch(), 5);
    }

    #[test]
    fn epoch_unchanged_by_reads_and_empty_pop() {
        let mut c = CoreState::new();
        c.enqueue(queued(1));
        let before = c.epoch();
        let _ = c.depth();
        let _ = c.is_idle();
        let _: Vec<_> = c.queued().collect();
        assert_eq!(c.epoch(), before);
        let mut empty = CoreState::new();
        assert!(empty.pop_queued().is_none());
        assert_eq!(empty.epoch(), 0, "popping nothing is not a mutation");
    }

    #[test]
    fn queued_iterates_in_order() {
        let mut c = CoreState::new();
        c.enqueue(queued(3));
        c.enqueue(queued(4));
        let ids: Vec<usize> = c.queued().map(|q| q.task.0).collect();
        assert_eq!(ids, vec![3, 4]);
    }
}
