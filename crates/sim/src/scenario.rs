//! A scenario bundles everything held constant across a simulation study's
//! trials: the cluster, the execution-time pmf table, the workload
//! configuration, and the simulator configuration (including the Sec. VI
//! energy budget `ζ_max = t_avg × p_avg × window`).

use ecds_cluster::{generate_cluster, Cluster, ClusterGenConfig};
use ecds_pmf::SeedDerive;
use ecds_workload::{ExecTable, WorkloadConfig, WorkloadTrace};

use crate::config::{paper_energy_budget, SimConfig};

/// An immutable experiment scenario. Per-trial variation (arrivals, types,
/// quantiles) comes from [`Scenario::trace`].
#[derive(Debug, Clone)]
pub struct Scenario {
    seeds: SeedDerive,
    cluster: Cluster,
    table: ExecTable,
    workload: WorkloadConfig,
    sim: SimConfig,
}

impl Scenario {
    /// Builds a scenario from explicit parts; the energy budget in `sim` is
    /// taken as given.
    pub fn from_parts(
        seeds: SeedDerive,
        cluster: Cluster,
        table: ExecTable,
        workload: WorkloadConfig,
        sim: SimConfig,
    ) -> Self {
        assert_eq!(
            table.num_nodes(),
            cluster.num_nodes(),
            "table and cluster disagree on node count"
        );
        assert_eq!(
            table.num_types(),
            workload.num_types,
            "table and workload disagree on type count"
        );
        Self {
            seeds,
            cluster,
            table,
            workload,
            sim,
        }
    }

    /// The paper's full Sec. VI scenario from a master seed: 8-node
    /// cluster, 100 types × 1,000 tasks, budget `t_avg × p_avg × 1000`.
    pub fn paper(master_seed: u64) -> Self {
        Self::with_configs(
            master_seed,
            ClusterGenConfig::paper(),
            WorkloadConfig::paper(),
        )
    }

    /// A fast scaled-down scenario for tests and examples.
    pub fn small_for_tests(master_seed: u64) -> Self {
        Self::with_configs(
            master_seed,
            ClusterGenConfig::small_for_tests(),
            WorkloadConfig::small_for_tests(),
        )
    }

    /// Builds a scenario from arbitrary cluster/workload configs, deriving
    /// the paper's energy-budget formula.
    pub fn with_configs(
        master_seed: u64,
        cluster_cfg: ClusterGenConfig,
        workload_cfg: WorkloadConfig,
    ) -> Self {
        let seeds = SeedDerive::new(master_seed);
        let cluster = generate_cluster(&cluster_cfg, &seeds);
        let table = ExecTable::generate(&workload_cfg, &cluster, &seeds);
        let budget =
            paper_energy_budget(table.t_avg(), cluster.average_power(), workload_cfg.window);
        let sim = SimConfig::paper(budget);
        Self {
            seeds,
            cluster,
            table,
            workload: workload_cfg,
            sim,
        }
    }

    /// Returns a copy with a scaled energy budget (`factor` × the current
    /// budget) — used by the budget-sweep example and ablations.
    pub fn with_budget_factor(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        let mut out = self.clone();
        out.sim.energy_budget = self.sim.energy_budget.map(|b| b * factor);
        out
    }

    /// Returns a copy with a different simulator configuration (budget,
    /// initial P-state, idle policy).
    pub fn with_sim_config(&self, sim: SimConfig) -> Self {
        let mut out = self.clone();
        out.sim = sim;
        out
    }

    /// The master seed derivation.
    pub fn seeds(&self) -> &SeedDerive {
        &self.seeds
    }

    /// The cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The execution-time pmf table.
    pub fn table(&self) -> &ExecTable {
        &self.table
    }

    /// The workload configuration.
    pub fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    /// The simulator configuration.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// The energy budget ζ_max (`None` when unconstrained).
    pub fn energy_budget(&self) -> Option<f64> {
        self.sim.energy_budget
    }

    /// Generates trial `trial`'s workload trace.
    pub fn trace(&self, trial: u64) -> WorkloadTrace {
        WorkloadTrace::generate(&self.workload, &self.table, &self.seeds, trial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_matches_section_vi() {
        let s = Scenario::paper(1);
        assert_eq!(s.cluster().num_nodes(), 8);
        assert_eq!(s.workload().window, 1000);
        assert_eq!(s.workload().num_types, 100);
        let budget = s.energy_budget().unwrap();
        let expected = s.table().t_avg() * s.cluster().average_power() * 1000.0;
        assert!((budget - expected).abs() < 1e-6);
    }

    #[test]
    fn t_avg_is_near_paper_value() {
        // The paper reports t_avg ≈ 1353 for its drawn configuration; ours
        // differs by seed but must land in the same regime (the base mean is
        // 750 and deeper P-states stretch it).
        let s = Scenario::paper(1);
        let t_avg = s.table().t_avg();
        assert!((900.0..2000.0).contains(&t_avg), "t_avg {t_avg}");
    }

    #[test]
    fn traces_vary_by_trial_only() {
        let s = Scenario::small_for_tests(5);
        assert_eq!(s.trace(0), s.trace(0));
        assert_ne!(s.trace(0), s.trace(1));
    }

    #[test]
    fn budget_factor_scales() {
        let s = Scenario::small_for_tests(5);
        let b = s.energy_budget().unwrap();
        let s2 = s.with_budget_factor(0.5);
        assert!((s2.energy_budget().unwrap() - 0.5 * b).abs() < 1e-9);
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = Scenario::small_for_tests(9);
        let b = Scenario::small_for_tests(9);
        assert_eq!(a.cluster(), b.cluster());
        assert_eq!(a.energy_budget(), b.energy_budget());
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_budget_factor_rejected() {
        let _ = Scenario::small_for_tests(1).with_budget_factor(0.0);
    }
}
