//! Observer-side identity stamps for per-core derived state.
//!
//! [`CoreState`](crate::CoreState) carries a mutation epoch so observers
//! can detect staleness without comparing queue contents. [`PrefixStamp`]
//! is the dual record kept *by* an observer (the mapper's candidate
//! evaluator): alongside each cached queue-prefix pmf it stores the
//! prefix's bit-level fingerprint, re-stamped on every cache fill, so
//! equal-prefix cores can be recognized in O(1) before confirming bit
//! identity. The stamp has its own epoch — bumped on every restamp — so
//! two reads of the same stamp with equal epochs are guaranteed to have
//! observed the same fingerprint.

use ecds_persist::{DecodeError, Decoder, Encoder, Persist};

/// A fingerprint record for one core's cached queue prefix.
///
/// `fingerprint` is `None` while nothing has been stamped *or* when the
/// stamped prefix was `None` (an idle core with an empty queue has no
/// prefix pmf, and its candidate class is keyed on the node alone);
/// `Some(hash)` carries the FNV-1a bit-fingerprint of the prefix pmf (see
/// `ecds_pmf::Pmf::fingerprint`). Like every epoch-guarded type, a public
/// mutator that forgets the `self.epoch += 1` bump is an ecds-lint R1
/// violation.
// lint: epoch-guarded
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStamp {
    fingerprint: Option<u64>,
    epoch: u64,
}

impl PrefixStamp {
    /// A blank stamp: nothing recorded yet, epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stamped prefix fingerprint — `None` for an idle, empty core
    /// (whose queue prefix is itself `None`).
    #[inline]
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// The stamp's mutation epoch: strictly increases on every
    /// [`restamp`](PrefixStamp::restamp), so equal epochs imply equal
    /// fingerprints were observed.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records a freshly computed prefix fingerprint (`None` when the core
    /// has no prefix pmf), bumping the stamp's epoch.
    pub fn restamp(&mut self, fingerprint: Option<u64>) {
        self.fingerprint = fingerprint;
        self.epoch += 1;
    }

    /// Rebuilds a stamp from checkpointed parts. The epoch must be the
    /// saved value, not zero: a restored observer resumes the exact epoch
    /// sequence so staleness detection keeps working across the restore
    /// boundary (associated constructor — exempt from the R1 bump rule
    /// because it creates a stamp rather than mutating one).
    pub fn from_checkpoint(fingerprint: Option<u64>, epoch: u64) -> Self {
        Self { fingerprint, epoch }
    }
}

impl Persist for PrefixStamp {
    fn encode(&self, enc: &mut Encoder) {
        self.fingerprint.encode(enc);
        enc.put_u64(self.epoch);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let fingerprint = Option::<u64>::decode(dec)?;
        let epoch = dec.u64()?;
        Ok(Self::from_checkpoint(fingerprint, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_stamp_has_no_fingerprint_and_epoch_zero() {
        let s = PrefixStamp::new();
        assert_eq!(s.fingerprint(), None);
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn restamp_records_and_bumps() {
        let mut s = PrefixStamp::new();
        s.restamp(Some(0xdead_beef));
        assert_eq!(s.fingerprint(), Some(0xdead_beef));
        assert_eq!(s.epoch(), 1);
        s.restamp(None);
        assert_eq!(s.fingerprint(), None);
        assert_eq!(s.epoch(), 2, "restamping the same value still bumps");
    }

    #[test]
    fn equal_epochs_imply_equal_fingerprints() {
        let mut a = PrefixStamp::new();
        let mut b = PrefixStamp::new();
        a.restamp(Some(7));
        b.restamp(Some(7));
        assert_eq!(a, b);
        b.restamp(Some(7));
        assert_ne!(a, b, "the epoch distinguishes re-stamps");
    }
}
