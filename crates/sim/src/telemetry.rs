//! Trial telemetry: time series recorded during simulation.
//!
//! The engine samples system state at every arrival event (the moments the
//! mapper acts); the energy side is reconstructed exactly from the
//! transition logs after the run. Telemetry powers the `telemetry_trace`
//! example and diagnosis of burst behaviour (queue build-up during λ_fast,
//! drain during the lull).

use ecds_pmf::Time;

/// Structured per-trial instrumentation reported by a mapper (or any other
/// commitment discipline) after a trial.
///
/// This is the single seam through which mapper-side counters reach the
/// engine's [`Telemetry`] and, from there, experiment reports and the
/// `telemetry_trace` example. New instrumentation adds a field here (with a
/// `Default`-compatible zero value) instead of widening the
/// [`Mapper`](crate::Mapper) trait with another accessor method.
///
/// All counters are diagnostic only: they never affect scheduling
/// decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapperStats {
    /// `Some((hits, misses))` of the mapper's queue-prefix pmf cache for
    /// the trial, or `None` for mappers that do not cache (DESIGN.md §7).
    pub prefix_cache: Option<(u64, u64)>,
    /// Fused pmf-kernel invocations for the trial — the
    /// allocation-free-path coverage counter (DESIGN.md §7.1). Zero for
    /// mappers without a fused kernel.
    pub fused_kernel_calls: u64,
    /// `Some((classes, events))` — total candidate equivalence classes
    /// summed over all mapping events, and the number of mapping events —
    /// for mappers that deduplicate candidate evaluation (DESIGN.md §11),
    /// or `None` for mappers that evaluate every core independently.
    pub candidate_classes: Option<(u64, u64)>,
    /// `(core, P-state)` evaluations skipped because the core belonged to
    /// an already-evaluated equivalence class. Zero without dedup.
    pub dedup_skipped_evaluations: u64,
}

impl MapperStats {
    /// Queue-prefix cache hits (zero when the mapper does not cache).
    pub fn prefix_cache_hits(&self) -> u64 {
        self.prefix_cache.map_or(0, |(h, _)| h)
    }

    /// Queue-prefix cache misses (zero when the mapper does not cache).
    pub fn prefix_cache_misses(&self) -> u64 {
        self.prefix_cache.map_or(0, |(_, m)| m)
    }

    /// Total queue-prefix cache lookups (hits plus misses).
    pub fn prefix_cache_lookups(&self) -> u64 {
        self.prefix_cache_hits() + self.prefix_cache_misses()
    }

    /// Fraction of prefix-cache lookups that hit, or `None` when the
    /// mapper reported no lookups at all (e.g. it does not cache).
    pub fn prefix_cache_hit_rate(&self) -> Option<f64> {
        let total = self.prefix_cache_lookups();
        (total > 0).then(|| self.prefix_cache_hits() as f64 / total as f64)
    }

    /// Mean candidate equivalence classes per mapping event, or `None`
    /// when the mapper does not deduplicate or recorded no events.
    pub fn classes_per_event(&self) -> Option<f64> {
        self.candidate_classes
            .and_then(|(classes, events)| (events > 0).then(|| classes as f64 / events as f64))
    }
}

/// Windowed telemetry: the running reduction of streamed samples.
///
/// The bounded-retention serve path records every sample straight into
/// this accumulator ([`TelemetryFold::record`]) instead of growing the
/// per-trial [`Telemetry`] vectors; the classic path still buffers and
/// [`TelemetryFold::absorb`]s at the end. Both routes perform the same
/// f64 operations in the same per-sample order, so the folded values are
/// bit-identical whichever way the samples travel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TelemetryFold {
    /// Samples folded so far.
    pub samples: u64,
    /// Sum of folded average queue depths.
    pub sum_queue_depth: f64,
    /// Peak folded average queue depth.
    pub peak_queue_depth: f64,
    /// Maximum folded busy-core count.
    pub max_busy: u64,
}

impl TelemetryFold {
    /// Folds one sample directly — the streaming serve path, bypassing
    /// the per-trial vectors entirely.
    pub fn record(&mut self, depth: f64, busy: usize) {
        self.samples += 1;
        self.sum_queue_depth += depth;
        self.peak_queue_depth = self.peak_queue_depth.max(depth);
        self.max_busy = self.max_busy.max(busy as u64);
    }

    /// Drains a telemetry buffer into the fold.
    pub fn absorb(&mut self, telemetry: &mut Telemetry) {
        for (_, depth) in telemetry.queue_depth.drain(..) {
            self.samples += 1;
            self.sum_queue_depth += depth;
            self.peak_queue_depth = self.peak_queue_depth.max(depth);
        }
        for (_, busy) in telemetry.busy_cores.drain(..) {
            self.max_busy = self.max_busy.max(busy as u64);
        }
    }

    /// Mean folded queue depth, or `None` before the first sample.
    pub fn mean_queue_depth(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.sum_queue_depth / self.samples as f64)
    }
}

/// Time series captured during one trial.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// `(arrival time, instantaneous average queue depth)` — the quantity
    /// the energy filter's ζ_mul adapts on. In batch mode this is the
    /// pending-bag depth normalized by the core count.
    pub queue_depth: Vec<(Time, f64)>,
    /// `(arrival time, cores currently executing a task)`.
    pub busy_cores: Vec<(Time, usize)>,
    /// The exact piecewise-constant total cluster wall power: `(time,
    /// watts)` holding from each entry to the next (reconstructed from the
    /// P-state transition logs after the run; integrating it over the
    /// makespan reproduces the trial's total energy exactly).
    pub power: Vec<(Time, f64)>,
    /// Structured mapper-side counters for the trial (prefix-cache
    /// hits/misses, fused-kernel coverage, …), copied from
    /// [`Mapper::stats`](crate::Mapper::stats) by the engine after the run.
    pub mapper: MapperStats,
}

impl Telemetry {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one arrival-time sample (called by simulation engines).
    pub fn sample(&mut self, time: Time, avg_depth: f64, busy: usize) {
        self.queue_depth.push((time, avg_depth));
        self.busy_cores.push((time, busy));
    }

    /// Fraction of prefix-cache lookups that hit, or `None` when the mapper
    /// reported no lookups at all (e.g. it does not cache). Convenience
    /// delegate to [`MapperStats::prefix_cache_hit_rate`].
    pub fn prefix_cache_hit_rate(&self) -> Option<f64> {
        self.mapper.prefix_cache_hit_rate()
    }

    /// Peak average queue depth over the trial.
    pub fn peak_queue_depth(&self) -> f64 {
        self.queue_depth.iter().map(|&(_, d)| d).fold(0.0, f64::max)
    }

    /// Resamples a series onto `buckets` equal time intervals (mean of the
    /// samples in each bucket, carrying the previous value through empty
    /// buckets) — the shape sparkline rendering wants.
    pub fn resample(series: &[(Time, f64)], buckets: usize) -> Vec<f64> {
        assert!(buckets >= 1, "need at least one bucket");
        if series.is_empty() {
            return vec![0.0; buckets];
        }
        let t0 = series[0].0;
        let t1 = series[series.len() - 1].0;
        let span = (t1 - t0).max(f64::MIN_POSITIVE);
        let mut sums = vec![0.0f64; buckets];
        let mut counts = vec![0usize; buckets];
        for &(t, v) in series {
            let idx = (((t - t0) / span) * buckets as f64).min(buckets as f64 - 1.0) as usize;
            sums[idx] += v;
            counts[idx] += 1;
        }
        let mut out = Vec::with_capacity(buckets);
        let mut last = series[0].1;
        for (sum, count) in sums.into_iter().zip(counts) {
            if count > 0 {
                last = sum / count as f64;
            }
            out.push(last);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_accumulates_in_order() {
        let mut t = Telemetry::new();
        t.sample(1.0, 0.5, 2);
        t.sample(2.0, 1.5, 3);
        assert_eq!(t.queue_depth, vec![(1.0, 0.5), (2.0, 1.5)]);
        assert_eq!(t.busy_cores, vec![(1.0, 2), (2.0, 3)]);
        assert_eq!(t.peak_queue_depth(), 1.5);
    }

    #[test]
    fn peak_of_empty_is_zero() {
        assert_eq!(Telemetry::new().peak_queue_depth(), 0.0);
    }

    #[test]
    fn hit_rate_is_none_without_lookups() {
        assert_eq!(Telemetry::new().prefix_cache_hit_rate(), None);
        // A caching mapper that performed no lookups is also "no rate".
        let stats = MapperStats {
            prefix_cache: Some((0, 0)),
            ..MapperStats::default()
        };
        assert_eq!(stats.prefix_cache_hit_rate(), None);
    }

    #[test]
    fn hit_rate_divides_hits_by_total() {
        let mut t = Telemetry::new();
        t.mapper.prefix_cache = Some((3, 1));
        assert_eq!(t.prefix_cache_hit_rate(), Some(0.75));
        assert_eq!(t.mapper.prefix_cache_hits(), 3);
        assert_eq!(t.mapper.prefix_cache_misses(), 1);
        assert_eq!(t.mapper.prefix_cache_lookups(), 4);
    }

    #[test]
    fn uncached_stats_report_zero_counters() {
        let stats = MapperStats::default();
        assert_eq!(stats.prefix_cache, None);
        assert_eq!(stats.prefix_cache_hits(), 0);
        assert_eq!(stats.prefix_cache_misses(), 0);
        assert_eq!(stats.prefix_cache_hit_rate(), None);
        assert_eq!(stats.fused_kernel_calls, 0);
        assert_eq!(stats.candidate_classes, None);
        assert_eq!(stats.dedup_skipped_evaluations, 0);
        assert_eq!(stats.classes_per_event(), None);
    }

    #[test]
    fn classes_per_event_divides_classes_by_events() {
        let stats = MapperStats {
            candidate_classes: Some((30, 10)),
            ..MapperStats::default()
        };
        assert_eq!(stats.classes_per_event(), Some(3.0));
        // Dedup enabled but no events yet: still no rate.
        let idle = MapperStats {
            candidate_classes: Some((0, 0)),
            ..MapperStats::default()
        };
        assert_eq!(idle.classes_per_event(), None);
    }

    #[test]
    fn resample_means_within_buckets() {
        let series = vec![(0.0, 1.0), (1.0, 3.0), (9.0, 10.0), (10.0, 20.0)];
        let out = Telemetry::resample(&series, 2);
        assert_eq!(out.len(), 2);
        assert!((out[0] - 2.0).abs() < 1e-12); // mean of 1 and 3
        assert!((out[1] - 15.0).abs() < 1e-12); // mean of 10 and 20
    }

    #[test]
    fn resample_carries_last_value_through_gaps() {
        let series = vec![(0.0, 4.0), (100.0, 8.0)];
        let out = Telemetry::resample(&series, 4);
        assert_eq!(out, vec![4.0, 4.0, 4.0, 8.0]);
    }

    #[test]
    fn resample_empty_series_is_zeros() {
        assert_eq!(Telemetry::resample(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn resample_zero_buckets_rejected() {
        let _ = Telemetry::resample(&[(0.0, 1.0)], 0);
    }

    #[test]
    fn single_sample_fills_all_buckets() {
        let out = Telemetry::resample(&[(5.0, 7.0)], 3);
        assert_eq!(out, vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn streamed_record_matches_buffered_absorb_bitwise() {
        let samples = [(0.5, 2usize), (1.75, 3), (0.25, 1), (3.5, 3)];
        let mut streamed = TelemetryFold::default();
        let mut telemetry = Telemetry::new();
        for (i, &(depth, busy)) in samples.iter().enumerate() {
            streamed.record(depth, busy);
            telemetry.sample(i as f64, depth, busy);
        }
        let mut buffered = TelemetryFold::default();
        buffered.absorb(&mut telemetry);
        assert_eq!(streamed.samples, buffered.samples);
        assert_eq!(
            streamed.sum_queue_depth.to_bits(),
            buffered.sum_queue_depth.to_bits()
        );
        assert_eq!(
            streamed.peak_queue_depth.to_bits(),
            buffered.peak_queue_depth.to_bits()
        );
        assert_eq!(streamed.max_busy, buffered.max_busy);
        assert!(telemetry.queue_depth.is_empty() && telemetry.busy_cores.is_empty());
        assert_eq!(streamed.mean_queue_depth(), buffered.mean_queue_depth());
    }
}
