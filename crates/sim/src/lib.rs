//! Discrete-event simulator for the energy-constrained dynamic mapping
//! study.
//!
//! The simulator drives one *trial*: a [`ecds_workload::WorkloadTrace`] of
//! dynamically-arriving tasks mapped onto an [`ecds_cluster::Cluster`]
//! through one unified event-driven engine with a pluggable *commitment
//! discipline* (the [`Discipline`] trait): immediate mode drives a
//! [`Mapper`] (the heuristics and filters live in `ecds-core`; the
//! simulator knows only the trait) committing each task to a core FIFO at
//! its arrival instant, while batch mode (`ecds-ext`) holds a central
//! pending bag and commits when cores free up. The engine maintains
//! per-core FIFO run queues, P-state transition logs, and exact energy
//! accounting per the paper's Eqs. 1–2, and reports a [`TrialResult`] with
//! per-task outcomes and the paper's metric: missed deadlines under the
//! energy constraint.
//!
//! # Semantics (paper Sec. III, plus DESIGN.md §3 interpretations)
//!
//! * Immediate mode: each task is mapped at its arrival instant and is never
//!   reassigned; if the mapper returns `None` (a filter eliminated every
//!   assignment) the task is discarded.
//! * A core executes its queue FIFO; it cannot be preempted and P-states
//!   switch only between tasks (transition times ignored).
//! * Cores are never off: an idle core keeps drawing its last P-state's
//!   power. Every core starts in a configurable initial P-state (default
//!   `P4`) at time zero — the paper's "transition at the start of workload
//!   execution".
//! * Energy: per-core transition logs integrate piecewise-constant power
//!   (Eq. 1), summed over cores after dividing by each node's power-supply
//!   efficiency (Eq. 2). The instant the cumulative consumption crosses the
//!   budget ζ_max is computed exactly; tasks completing after it do not
//!   count (DESIGN.md §3.1).
//!
//! # Example
//!
//! ```
//! use ecds_sim::{Scenario, Simulation, Mapper, Assignment, SystemView};
//! use ecds_workload::Task;
//!
//! /// Maps every task to core 0 at the base P-state.
//! struct Naive;
//! impl Mapper for Naive {
//!     fn assign(&mut self, _task: &Task, _view: &SystemView<'_>) -> Option<Assignment> {
//!         Some(Assignment { core: 0, pstate: ecds_cluster::PState::P0 })
//!     }
//! }
//!
//! let scenario = Scenario::small_for_tests(42);
//! let trace = scenario.trace(0);
//! let result = Simulation::new(&scenario, &trace).run(&mut Naive);
//! assert_eq!(result.window(), trace.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod dirty;
pub mod discipline;
pub mod energy;
pub mod engine;
pub mod event;
pub mod report;
pub mod result;
pub mod scenario;
pub mod serve;
pub mod stamp;
pub mod state;
mod store;
pub mod telemetry;
pub mod view;

pub use config::SimConfig;
pub use dirty::{DirtyCores, DEFAULT_DIRTY_LIMIT};
pub use discipline::{Discipline, EngineCtx, ImmediateDiscipline};
pub use energy::{EnergyAccountant, TransitionLog};
pub use engine::Simulation;
pub use event::{EventKind, EventQueue};
pub use report::EnergyBreakdown;
pub use result::{TaskOutcome, TrialResult};
pub use scenario::Scenario;
pub use serve::{
    Horizon, Retention, RetiredTally, ServeConfig, ServeSession, ServeSummary, TelemetryFold,
    CHECKPOINT_VERSION,
};
pub use stamp::PrefixStamp;
pub use state::{CoreState, ExecutingTask, QueuedTask};
pub use telemetry::{MapperStats, Telemetry};
pub use view::{Assignment, Mapper, SystemView};
