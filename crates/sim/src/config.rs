//! Simulator configuration.

use ecds_cluster::PState;
use ecds_pmf::Time;

/// Tunable simulator behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// P-state every core occupies at time zero (paper-faithful default:
    /// the deepest state `P4`, so an untouched core burns minimum power).
    pub initial_pstate: PState,
    /// Energy budget ζ_max in joule-equivalents (watts × time units);
    /// `None` disables the constraint (useful for calibration runs).
    pub energy_budget: Option<f64>,
    /// When set, a core transitions to this P-state the moment it runs out
    /// of queued work — modeling the per-node "power management kernel" of
    /// Sec. III-A parking idle cores in the frugal state. `Some(P4)` is the
    /// paper-faithful default: the paper's headline numbers (≈37% missed
    /// for unfiltered MECT against a budget of `t_avg × p_avg × 1000`) are
    /// only reachable when idle cores do not keep burning their last task's
    /// P-state power — see DESIGN.md §3.2. `None` (idle cores linger in
    /// their last P-state) is kept as an ablation.
    pub idle_downshift: Option<PState>,
    /// Extension (paper future work: "a system with the ability to cancel
    /// and/or reschedule tasks"): when `true`, a queued task whose deadline
    /// has already passed when it would start executing is cancelled
    /// instead of run — it was going to miss anyway, so executing it only
    /// burns budget. The paper-faithful value is `false` ("our cluster
    /// resource manager cannot stop a task after it has been scheduled and
    /// must execute it to completion").
    pub cancel_overdue: bool,
}

impl SimConfig {
    /// The paper-faithful configuration with the given budget.
    pub fn paper(energy_budget: f64) -> Self {
        assert!(
            energy_budget.is_finite() && energy_budget > 0.0,
            "energy budget must be positive"
        );
        Self {
            initial_pstate: PState::P4,
            energy_budget: Some(energy_budget),
            idle_downshift: Some(PState::P4),
            cancel_overdue: false,
        }
    }

    /// A configuration with no energy constraint.
    pub fn unconstrained() -> Self {
        Self {
            initial_pstate: PState::P4,
            energy_budget: None,
            idle_downshift: Some(PState::P4),
            cancel_overdue: false,
        }
    }

    /// The budget, or +∞ when unconstrained.
    pub fn budget_or_infinite(&self) -> f64 {
        self.energy_budget.unwrap_or(f64::INFINITY)
    }
}

/// Computes the paper's Sec. VI energy budget:
/// `ζ_max = t_avg × p_avg × window` — the energy needed to run an average
/// task, at the average per-core power over all machines and P-states,
/// `window` times. Deliberately insufficient to finish every task on time,
/// forcing the heuristics to trade performance against energy.
pub fn paper_energy_budget(t_avg: Time, p_avg: f64, window: usize) -> f64 {
    assert!(
        t_avg > 0.0 && p_avg > 0.0 && window > 0,
        "budget inputs must be positive"
    );
    t_avg * p_avg * window as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let c = SimConfig::paper(1000.0);
        assert_eq!(c.initial_pstate, PState::P4);
        assert_eq!(c.energy_budget, Some(1000.0));
        assert_eq!(c.idle_downshift, Some(PState::P4));
    }

    #[test]
    fn unconstrained_budget_is_infinite() {
        assert_eq!(
            SimConfig::unconstrained().budget_or_infinite(),
            f64::INFINITY
        );
    }

    #[test]
    fn budget_formula_matches_section_vi() {
        // t_avg ≈ 1353, p_avg ≈ 70 W, 1000 tasks.
        let b = paper_energy_budget(1353.0, 70.0, 1000);
        assert!((b - 94_710_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let _ = SimConfig::paper(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn budget_formula_rejects_zero_window() {
        let _ = paper_energy_budget(1.0, 1.0, 0);
    }
}
