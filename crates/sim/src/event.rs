//! The discrete-event queue.
//!
//! Events are ordered by time; ties break deterministically — completions
//! before arrivals (a core freed at instant `t` is visible to a task
//! arriving at `t`), then insertion order. Determinism here is what makes
//! whole trials reproducible bit-for-bit from a seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ecds_pmf::Time;
use ecds_workload::TaskId;

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task finishes on a core (flat core index).
    Completion {
        /// Flat index of the core finishing the task.
        core: usize,
        /// The finishing task.
        task: TaskId,
    },
    /// A task arrives and must be mapped immediately.
    Arrival(TaskId),
}

impl EventKind {
    /// Tie-break rank at equal times: completions first.
    fn rank(&self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::Arrival(_) => 1,
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time at which the event fires.
    pub time: Time,
    /// What fires.
    pub kind: EventKind,
    /// Insertion sequence number (set by the queue; final tie-break).
    seq: u64,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with room for `capacity` events before the first
    /// reallocation — reserve-ahead for deep queues (a classic trial pushes
    /// the whole trace up front; a 10⁶-event run would otherwise pay ~20
    /// doubling copies on the hot path).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `kind` at `time`.
    ///
    /// # Panics
    ///
    /// Panics when `time` is not finite.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, kind, seq });
    }

    /// Pops the earliest event (completions before arrivals at equal
    /// times, then FIFO).
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The next insertion sequence number (checkpoint support).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Snapshots every pending event in pop order, carrying each event's
    /// insertion sequence number so a reconstructed queue pops in exactly
    /// the same order (checkpoint support).
    ///
    /// Allocates only the returned vector: the pending events are copied
    /// out of the live heap and sorted by the pop order `(time, rank,
    /// seq)` directly — no heap clone, no pop loop — so checkpointing a
    /// 10⁶-event queue costs one allocation and one sort.
    pub fn snapshot(&self) -> Vec<(Time, EventKind, u64)> {
        let mut out: Vec<(Time, EventKind, u64)> = Vec::with_capacity(self.heap.len());
        out.extend(self.heap.iter().map(|e| (e.time, e.kind, e.seq)));
        out.sort_unstable_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| a.1.rank().cmp(&b.1.rank()))
                .then_with(|| a.2.cmp(&b.2))
        });
        out
    }

    /// Rebuilds a queue from a [`snapshot`](EventQueue::snapshot) and the
    /// saved `next_seq`. Pop order depends only on the total event order
    /// (time, rank, seq), so the rebuilt queue replays identically
    /// regardless of heap-internal layout; that freedom is what lets the
    /// rebuild heapify in O(n) instead of pushing one event at a time.
    ///
    /// # Panics
    ///
    /// Panics when any event time is not finite (validate before calling
    /// from a decode path).
    pub fn from_parts(next_seq: u64, events: Vec<(Time, EventKind, u64)>) -> Self {
        let events: Vec<Event> = events
            .into_iter()
            .map(|(time, kind, seq)| {
                assert!(time.is_finite(), "event time must be finite");
                Event { time, kind, seq }
            })
            .collect();
        Self {
            heap: BinaryHeap::from(events),
            next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::Arrival(TaskId(0)));
        q.push(1.0, EventKind::Arrival(TaskId(1)));
        q.push(3.0, EventKind::Arrival(TaskId(2)));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn completion_beats_arrival_at_same_time() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::Arrival(TaskId(0)));
        q.push(
            2.0,
            EventKind::Completion {
                core: 3,
                task: TaskId(9),
            },
        );
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Completion { .. }
        ));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Arrival(_)));
    }

    #[test]
    fn equal_events_pop_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Arrival(TaskId(0)));
        q.push(1.0, EventKind::Arrival(TaskId(1)));
        q.push(1.0, EventKind::Arrival(TaskId(2)));
        let ids: Vec<TaskId> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, EventKind::Arrival(TaskId(0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::Arrival(TaskId(0)));
    }

    #[test]
    fn snapshot_is_in_pop_order_and_roundtrips() {
        let mut q = EventQueue::with_capacity(64);
        q.push(2.0, EventKind::Arrival(TaskId(0)));
        q.push(
            2.0,
            EventKind::Completion {
                core: 1,
                task: TaskId(7),
            },
        );
        q.push(1.0, EventKind::Arrival(TaskId(1)));
        q.push(2.0, EventKind::Arrival(TaskId(2)));
        let snap = q.snapshot();
        let mut rebuilt = EventQueue::from_parts(q.next_seq(), snap.clone());
        assert_eq!(rebuilt.next_seq(), q.next_seq());
        for &(time, kind, _) in &snap {
            let a = q.pop().unwrap();
            let b = rebuilt.pop().unwrap();
            assert_eq!(a.time.to_bits(), time.to_bits());
            assert_eq!(a.kind, kind);
            assert_eq!(b.time.to_bits(), a.time.to_bits());
            assert_eq!(b.kind, a.kind);
        }
        assert!(q.is_empty() && rebuilt.is_empty());
    }

    #[test]
    fn reserve_does_not_disturb_order() {
        let mut q = EventQueue::new();
        q.push(3.0, EventKind::Arrival(TaskId(0)));
        q.reserve(1_000);
        q.push(1.0, EventKind::Arrival(TaskId(1)));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Arrival(t) if t == TaskId(1)));
    }
}
