//! The discrete-event queue.
//!
//! Events are ordered by time; ties break deterministically — completions
//! before arrivals (a core freed at instant `t` is visible to a task
//! arriving at `t`), then insertion order. Determinism here is what makes
//! whole trials reproducible bit-for-bit from a seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ecds_pmf::Time;
use ecds_workload::TaskId;

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task finishes on a core (flat core index).
    Completion {
        /// Flat index of the core finishing the task.
        core: usize,
        /// The finishing task.
        task: TaskId,
    },
    /// A task arrives and must be mapped immediately.
    Arrival(TaskId),
}

impl EventKind {
    /// Tie-break rank at equal times: completions first.
    fn rank(&self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::Arrival(_) => 1,
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time at which the event fires.
    pub time: Time,
    /// What fires.
    pub kind: EventKind,
    /// Insertion sequence number (set by the queue; final tie-break).
    seq: u64,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    ///
    /// # Panics
    ///
    /// Panics when `time` is not finite.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, kind, seq });
    }

    /// Pops the earliest event (completions before arrivals at equal
    /// times, then FIFO).
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The next insertion sequence number (checkpoint support).
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Snapshots every pending event in pop order, carrying each event's
    /// insertion sequence number so a reconstructed queue pops in exactly
    /// the same order (checkpoint support).
    pub(crate) fn snapshot(&self) -> Vec<(Time, EventKind, u64)> {
        let mut heap = self.heap.clone();
        let mut out = Vec::with_capacity(heap.len());
        while let Some(e) = heap.pop() {
            out.push((e.time, e.kind, e.seq));
        }
        out
    }

    /// Rebuilds a queue from a [`snapshot`](EventQueue::snapshot) and the
    /// saved `next_seq`. Pop order depends only on the total event order
    /// (time, rank, seq), so the rebuilt queue replays identically
    /// regardless of heap-internal layout.
    ///
    /// # Panics
    ///
    /// Panics when any event time is not finite (validate before calling
    /// from a decode path).
    pub(crate) fn from_parts(next_seq: u64, events: Vec<(Time, EventKind, u64)>) -> Self {
        let mut heap = BinaryHeap::with_capacity(events.len());
        for (time, kind, seq) in events {
            assert!(time.is_finite(), "event time must be finite");
            heap.push(Event { time, kind, seq });
        }
        Self { heap, next_seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::Arrival(TaskId(0)));
        q.push(1.0, EventKind::Arrival(TaskId(1)));
        q.push(3.0, EventKind::Arrival(TaskId(2)));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn completion_beats_arrival_at_same_time() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::Arrival(TaskId(0)));
        q.push(
            2.0,
            EventKind::Completion {
                core: 3,
                task: TaskId(9),
            },
        );
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Completion { .. }
        ));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Arrival(_)));
    }

    #[test]
    fn equal_events_pop_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Arrival(TaskId(0)));
        q.push(1.0, EventKind::Arrival(TaskId(1)));
        q.push(1.0, EventKind::Arrival(TaskId(2)));
        let ids: Vec<TaskId> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, EventKind::Arrival(TaskId(0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::Arrival(TaskId(0)));
    }
}
