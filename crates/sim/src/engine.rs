//! The discrete-event simulation engine: one event core for every
//! commitment discipline.
//!
//! The engine owns everything the simulation modes share — the
//! deterministic [`EventQueue`](crate::event::EventQueue) (completions
//! before arrivals at equal times, then insertion order), per-core run
//! state, the Eq. 1–2 energy accountant, per-task outcomes, telemetry
//! sampling, and the exact exhaustion cutoff. A pluggable [`Discipline`]
//! decides *when mapped work is committed to a core*: immediate mode
//! ([`ImmediateDiscipline`] driving a
//! [`Mapper`]) commits at arrival into a core FIFO; batch mode
//! (`BatchDiscipline` in `ecds-ext`) holds a central pending bag and
//! commits when cores free up.

use ecds_pmf::Time;
use ecds_workload::WorkloadTrace;

use crate::discipline::{Discipline, EngineCtx, ImmediateDiscipline};
use crate::event::EventKind;
use crate::result::TrialResult;
use crate::scenario::Scenario;
use crate::view::Mapper;

/// One trial's simulation: a scenario plus a trace, run with a mapper (or
/// any [`Discipline`]).
///
/// `Simulation` is cheap to construct; all heavy state lives on the stack of
/// [`Simulation::run`], so one instance can be reused and runs are
/// embarrassingly parallel across threads (the scenario and trace are only
/// borrowed immutably).
#[derive(Debug, Clone, Copy)]
pub struct Simulation<'a> {
    scenario: &'a Scenario,
    trace: &'a WorkloadTrace,
}

impl<'a> Simulation<'a> {
    /// Pairs a scenario with one trial's trace.
    pub fn new(scenario: &'a Scenario, trace: &'a WorkloadTrace) -> Self {
        Self { scenario, trace }
    }

    /// Runs the trial to completion under `mapper` and reports the result.
    ///
    /// Every task is mapped at its arrival instant (immediate mode); mapped
    /// tasks run to completion even past their deadlines; the energy
    /// accountant integrates power for every core from time zero to the
    /// completion of the last task. Equivalent to
    /// [`Simulation::run_with`] under an [`ImmediateDiscipline`].
    pub fn run(&self, mapper: &mut dyn Mapper) -> TrialResult {
        self.run_with(&mut ImmediateDiscipline::new(mapper))
    }

    /// Runs the trial to completion under an arbitrary commitment
    /// [`Discipline`] and reports the result.
    ///
    /// The engine pops events in deterministic order (time, then
    /// completions before arrivals, then insertion order), records shared
    /// bookkeeping (arrival counts, completion outcomes), and delegates
    /// every commitment decision to the discipline's hooks. After the last
    /// event it finalizes the energy accountant, computes the exact budget
    /// exhaustion instant, and copies the discipline's
    /// [`stats`](Discipline::stats) into the trial telemetry.
    pub fn run_with(&self, discipline: &mut dyn Discipline) -> TrialResult {
        let cluster = self.scenario.cluster();
        let cfg = self.scenario.sim_config();
        let mut ctx = EngineCtx::new(cluster, self.scenario.table(), cfg, self.trace.tasks());
        discipline.on_trial_start(&mut ctx);

        let mut end_time: Time = 0.0;
        while let Some(event) = ctx.queue.pop() {
            end_time = end_time.max(event.time);
            ctx.now = event.time;
            match event.kind {
                EventKind::Arrival(task_id) => {
                    ctx.arrived += 1;
                    debug_assert_eq!(ctx.task(task_id).id, task_id, "trace must be id-ordered");
                    discipline.on_arrival(&mut ctx, task_id);
                }
                EventKind::Completion { core, task } => {
                    ctx.store.outcome_mut(task).completion = Some(event.time);
                    discipline.on_completion(&mut ctx, core, task);
                }
            }
            discipline.after_event(&mut ctx);
        }

        ctx.accountant.finalize(end_time);
        let mut telemetry = ctx.telemetry;
        telemetry.mapper = discipline.stats();
        telemetry.power = ctx.accountant.power_timeline(cluster);
        let total_energy = ctx.accountant.total_energy(cluster);
        let exhausted_at = cfg
            .energy_budget
            .and_then(|budget| ctx.accountant.exhaustion_time(cluster, budget));

        TrialResult::new(
            ctx.store.into_outcomes(),
            total_energy,
            exhausted_at,
            end_time,
            telemetry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{Assignment, SystemView};
    use ecds_cluster::PState;
    use ecds_workload::Task;

    /// Round-robin over cores at a fixed P-state.
    struct RoundRobin {
        next: usize,
        pstate: PState,
    }

    impl Mapper for RoundRobin {
        fn assign(&mut self, _task: &Task, view: &SystemView<'_>) -> Option<Assignment> {
            let core = self.next % view.cluster().total_cores();
            self.next += 1;
            Some(Assignment {
                core,
                pstate: self.pstate,
            })
        }
    }

    /// Discards everything.
    struct DiscardAll;
    impl Mapper for DiscardAll {
        fn assign(&mut self, _task: &Task, _view: &SystemView<'_>) -> Option<Assignment> {
            None
        }
    }

    fn run_small(mapper: &mut dyn Mapper) -> TrialResult {
        let scenario = Scenario::small_for_tests(42);
        let trace = scenario.trace(0);
        Simulation::new(&scenario, &trace).run(mapper)
    }

    #[test]
    fn all_tasks_get_outcomes() {
        let r = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        assert_eq!(r.window(), 60);
        assert_eq!(r.missed() + r.completed(), r.window());
        // Every mapped task eventually completes.
        for o in r.outcomes() {
            assert!(o.assignment.is_some());
            assert!(o.completion.is_some());
            assert!(o.start.is_some());
        }
    }

    #[test]
    fn completions_follow_starts() {
        let r = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P2,
        });
        for o in r.outcomes() {
            let start = o.start.unwrap();
            let completion = o.completion.unwrap();
            assert!(start >= o.arrival);
            assert!(completion > start);
        }
    }

    #[test]
    fn discard_all_misses_everything() {
        let r = run_small(&mut DiscardAll);
        assert_eq!(r.missed(), r.window());
        assert_eq!(r.discarded(), r.window());
        assert_eq!(r.completed(), 0);
        // Cores never left the initial P-state but still burned energy.
        assert!(r.total_energy() > 0.0);
    }

    #[test]
    fn deeper_pstate_uses_less_energy_unconstrained() {
        let scenario = Scenario::small_for_tests(42)
            .with_sim_config(crate::config::SimConfig::unconstrained());
        let trace = scenario.trace(0);
        let fast = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        let slow = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P4,
        });
        // P0 runs shorter but cores sit parked at P0 drawing peak power;
        // per unit time P0 costs ~4×. Energy should be higher for P0 unless
        // the makespan stretch dominates — with this workload it does not.
        assert!(fast.total_energy() > slow.total_energy());
        assert_eq!(fast.exhausted_at(), None);
        assert_eq!(slow.exhausted_at(), None);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P1,
        });
        let b = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P1,
        });
        assert_eq!(a.outcomes(), b.outcomes());
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn faster_pstate_completes_no_fewer_on_time_ignoring_energy() {
        let scenario =
            Scenario::small_for_tests(7).with_sim_config(crate::config::SimConfig::unconstrained());
        let trace = scenario.trace(1);
        let fast = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        let slow = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P4,
        });
        assert!(fast.on_time_ignoring_energy() >= slow.on_time_ignoring_energy());
    }

    #[test]
    fn energy_cutoff_reduces_completed_count() {
        let scenario = Scenario::small_for_tests(42);
        let trace = scenario.trace(0);
        let normal = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        let starved =
            Simulation::new(&scenario.with_budget_factor(0.05), &trace).run(&mut RoundRobin {
                next: 0,
                pstate: PState::P0,
            });
        assert!(starved.exhausted_at().is_some());
        assert!(starved.completed() <= normal.completed());
    }

    #[test]
    fn idle_downshift_saves_energy() {
        let mut linger_cfg = crate::config::SimConfig::unconstrained();
        linger_cfg.idle_downshift = None;
        let scenario = Scenario::small_for_tests(42).with_sim_config(linger_cfg);
        let mut parked_cfg = crate::config::SimConfig::unconstrained();
        parked_cfg.idle_downshift = Some(PState::P4);
        let parked_scenario = scenario.with_sim_config(parked_cfg);
        let trace = scenario.trace(0);
        let mut m1 = RoundRobin {
            next: 0,
            pstate: PState::P0,
        };
        let mut m2 = RoundRobin {
            next: 0,
            pstate: PState::P0,
        };
        let plain = Simulation::new(&scenario, &trace).run(&mut m1);
        let parked = Simulation::new(&parked_scenario, &trace).run(&mut m2);
        assert!(parked.total_energy() < plain.total_energy());
        // Task outcomes are identical — parking only affects idle power.
        assert_eq!(plain.outcomes(), parked.outcomes());
    }

    #[test]
    fn power_timeline_integrates_to_total_energy() {
        let r = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P1,
        });
        let power = &r.telemetry().power;
        assert!(!power.is_empty());
        let mut energy = 0.0;
        for w in power.windows(2) {
            energy += w[0].1 * (w[1].0 - w[0].0);
        }
        if let Some(&(t_last, p_last)) = power.last() {
            energy += p_last * (r.makespan() - t_last);
        }
        assert!(
            (energy - r.total_energy()).abs() < 1e-6 * r.total_energy(),
            "integral {energy} vs accountant {}",
            r.total_energy()
        );
    }

    #[test]
    fn makespan_covers_all_completions() {
        let r = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P3,
        });
        let max_completion = r
            .outcomes()
            .iter()
            .filter_map(|o| o.completion)
            .fold(0.0f64, f64::max);
        assert_eq!(r.makespan(), max_completion);
    }
}
