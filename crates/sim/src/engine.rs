//! The discrete-event simulation engine.

use ecds_pmf::Time;
use ecds_workload::WorkloadTrace;

use crate::energy::EnergyAccountant;
use crate::event::{EventKind, EventQueue};
use crate::result::{TaskOutcome, TrialResult};
use crate::scenario::Scenario;
use crate::state::{CoreState, ExecutingTask, QueuedTask};
use crate::telemetry::Telemetry;
use crate::view::{Mapper, SystemView};

/// One trial's simulation: a scenario plus a trace, run with a mapper.
///
/// `Simulation` is cheap to construct; all heavy state lives on the stack of
/// [`Simulation::run`], so one instance can be reused and runs are
/// embarrassingly parallel across threads (the scenario and trace are only
/// borrowed immutably).
#[derive(Debug, Clone, Copy)]
pub struct Simulation<'a> {
    scenario: &'a Scenario,
    trace: &'a WorkloadTrace,
}

impl<'a> Simulation<'a> {
    /// Pairs a scenario with one trial's trace.
    pub fn new(scenario: &'a Scenario, trace: &'a WorkloadTrace) -> Self {
        Self { scenario, trace }
    }

    /// Runs the trial to completion under `mapper` and reports the result.
    ///
    /// Every task is mapped at its arrival instant (immediate mode); mapped
    /// tasks run to completion even past their deadlines; the energy
    /// accountant integrates power for every core from time zero to the
    /// completion of the last task.
    pub fn run(&self, mapper: &mut dyn Mapper) -> TrialResult {
        let cluster = self.scenario.cluster();
        let table = self.scenario.table();
        let cfg = self.scenario.sim_config();
        let tasks = self.trace.tasks();
        let window = tasks.len();
        let num_cores = cluster.total_cores();

        mapper.on_trial_start();

        let mut cores = vec![CoreState::new(); num_cores];
        let mut accountant = EnergyAccountant::new(cluster, 0.0, cfg.initial_pstate);
        let mut outcomes: Vec<TaskOutcome> = tasks
            .iter()
            .map(|t| TaskOutcome {
                task: t.id,
                type_id: t.type_id,
                arrival: t.arrival,
                deadline: t.deadline,
                assignment: None,
                start: None,
                completion: None,
                cancelled: false,
            })
            .collect();

        let mut queue = EventQueue::new();
        for task in tasks {
            queue.push(task.arrival, EventKind::Arrival(task.id));
        }

        let mut arrived = 0usize;
        let mut end_time: Time = 0.0;
        let mut telemetry = Telemetry::new();

        while let Some(event) = queue.pop() {
            end_time = end_time.max(event.time);
            match event.kind {
                EventKind::Arrival(task_id) => {
                    arrived += 1;
                    let task = &tasks[task_id.0];
                    debug_assert_eq!(task.id, task_id, "trace must be id-ordered");
                    let view =
                        SystemView::new(cluster, table, &cores, event.time, arrived, window);
                    telemetry.sample(
                        event.time,
                        view.avg_queue_depth(),
                        cores.iter().filter(|c| !c.is_idle()).count(),
                    );
                    let Some(assignment) = mapper.assign(task, &view) else {
                        continue; // discarded — counts as a miss
                    };
                    assert!(
                        assignment.core < num_cores,
                        "mapper chose nonexistent core {}",
                        assignment.core
                    );
                    outcomes[task_id.0].assignment =
                        Some((assignment.core, assignment.pstate));
                    let core_state = &mut cores[assignment.core];
                    if core_state.is_idle() {
                        // Start immediately: the core transitions to the
                        // task's P-state now (it was idle, so it may switch).
                        accountant.record(assignment.core, event.time, assignment.pstate);
                        core_state.start(ExecutingTask {
                            task: task_id,
                            type_id: task.type_id,
                            pstate: assignment.pstate,
                            start: event.time,
                            deadline: task.deadline,
                        });
                        outcomes[task_id.0].start = Some(event.time);
                        let node = cluster.core(assignment.core).node;
                        let actual = table.actual_time(
                            task.type_id,
                            node,
                            assignment.pstate,
                            task.quantile,
                        );
                        queue.push(
                            event.time + actual,
                            EventKind::Completion {
                                core: assignment.core,
                                task: task_id,
                            },
                        );
                    } else {
                        core_state.enqueue(QueuedTask {
                            task: task_id,
                            type_id: task.type_id,
                            pstate: assignment.pstate,
                            deadline: task.deadline,
                        });
                    }
                }
                EventKind::Completion { core, task } => {
                    outcomes[task.0].completion = Some(event.time);
                    let (_done, mut next) = cores[core].complete();
                    // Extension: drop queued tasks that already missed
                    // their deadlines instead of burning energy on them.
                    if cfg.cancel_overdue {
                        while let Some(queued) = next {
                            if event.time > queued.deadline {
                                outcomes[queued.task.0].cancelled = true;
                                next = cores[core].pop_queued();
                            } else {
                                next = Some(queued);
                                break;
                            }
                        }
                    }
                    if let Some(queued) = next {
                        accountant.record(core, event.time, queued.pstate);
                        cores[core].start(ExecutingTask {
                            task: queued.task,
                            type_id: queued.type_id,
                            pstate: queued.pstate,
                            start: event.time,
                            deadline: queued.deadline,
                        });
                        outcomes[queued.task.0].start = Some(event.time);
                        let node = cluster.core(core).node;
                        let quantile = tasks[queued.task.0].quantile;
                        let actual =
                            table.actual_time(queued.type_id, node, queued.pstate, quantile);
                        queue.push(
                            event.time + actual,
                            EventKind::Completion {
                                core,
                                task: queued.task,
                            },
                        );
                    } else if let Some(idle_state) = cfg.idle_downshift {
                        // Extension (paper future work): park the idle core
                        // in a frugal state.
                        accountant.record(core, event.time, idle_state);
                    }
                }
            }
        }

        accountant.finalize(end_time);
        if let Some((hits, misses)) = mapper.prefix_cache_stats() {
            telemetry.prefix_cache_hits = hits;
            telemetry.prefix_cache_misses = misses;
        }
        telemetry.fused_kernel_calls = mapper.fused_kernel_calls();
        telemetry.power = accountant.power_timeline(cluster);
        let total_energy = accountant.total_energy(cluster);
        let exhausted_at = cfg
            .energy_budget
            .and_then(|budget| accountant.exhaustion_time(cluster, budget));

        TrialResult::new(outcomes, total_energy, exhausted_at, end_time, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::Assignment;
    use ecds_cluster::PState;
    use ecds_workload::Task;

    /// Round-robin over cores at a fixed P-state.
    struct RoundRobin {
        next: usize,
        pstate: PState,
    }

    impl Mapper for RoundRobin {
        fn assign(&mut self, _task: &Task, view: &SystemView<'_>) -> Option<Assignment> {
            let core = self.next % view.cluster().total_cores();
            self.next += 1;
            Some(Assignment {
                core,
                pstate: self.pstate,
            })
        }
    }

    /// Discards everything.
    struct DiscardAll;
    impl Mapper for DiscardAll {
        fn assign(&mut self, _task: &Task, _view: &SystemView<'_>) -> Option<Assignment> {
            None
        }
    }

    fn run_small(mapper: &mut dyn Mapper) -> TrialResult {
        let scenario = Scenario::small_for_tests(42);
        let trace = scenario.trace(0);
        Simulation::new(&scenario, &trace).run(mapper)
    }

    #[test]
    fn all_tasks_get_outcomes() {
        let r = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        assert_eq!(r.window(), 60);
        assert_eq!(r.missed() + r.completed(), r.window());
        // Every mapped task eventually completes.
        for o in r.outcomes() {
            assert!(o.assignment.is_some());
            assert!(o.completion.is_some());
            assert!(o.start.is_some());
        }
    }

    #[test]
    fn completions_follow_starts() {
        let r = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P2,
        });
        for o in r.outcomes() {
            let start = o.start.unwrap();
            let completion = o.completion.unwrap();
            assert!(start >= o.arrival);
            assert!(completion > start);
        }
    }

    #[test]
    fn discard_all_misses_everything() {
        let r = run_small(&mut DiscardAll);
        assert_eq!(r.missed(), r.window());
        assert_eq!(r.discarded(), r.window());
        assert_eq!(r.completed(), 0);
        // Cores never left the initial P-state but still burned energy.
        assert!(r.total_energy() > 0.0);
    }

    #[test]
    fn deeper_pstate_uses_less_energy_unconstrained() {
        let scenario = Scenario::small_for_tests(42).with_sim_config(
            crate::config::SimConfig::unconstrained(),
        );
        let trace = scenario.trace(0);
        let fast = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        let slow = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P4,
        });
        // P0 runs shorter but cores sit parked at P0 drawing peak power;
        // per unit time P0 costs ~4×. Energy should be higher for P0 unless
        // the makespan stretch dominates — with this workload it does not.
        assert!(fast.total_energy() > slow.total_energy());
        assert_eq!(fast.exhausted_at(), None);
        assert_eq!(slow.exhausted_at(), None);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P1,
        });
        let b = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P1,
        });
        assert_eq!(a.outcomes(), b.outcomes());
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn faster_pstate_completes_no_fewer_on_time_ignoring_energy() {
        let scenario = Scenario::small_for_tests(7)
            .with_sim_config(crate::config::SimConfig::unconstrained());
        let trace = scenario.trace(1);
        let fast = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        let slow = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P4,
        });
        assert!(fast.on_time_ignoring_energy() >= slow.on_time_ignoring_energy());
    }

    #[test]
    fn energy_cutoff_reduces_completed_count() {
        let scenario = Scenario::small_for_tests(42);
        let trace = scenario.trace(0);
        let normal = Simulation::new(&scenario, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        let starved = Simulation::new(&scenario.with_budget_factor(0.05), &trace).run(
            &mut RoundRobin {
                next: 0,
                pstate: PState::P0,
            },
        );
        assert!(starved.exhausted_at().is_some());
        assert!(starved.completed() <= normal.completed());
    }

    #[test]
    fn idle_downshift_saves_energy() {
        let mut linger_cfg = crate::config::SimConfig::unconstrained();
        linger_cfg.idle_downshift = None;
        let scenario = Scenario::small_for_tests(42).with_sim_config(linger_cfg);
        let mut parked_cfg = crate::config::SimConfig::unconstrained();
        parked_cfg.idle_downshift = Some(PState::P4);
        let parked_scenario = scenario.with_sim_config(parked_cfg);
        let trace = scenario.trace(0);
        let mut m1 = RoundRobin {
            next: 0,
            pstate: PState::P0,
        };
        let mut m2 = RoundRobin {
            next: 0,
            pstate: PState::P0,
        };
        let plain = Simulation::new(&scenario, &trace).run(&mut m1);
        let parked = Simulation::new(&parked_scenario, &trace).run(&mut m2);
        assert!(parked.total_energy() < plain.total_energy());
        // Task outcomes are identical — parking only affects idle power.
        assert_eq!(plain.outcomes(), parked.outcomes());
    }

    #[test]
    fn power_timeline_integrates_to_total_energy() {
        let r = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P1,
        });
        let power = &r.telemetry().power;
        assert!(!power.is_empty());
        let mut energy = 0.0;
        for w in power.windows(2) {
            energy += w[0].1 * (w[1].0 - w[0].0);
        }
        if let Some(&(t_last, p_last)) = power.last() {
            energy += p_last * (r.makespan() - t_last);
        }
        assert!(
            (energy - r.total_energy()).abs() < 1e-6 * r.total_energy(),
            "integral {energy} vs accountant {}",
            r.total_energy()
        );
    }

    #[test]
    fn makespan_covers_all_completions() {
        let r = run_small(&mut RoundRobin {
            next: 0,
            pstate: PState::P3,
        });
        let max_completion = r
            .outcomes()
            .iter()
            .filter_map(|o| o.completion)
            .fold(0.0f64, f64::max);
        assert_eq!(r.makespan(), max_completion);
    }
}
