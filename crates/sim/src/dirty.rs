//! Dirty-core mailbox: the engine's incremental-invalidation feed for
//! shard-indexed evaluators.
//!
//! Every mutation that bumps a [`CoreState`](crate::CoreState) epoch also
//! appends the core's flat index here. A consumer (the evaluator's shard
//! index) keeps a monotone cursor into the *absolute* mark sequence and
//! drains only the marks it has not seen yet — O(marks since last
//! decision) instead of O(cores) per arrival.
//!
//! The mailbox is deliberately lossy under pressure: when the buffer
//! reaches its limit it is discarded wholesale and the absolute base
//! jumps past the dropped marks. A consumer whose cursor predates the
//! base cannot tell which cores it missed and must fall back to a full
//! freshness scan — which is always correct, merely slower. Correctness
//! therefore never depends on the mailbox: it is a hint channel, and the
//! consumer re-checks every hinted core against the exact cache-freshness
//! predicate before acting.
//!
//! Marks are transient runtime state: they are *not* checkpointed. A
//! restored engine starts with an empty mailbox, and a restored evaluator
//! must schedule a full scan (see `CandidateEvaluator::restore_state`).

/// Append-only buffer of recently mutated core indices with an absolute
/// position, so consumers can detect dropped marks.
#[derive(Debug, Clone)]
pub struct DirtyCores {
    /// Marks not yet discarded; absolute index of `buf[i]` is `base + i`.
    buf: Vec<u32>,
    /// Absolute index of `buf[0]`.
    base: u64,
    /// Buffer length at which the next mark discards everything first.
    limit: usize,
}

/// Default mark-buffer limit: far above the marks any single event can
/// produce, small enough that an overflow costs one cheap full scan.
pub const DEFAULT_DIRTY_LIMIT: usize = 4096;

impl Default for DirtyCores {
    fn default() -> Self {
        Self::new(DEFAULT_DIRTY_LIMIT)
    }
}

impl DirtyCores {
    /// An empty mailbox discarding its buffer at `limit` marks.
    ///
    /// # Panics
    ///
    /// Panics when `limit` is zero.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "mark limit must be positive");
        Self {
            buf: Vec::new(),
            base: 0,
            limit,
        }
    }

    /// Records that `core` mutated. On overflow the whole buffer is
    /// dropped and the base jumps, signalling consumers behind the jump.
    pub fn mark(&mut self, core: usize) {
        if self.buf.len() >= self.limit {
            self.base += self.buf.len() as u64;
            self.buf.clear();
        }
        self.buf.push(core as u32);
    }

    /// Absolute index one past the newest mark — the cursor value a
    /// consumer holds after draining everything.
    pub fn head(&self) -> u64 {
        self.base + self.buf.len() as u64
    }

    /// The marks at absolute positions `cursor..head()`, or `None` when
    /// marks before `cursor` were discarded (the consumer missed some and
    /// must fall back to a full scan).
    pub fn marks_since(&self, cursor: u64) -> Option<&[u32]> {
        if cursor < self.base {
            return None;
        }
        let skip = (cursor - self.base) as usize;
        Some(self.buf.get(skip..).unwrap_or(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_accumulate_and_drain_from_cursor() {
        let mut d = DirtyCores::new(8);
        d.mark(3);
        d.mark(5);
        assert_eq!(d.marks_since(0), Some(&[3u32, 5][..]));
        let cursor = d.head();
        d.mark(1);
        assert_eq!(d.marks_since(cursor), Some(&[1u32][..]));
        assert_eq!(d.marks_since(d.head()), Some(&[][..]));
    }

    #[test]
    fn overflow_discards_and_reports_the_gap() {
        let mut d = DirtyCores::new(2);
        d.mark(0);
        d.mark(1);
        // A fully drained consumer survives the jump without a gap.
        let drained = d.head();
        d.mark(2); // discards [0, 1], base jumps to 2
        assert_eq!(d.marks_since(drained), Some(&[2u32][..]));
        // A consumer still behind the jump sees the gap.
        assert_eq!(d.marks_since(0), None);
        assert_eq!(d.marks_since(1), None);
    }

    #[test]
    fn cursor_past_head_is_empty_not_a_gap() {
        let d = DirtyCores::new(4);
        assert_eq!(d.marks_since(0), Some(&[][..]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_rejected() {
        let _ = DirtyCores::new(0);
    }
}
