//! The mapper interface: what a resource-allocation heuristic sees and
//! returns at each immediate-mode mapping event.

use ecds_cluster::{Cluster, PState};
use ecds_persist::{DecodeError, Decoder, Encoder};
use ecds_pmf::Time;
use ecds_workload::{ExecTable, Task};

use crate::dirty::DirtyCores;
use crate::state::CoreState;
use crate::telemetry::MapperStats;

/// The decision a mapper returns: run the task on the core with flat index
/// `core`, in `pstate`. An *assignment* in the paper's sense is the full
/// (node, multicore processor, core, P-state) tuple; the flat index encodes
/// the first three (see [`Cluster::core`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Flat core index into [`Cluster::cores`].
    pub core: usize,
    /// The DVFS P-state the task will execute in.
    pub pstate: PState,
}

/// A resource-allocation heuristic operating in immediate mode.
///
/// The simulator calls [`Mapper::assign`] once per task, at its arrival
/// instant. Returning `None` discards the task (the paper's filters may
/// eliminate every feasible assignment). The mapper may keep internal state
/// (e.g. the energy filter's remaining-budget ledger), hence `&mut self`.
pub trait Mapper {
    /// Chooses an assignment for `task` given the system state, or `None`
    /// to discard it.
    fn assign(&mut self, task: &Task, view: &SystemView<'_>) -> Option<Assignment>;

    /// Hook invoked once before a trial starts, letting stateful mappers
    /// reset ledgers. Default: no-op.
    fn on_trial_start(&mut self) {}

    /// Structured instrumentation counters accumulated since the last
    /// [`Mapper::on_trial_start`]. The engine copies this into
    /// [`crate::Telemetry`] after each trial. Default: all-zero
    /// [`MapperStats`] for uninstrumented mappers.
    ///
    /// Future instrumentation extends [`MapperStats`] (a plain struct with
    /// a `Default`) rather than adding further methods to this trait.
    fn stats(&self) -> MapperStats {
        MapperStats::default()
    }

    /// Serializes the mapper's mutable per-trial state (ledgers, RNG
    /// positions, caches) into a checkpoint. Default: no-op for stateless
    /// mappers. Implementations must emit a fixed-width, platform-
    /// independent encoding and restore bit-identically via
    /// [`Mapper::restore_state`].
    fn save_state(&self, _enc: &mut Encoder) {}

    /// Restores state written by [`Mapper::save_state`]. Default: no-op.
    /// The engine never calls `on_trial_start` on a restored mapper — the
    /// decoded state *is* the mid-trial state.
    fn restore_state(&mut self, _dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        Ok(())
    }
}

/// A read-only snapshot of the system handed to the mapper at a mapping
/// time-step `t_l`.
#[derive(Debug)]
pub struct SystemView<'a> {
    cluster: &'a Cluster,
    table: &'a ExecTable,
    cores: &'a [CoreState],
    time: Time,
    arrived: usize,
    window: usize,
    /// Incremental-invalidation feed for shard-indexed evaluators; absent
    /// on hand-built views, which forces consumers onto the full-scan
    /// (always-correct) path.
    dirty: Option<&'a DirtyCores>,
    /// Engine-maintained Σ queue depth over all cores; absent on
    /// hand-built views, where [`SystemView::avg_queue_depth`] sums
    /// directly.
    depth_total: Option<usize>,
}

impl<'a> SystemView<'a> {
    /// Builds a view (engine-internal, but public so alternative engines
    /// and tests can construct one).
    pub fn new(
        cluster: &'a Cluster,
        table: &'a ExecTable,
        cores: &'a [CoreState],
        time: Time,
        arrived: usize,
        window: usize,
    ) -> Self {
        assert_eq!(
            cores.len(),
            cluster.total_cores(),
            "core state array must match cluster size"
        );
        assert!(arrived <= window, "arrived tasks cannot exceed the window");
        Self {
            cluster,
            table,
            cores,
            time,
            arrived,
            window,
            dirty: None,
            depth_total: None,
        }
    }

    /// Attaches the engine's dirty-core mailbox, enabling incremental
    /// shard-index maintenance in consumers.
    pub fn with_dirty(mut self, dirty: &'a DirtyCores) -> Self {
        self.dirty = Some(dirty);
        self
    }

    /// Attaches the engine's running Σ queue depth, making
    /// [`SystemView::avg_queue_depth`] O(1). The caller guarantees
    /// `depth_total` equals the sum of all cores' depths; both are exact
    /// integers, so the O(1) average is bit-identical to the summed one.
    pub fn with_depth_total(mut self, depth_total: usize) -> Self {
        self.depth_total = Some(depth_total);
        self
    }

    /// The engine's dirty-core mailbox, when this view was built by an
    /// engine that maintains one.
    #[inline]
    pub fn dirty_cores(&self) -> Option<&'a DirtyCores> {
        self.dirty
    }

    /// The cluster model.
    #[inline]
    pub fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    /// The execution-time pmf table.
    #[inline]
    pub fn table(&self) -> &'a ExecTable {
        self.table
    }

    /// Current time `t_l` (the arriving task's arrival time).
    #[inline]
    pub fn time(&self) -> Time {
        self.time
    }

    /// Run state of the core with flat index `core`.
    #[inline]
    pub fn core_state(&self, core: usize) -> &CoreState {
        &self.cores[core]
    }

    /// All core states, flat-indexed.
    #[inline]
    pub fn core_states(&self) -> &'a [CoreState] {
        self.cores
    }

    /// Mutation epoch of the core with flat index `core` — the staleness
    /// key for caches of per-core derived state (see
    /// [`CoreState::epoch`](crate::CoreState::epoch)).
    #[inline]
    pub fn core_epoch(&self, core: usize) -> u64 {
        self.cores[core].epoch()
    }

    /// `true` when the core with flat index `core` is idle with an empty
    /// queue — it has no queue prefix pmf at all, so its candidate
    /// equivalence class is keyed on the owning node alone (DESIGN.md §11).
    #[inline]
    pub fn core_is_unloaded(&self, core: usize) -> bool {
        let state = &self.cores[core];
        state.is_idle() && state.depth() == 0
    }

    /// Tasks that have arrived so far, *including* the one being mapped.
    #[inline]
    pub fn arrived(&self) -> usize {
        self.arrived
    }

    /// The trial window size.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// `T_left(t_l)` for the energy filter: tasks not yet arrived plus the
    /// one being mapped, clamped to at least 1 (DESIGN.md §3.5).
    #[inline]
    pub fn tasks_left(&self) -> usize {
        (self.window - self.arrived + 1).max(1)
    }

    /// Instantaneous average queue depth over all cores — the quantity the
    /// energy filter's ζ_mul adapts on (Sec. V-F). O(1) when the engine
    /// attached its depth aggregate, O(cores) otherwise; both compute the
    /// same exact integer sum, so the result is bit-identical.
    pub fn avg_queue_depth(&self) -> f64 {
        let total: usize = match self.depth_total {
            Some(total) => total,
            None => self.cores.iter().map(CoreState::depth).sum(),
        };
        total as f64 / self.cores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::QueuedTask;
    use ecds_cluster::{generate_cluster, ClusterGenConfig};
    use ecds_pmf::SeedDerive;
    use ecds_workload::{TaskId, TaskTypeId, WorkloadConfig};

    fn fixtures() -> (Cluster, ExecTable) {
        let seeds = SeedDerive::new(3);
        let cluster = generate_cluster(&ClusterGenConfig::small_for_tests(), &seeds);
        let table = ExecTable::generate(&WorkloadConfig::small_for_tests(), &cluster, &seeds);
        (cluster, table)
    }

    #[test]
    fn avg_queue_depth_counts_all_cores() {
        let (cluster, table) = fixtures();
        let mut cores = vec![CoreState::new(); cluster.total_cores()];
        cores[0].enqueue(QueuedTask {
            task: TaskId(0),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            deadline: 50.0,
        });
        cores[0].enqueue(QueuedTask {
            task: TaskId(1),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            deadline: 50.0,
        });
        let view = SystemView::new(&cluster, &table, &cores, 0.0, 1, 10);
        let expected = 2.0 / cluster.total_cores() as f64;
        assert!((view.avg_queue_depth() - expected).abs() < 1e-12);
    }

    #[test]
    fn tasks_left_includes_current() {
        let (cluster, table) = fixtures();
        let cores = vec![CoreState::new(); cluster.total_cores()];
        let view = SystemView::new(&cluster, &table, &cores, 0.0, 1, 10);
        assert_eq!(view.tasks_left(), 10);
        let view = SystemView::new(&cluster, &table, &cores, 0.0, 10, 10);
        assert_eq!(view.tasks_left(), 1);
    }

    #[test]
    #[should_panic(expected = "match cluster size")]
    fn mismatched_core_array_rejected() {
        let (cluster, table) = fixtures();
        let cores = vec![CoreState::new(); cluster.total_cores() + 1];
        let _ = SystemView::new(&cluster, &table, &cores, 0.0, 0, 10);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn arrived_beyond_window_rejected() {
        let (cluster, table) = fixtures();
        let cores = vec![CoreState::new(); cluster.total_cores()];
        let _ = SystemView::new(&cluster, &table, &cores, 0.0, 11, 10);
    }

    #[test]
    fn tasks_left_clamps_at_one() {
        // Even in the degenerate arrived == window case, the fair-share
        // divisor must stay at least 1 (DESIGN.md §3.5).
        let (cluster, table) = fixtures();
        let cores = vec![CoreState::new(); cluster.total_cores()];
        let view = SystemView::new(&cluster, &table, &cores, 0.0, 5, 5);
        assert_eq!(view.tasks_left(), 1);
    }

    #[test]
    fn empty_system_has_zero_depth() {
        let (cluster, table) = fixtures();
        let cores = vec![CoreState::new(); cluster.total_cores()];
        let view = SystemView::new(&cluster, &table, &cores, 0.0, 1, 10);
        assert_eq!(view.avg_queue_depth(), 0.0);
    }

    #[test]
    fn accessors_expose_fields() {
        let (cluster, table) = fixtures();
        let cores = vec![CoreState::new(); cluster.total_cores()];
        let view = SystemView::new(&cluster, &table, &cores, 7.5, 3, 10);
        assert_eq!(view.time(), 7.5);
        assert_eq!(view.arrived(), 3);
        assert_eq!(view.window(), 10);
        assert_eq!(view.core_states().len(), cluster.total_cores());
        assert!(view.core_state(0).is_idle());
    }

    #[test]
    fn depth_aggregate_matches_the_summed_average_bitwise() {
        let (cluster, table) = fixtures();
        let mut cores = vec![CoreState::new(); cluster.total_cores()];
        for i in 0..3 {
            cores[0].enqueue(QueuedTask {
                task: TaskId(i),
                type_id: TaskTypeId(0),
                pstate: PState::P0,
                deadline: 50.0,
            });
        }
        let summed = SystemView::new(&cluster, &table, &cores, 0.0, 1, 10).avg_queue_depth();
        let aggregated = SystemView::new(&cluster, &table, &cores, 0.0, 1, 10)
            .with_depth_total(3)
            .avg_queue_depth();
        assert_eq!(summed.to_bits(), aggregated.to_bits());
    }

    #[test]
    fn dirty_mailbox_is_absent_unless_attached() {
        let (cluster, table) = fixtures();
        let cores = vec![CoreState::new(); cluster.total_cores()];
        let view = SystemView::new(&cluster, &table, &cores, 0.0, 1, 10);
        assert!(view.dirty_cores().is_none());
        let dirty = DirtyCores::default();
        let view = SystemView::new(&cluster, &table, &cores, 0.0, 1, 10).with_dirty(&dirty);
        assert!(view.dirty_cores().is_some());
    }

    #[test]
    fn unloaded_means_idle_with_empty_queue() {
        let (cluster, table) = fixtures();
        let mut cores = vec![CoreState::new(); cluster.total_cores()];
        cores[1].enqueue(QueuedTask {
            task: TaskId(0),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            deadline: 50.0,
        });
        let view = SystemView::new(&cluster, &table, &cores, 0.0, 1, 10);
        assert!(view.core_is_unloaded(0));
        assert!(!view.core_is_unloaded(1), "a queued task loads the core");
    }
}
