//! Post-trial energy decomposition: where did the budget actually go?
//!
//! The paper's filters reason about *per-task* expected energy, but what a
//! trial consumes splits into busy draw (cores executing tasks) and idle
//! draw (parked cores burning their current P-state's power). This module
//! reconstructs that split exactly from a [`TrialResult`] plus the
//! scenario — no extra engine state is needed because every task's core,
//! P-state, start, and completion are recorded, and idle draw is whatever
//! remains.

use ecds_cluster::{Cluster, NUM_PSTATES};

use crate::result::TrialResult;
use crate::scenario::Scenario;

/// Exact busy/idle energy decomposition of one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// Wall energy consumed while cores executed tasks.
    pub busy_energy: f64,
    /// Wall energy consumed by idle cores (total − busy).
    pub idle_energy: f64,
    /// Busy wall energy split by the P-state tasks executed in.
    pub busy_by_pstate: [f64; NUM_PSTATES],
    /// Busy wall energy per node.
    pub busy_by_node: Vec<f64>,
    /// Total core-time spent executing tasks.
    pub busy_time: f64,
    /// Total core-time available (`cores × makespan`).
    pub total_core_time: f64,
}

impl EnergyBreakdown {
    /// Computes the decomposition for `result` under `scenario`.
    pub fn compute(scenario: &Scenario, result: &TrialResult) -> Self {
        let cluster: &Cluster = scenario.cluster();
        let mut busy_time = 0.0;
        let mut busy_by_pstate = [0.0; NUM_PSTATES];
        let mut busy_by_node = vec![0.0; cluster.num_nodes()];
        for outcome in result.outcomes() {
            let (Some((core, pstate)), Some(start), Some(completion)) =
                (outcome.assignment, outcome.start, outcome.completion)
            else {
                continue;
            };
            let duration = completion - start;
            let node_idx = cluster.core(core).node;
            let node = cluster.node(node_idx);
            let wall = node.power.watts(pstate) / node.efficiency * duration;
            busy_time += duration;
            busy_by_pstate[pstate.index()] += wall;
            busy_by_node[node_idx] += wall;
        }
        // Derive the total from the per-node split so the two views are
        // bit-identical regardless of floating-point accumulation order.
        let busy_energy: f64 = busy_by_node.iter().sum();
        let idle_energy = (result.total_energy() - busy_energy).max(0.0);
        Self {
            busy_energy,
            idle_energy,
            busy_by_pstate,
            busy_by_node,
            busy_time,
            total_core_time: cluster.total_cores() as f64 * result.makespan(),
        }
    }

    /// Fraction of total energy spent on actual execution.
    pub fn busy_fraction(&self) -> f64 {
        let total = self.busy_energy + self.idle_energy;
        if total == 0.0 {
            0.0
        } else {
            self.busy_energy / total
        }
    }

    /// Core utilization: busy core-time over available core-time.
    pub fn utilization(&self) -> f64 {
        if self.total_core_time == 0.0 {
            0.0
        } else {
            self.busy_time / self.total_core_time
        }
    }

    /// Upper bound on the energy a perfect power-gating implementation
    /// (paper future work: "ACPI G-states, power gating") could save: the
    /// entire idle draw. Real gating saves less (wake latency, residual
    /// leakage), so this bounds the opportunity from above.
    pub fn gating_savings_upper_bound(&self) -> f64 {
        self.idle_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Simulation;
    use crate::view::{Assignment, Mapper, SystemView};
    use ecds_cluster::PState;
    use ecds_workload::Task;

    struct RoundRobin {
        next: usize,
        pstate: PState,
    }
    impl Mapper for RoundRobin {
        fn assign(&mut self, _t: &Task, view: &SystemView<'_>) -> Option<Assignment> {
            let core = self.next % view.cluster().total_cores();
            self.next += 1;
            Some(Assignment {
                core,
                pstate: self.pstate,
            })
        }
    }

    fn breakdown(pstate: PState) -> (Scenario, TrialResult, EnergyBreakdown) {
        let s = Scenario::small_for_tests(42).with_sim_config(SimConfig::unconstrained());
        let trace = s.trace(0);
        let r = Simulation::new(&s, &trace).run(&mut RoundRobin { next: 0, pstate });
        let b = EnergyBreakdown::compute(&s, &r);
        (s, r, b)
    }

    #[test]
    fn busy_plus_idle_equals_total() {
        let (_, r, b) = breakdown(PState::P1);
        assert!((b.busy_energy + b.idle_energy - r.total_energy()).abs() < 1e-6);
    }

    #[test]
    fn single_pstate_mapper_concentrates_busy_energy() {
        let (_, _, b) = breakdown(PState::P2);
        for (i, &e) in b.busy_by_pstate.iter().enumerate() {
            if i == PState::P2.index() {
                assert!(e > 0.0);
            } else {
                assert_eq!(e, 0.0);
            }
        }
    }

    #[test]
    fn node_split_sums_to_busy_total() {
        let (_, _, b) = breakdown(PState::P0);
        let node_sum: f64 = b.busy_by_node.iter().sum();
        assert!((node_sum - b.busy_energy).abs() < 1e-9);
    }

    #[test]
    fn fractions_are_in_unit_interval() {
        let (_, _, b) = breakdown(PState::P3);
        assert!((0.0..=1.0).contains(&b.busy_fraction()));
        assert!((0.0..=1.0).contains(&b.utilization()));
        assert!(b.utilization() > 0.0);
    }

    #[test]
    fn faster_pstate_lowers_utilization() {
        let (_, _, fast) = breakdown(PState::P0);
        let (_, _, slow) = breakdown(PState::P4);
        assert!(fast.busy_time < slow.busy_time);
    }

    #[test]
    fn gating_bound_is_the_idle_energy() {
        let (_, _, b) = breakdown(PState::P1);
        assert_eq!(b.gating_savings_upper_bound(), b.idle_energy);
        assert!(b.gating_savings_upper_bound() > 0.0);
    }

    #[test]
    fn idle_dominates_on_an_undersubscribed_system() {
        // Arrivals 10× slower than the standard small scenario leave most
        // cores parked most of the time, so busy core-time is a minority
        // of the available core-time.
        use ecds_cluster::ClusterGenConfig;
        use ecds_workload::{BurstPattern, WorkloadConfig};
        let workload = WorkloadConfig {
            arrivals: BurstPattern::scaled_with_rates(60, 1.0 / 560.0, 1.0 / 3360.0),
            ..WorkloadConfig::small_for_tests()
        };
        let s = Scenario::with_configs(42, ClusterGenConfig::small_for_tests(), workload)
            .with_sim_config(SimConfig::unconstrained());
        let trace = s.trace(0);
        let r = Simulation::new(&s, &trace).run(&mut RoundRobin {
            next: 0,
            pstate: PState::P0,
        });
        let b = EnergyBreakdown::compute(&s, &r);
        assert!(b.utilization() < 0.5, "utilization {}", b.utilization());
    }
}
