//! Property tests of simulator invariants under arbitrary (but valid)
//! mapping decisions — the engine must hold its guarantees for *any*
//! mapper, not just the paper's heuristics.

use std::sync::OnceLock;

use ecds_cluster::PState;
use ecds_sim::{Assignment, Mapper, Scenario, Simulation, SystemView, TrialResult};
use ecds_workload::Task;
use proptest::prelude::*;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::small_for_tests(99))
}

/// A mapper driven by a pre-drawn decision script: for task `i`,
/// `script[i % len]` selects (core index modulo core count, P-state,
/// discard flag).
struct ScriptedMapper {
    script: Vec<(usize, usize, bool)>,
    next: usize,
}

impl Mapper for ScriptedMapper {
    fn assign(&mut self, _task: &Task, view: &SystemView<'_>) -> Option<Assignment> {
        let (core_raw, pstate_raw, discard) = self.script[self.next % self.script.len()];
        self.next += 1;
        if discard {
            return None;
        }
        Some(Assignment {
            core: core_raw % view.cluster().total_cores(),
            pstate: PState::from_index(pstate_raw % 5),
        })
    }

    fn on_trial_start(&mut self) {
        self.next = 0;
    }
}

fn run_scripted(script: Vec<(usize, usize, bool)>) -> TrialResult {
    let s = scenario();
    let trace = s.trace(0);
    let mut mapper = ScriptedMapper { script, next: 0 };
    Simulation::new(s, &trace).run(&mut mapper)
}

fn arb_script() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec((0usize..64, 0usize..5, prop::bool::weighted(0.2)), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_holds_for_any_mapper(script in arb_script()) {
        let r = run_scripted(script);
        prop_assert_eq!(r.missed() + r.completed(), r.window());
        prop_assert!(r.discarded() <= r.window());
    }

    #[test]
    fn outcomes_are_causally_ordered(script in arb_script()) {
        let r = run_scripted(script);
        for o in r.outcomes() {
            if let (Some(start), Some(completion)) = (o.start, o.completion) {
                prop_assert!(start >= o.arrival);
                prop_assert!(completion > start);
            }
        }
    }

    #[test]
    fn energy_is_bounded_by_power_envelope(script in arb_script()) {
        let s = scenario();
        let r = run_scripted(script);
        // Total energy lies between (all cores at min wall power for the
        // makespan) and (all cores at max wall power for the makespan).
        let min_power: f64 = s.cluster().cores().iter().map(|c| {
            let n = s.cluster().node_of(*c);
            n.power.watts(PState::P4) / n.efficiency
        }).sum();
        let max_power: f64 = s.cluster().cores().iter().map(|c| {
            let n = s.cluster().node_of(*c);
            n.power.watts(PState::P0) / n.efficiency
        }).sum();
        let span = r.makespan();
        prop_assert!(r.total_energy() >= min_power * span - 1e-6,
            "energy {} below floor {}", r.total_energy(), min_power * span);
        prop_assert!(r.total_energy() <= max_power * span + 1e-6,
            "energy {} above ceiling {}", r.total_energy(), max_power * span);
    }

    #[test]
    fn fifo_is_preserved_per_core(script in arb_script()) {
        let r = run_scripted(script);
        let mut per_core: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for o in r.outcomes() {
            if let (Some((core, _)), Some(start)) = (o.assignment, o.start) {
                let last = per_core.entry(core).or_insert(f64::NEG_INFINITY);
                prop_assert!(start >= *last, "core {core} regressed");
                *last = start;
            }
        }
    }

    #[test]
    fn telemetry_samples_once_per_arrival(script in arb_script()) {
        let r = run_scripted(script);
        prop_assert_eq!(r.telemetry().queue_depth.len(), r.window());
        for w in r.telemetry().queue_depth.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "telemetry out of order");
        }
    }

    #[test]
    fn reruns_are_bit_identical(script in arb_script()) {
        let a = run_scripted(script.clone());
        let b = run_scripted(script);
        prop_assert_eq!(a.outcomes(), b.outcomes());
        prop_assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn budget_monotonicity_under_any_mapper(
        script in arb_script(),
        factors in prop::collection::vec(0.05f64..2.0, 2..4),
    ) {
        let s = scenario();
        let trace = s.trace(0);
        let mut sorted = factors.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut last_completed = 0usize;
        for factor in sorted {
            let starved = s.with_budget_factor(factor);
            let mut mapper = ScriptedMapper { script: script.clone(), next: 0 };
            let r = Simulation::new(&starved, &trace).run(&mut mapper);
            prop_assert!(r.completed() >= last_completed,
                "larger budget completed fewer tasks");
            last_completed = r.completed();
        }
    }
}
