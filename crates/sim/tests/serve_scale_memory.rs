//! The mega-scale acceptance run: a 10,000-core templated cluster serving
//! 1,000,000 streamed arrivals from the λ-scaled bursty source, under the
//! live-byte tracking allocator from `serve_memory.rs`. Resident memory
//! must plateau after warm-up — it tracks in-flight work (bounded by the
//! cluster and burst depth), not the million-arrival stream length — and
//! the templated topology keeps the fixed footprint O(templates), not
//! O(nodes).
//!
//! The whole file is a single `#[test]` in its own integration binary so no
//! concurrent test pollutes the global allocation accounting.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

use ecds_cluster::{ClusterGenConfig, PState};
use ecds_sim::{
    Assignment, ImmediateDiscipline, Mapper, Scenario, ServeConfig, ServeSession, SimConfig,
    SystemView,
};
use ecds_workload::{BurstPattern, BurstyArrivalSource, Task, WorkloadConfig};

/// System allocator wrapper tracking live bytes and their high-water mark.
struct LiveBytesAlloc;

static LIVE: AtomicI64 = AtomicI64::new(0);
static HIGH_WATER: AtomicI64 = AtomicI64::new(0);

fn record_alloc(size: usize) {
    let live = LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    HIGH_WATER.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for LiveBytesAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        record_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: LiveBytesAlloc = LiveBytesAlloc;

fn high_water() -> i64 {
    HIGH_WATER.load(Ordering::Relaxed)
}

/// A deliberately cheap mapper (core = id mod cores, fastest P-state): the
/// test measures the serving loop's memory behaviour at cluster scale, not
/// scheduling cost — `BENCH_scale.json` carries the real decision rates.
struct ModuloMapper {
    cores: usize,
}

impl Mapper for ModuloMapper {
    fn assign(&mut self, task: &Task, _view: &SystemView<'_>) -> Option<Assignment> {
        Some(Assignment {
            core: task.id.0 % self.cores,
            pstate: PState::P0,
        })
    }
}

const WARMUP_ARRIVALS: u64 = 100_000;
const TOTAL_ARRIVALS: u64 = 1_000_000;

#[test]
fn ten_thousand_cores_serve_a_million_arrivals_in_bounded_memory() {
    // 2,400 nodes stamped from 8 templates: ≈15k cores expected, and the
    // whole topology + exec table stay O(templates) to build and hold.
    // Bounded retention forbids an energy budget (compaction destroys the
    // exhaustion history a budget check would need).
    let scenario = Scenario::with_configs(
        7,
        ClusterGenConfig::scaled(2_400, 8),
        WorkloadConfig::small_for_tests(),
    )
    .with_sim_config(SimConfig::unconstrained());
    let total_cores = scenario.cluster().total_cores();
    assert!(
        total_cores >= 10_000,
        "scenario must reach the 10⁴-core scale; got {total_cores}"
    );

    // λ scales with the cluster so the mega-cluster sees the paper's
    // subscription level instead of idling at paper-absolute rates.
    let pattern = BurstPattern::scaled_to_cluster(1_000, total_cores);
    let mut source = BurstyArrivalSource::new(
        pattern,
        scenario.workload(),
        scenario.table(),
        scenario.seeds(),
        0,
    );
    let mut mapper = ModuloMapper { cores: total_cores };
    let mut discipline = ImmediateDiscipline::new(&mut mapper);
    let cfg = ServeConfig::streaming(8, 64, TOTAL_ARRIVALS);
    let mut session = ServeSession::new(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        cfg,
        &mut source,
        &mut discipline,
    );

    // Warm-up: grow every retained buffer (event queue, telemetry fold
    // window, per-core energy logs between compactions) to steady state.
    let mut max_resident = 0;
    while session.arrivals_pulled() < WARMUP_ARRIVALS {
        assert!(
            session.step(&mut source, &mut discipline),
            "infinite source must not drain during warm-up"
        );
        max_resident = max_resident.max(session.resident_tasks());
    }
    let warm_high_water = high_water();

    // Serve ten times the warm-up volume: any per-arrival leak would track
    // stream length and blow through the plateau bound.
    while session.step(&mut source, &mut discipline) {
        max_resident = max_resident.max(session.resident_tasks());
    }
    let final_high_water = high_water();

    let summary = session.finish_summary(&discipline);
    assert_eq!(summary.arrivals, TOTAL_ARRIVALS);
    assert_eq!(
        summary.tally.retired, TOTAL_ARRIVALS,
        "every settled task must retire out of resident memory"
    );
    assert!(summary.total_energy.is_finite() && summary.total_energy > 0.0);

    // Resident tasks track in-flight work — bounded by cores plus the
    // burst backlog, far below the million-arrival stream.
    assert!(
        max_resident < 4 * total_cores,
        "resident tasks must stay bounded; peak was {max_resident}"
    );

    // The plateau: deterministic run, so this bound cannot flake.
    let slack = warm_high_water / 2;
    assert!(
        final_high_water <= warm_high_water + slack,
        "live-byte high-water mark grew past the plateau: warm-up {warm_high_water} B, \
         final {final_high_water} B"
    );
}
