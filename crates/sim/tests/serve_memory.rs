//! Proof that the serving loop runs in bounded memory: 120k arrivals from
//! the *infinite* bursty source, under a live-byte tracking allocator (the
//! counting-allocator machinery from `crates/core/tests/alloc_free.rs`,
//! extended from call counts to a live-byte high-water mark). After a
//! warm-up window has sized every retained buffer, the high-water mark must
//! plateau: completed-task state is retired into the tally, telemetry is
//! folded, and energy logs are compacted, so resident memory tracks
//! in-flight work — not stream length.
//!
//! The whole file is a single `#[test]` in its own integration binary so no
//! concurrent test pollutes the global allocation accounting.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

use ecds_cluster::PState;
use ecds_sim::{
    Assignment, ImmediateDiscipline, Mapper, Scenario, ServeConfig, ServeSession, SimConfig,
    SystemView,
};
use ecds_workload::{BurstyArrivalSource, Task};

/// System allocator wrapper that tracks live bytes and their high-water
/// mark.
struct LiveBytesAlloc;

static LIVE: AtomicI64 = AtomicI64::new(0);
static HIGH_WATER: AtomicI64 = AtomicI64::new(0);

fn record_alloc(size: usize) {
    let live = LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    HIGH_WATER.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for LiveBytesAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        record_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: LiveBytesAlloc = LiveBytesAlloc;

fn high_water() -> i64 {
    HIGH_WATER.load(Ordering::Relaxed)
}

/// A deliberately cheap mapper (core = id mod cores, fastest P-state): the
/// test measures the serving loop's memory behaviour, not scheduling cost.
struct ModuloMapper {
    cores: usize,
}

impl Mapper for ModuloMapper {
    fn assign(&mut self, task: &Task, _view: &SystemView<'_>) -> Option<Assignment> {
        Some(Assignment {
            core: task.id.0 % self.cores,
            pstate: PState::P0,
        })
    }
}

const WARMUP_ARRIVALS: u64 = 20_000;
const TOTAL_ARRIVALS: u64 = 120_000;

#[test]
fn live_bytes_plateau_over_120k_streamed_arrivals() {
    // Bounded retention forbids an energy budget (compaction destroys the
    // exhaustion history a budget check would need).
    let scenario = Scenario::small_for_tests(7).with_sim_config(SimConfig::unconstrained());
    let mut source = BurstyArrivalSource::new(
        scenario.workload().arrivals.clone(),
        scenario.workload(),
        scenario.table(),
        scenario.seeds(),
        0,
    );
    let mut mapper = ModuloMapper {
        cores: scenario.cluster().total_cores(),
    };
    let mut discipline = ImmediateDiscipline::new(&mut mapper);
    let cfg = ServeConfig::streaming(8, 64, TOTAL_ARRIVALS);
    let mut session = ServeSession::new(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        cfg,
        &mut source,
        &mut discipline,
    );

    // Warm-up: grow every retained buffer (event queue, telemetry fold
    // window, energy logs between compactions) to its steady-state size.
    let mut max_resident = 0;
    while session.arrivals_pulled() < WARMUP_ARRIVALS {
        assert!(
            session.step(&mut source, &mut discipline),
            "infinite source must not drain during warm-up"
        );
        max_resident = max_resident.max(session.resident_tasks());
    }
    let warm_high_water = high_water();

    // Serve five times the warm-up volume. If any per-arrival state
    // leaked — outcomes kept, telemetry unfolded, energy logs uncompacted —
    // the high-water mark would grow with stream length and blow past the
    // plateau bound.
    while session.step(&mut source, &mut discipline) {
        max_resident = max_resident.max(session.resident_tasks());
    }
    let final_high_water = high_water();

    let summary = session.finish_summary(&discipline);
    assert_eq!(summary.arrivals, TOTAL_ARRIVALS);
    assert_eq!(
        summary.tally.retired, TOTAL_ARRIVALS,
        "every settled task must retire out of resident memory"
    );
    assert!(summary.total_energy.is_finite() && summary.total_energy > 0.0);

    // Resident tasks track in-flight work, not stream length.
    assert!(
        max_resident < 4_000,
        "resident tasks must stay bounded; peak was {max_resident}"
    );

    // The plateau: the post-warm-up peak may wiggle with burst phase, but
    // must not track the 5x longer tail of the stream. (The run is fully
    // deterministic, so this bound cannot flake.)
    let slack = warm_high_water / 2;
    assert!(
        final_high_water <= warm_high_water + slack,
        "live-byte high-water mark grew past the plateau: warm-up {warm_high_water} B, \
         final {final_high_water} B"
    );
}
