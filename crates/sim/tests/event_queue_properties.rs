//! Property tests of the [`EventQueue`] ordering contract — the invariants
//! every commitment discipline now inherits from the unified engine:
//!
//! 1. pops are non-decreasing in time;
//! 2. at equal times, completions pop before arrivals (a core freed at
//!    instant `t` is visible to work mapped at `t`);
//! 3. within one `(time, kind-rank)` class, insertion order is preserved
//!    (FIFO) — the final, total tie-break that makes trials reproducible
//!    bit-for-bit.

use ecds_sim::{EventKind, EventQueue};
use ecds_workload::TaskId;
use proptest::prelude::*;

/// One scripted push: a small time grid (to force plenty of exact ties), a
/// completion flag, and a payload id.
fn arb_pushes() -> impl Strategy<Value = Vec<(u8, bool, usize)>> {
    prop::collection::vec((0u8..6, prop::bool::ANY, 0usize..64), 1..40)
}

fn build(pushes: &[(u8, bool, usize)]) -> EventQueue {
    let mut q = EventQueue::new();
    for &(slot, completion, id) in pushes {
        let time = slot as f64;
        let kind = if completion {
            EventKind::Completion {
                core: id % 8,
                task: TaskId(id),
            }
        } else {
            EventKind::Arrival(TaskId(id))
        };
        q.push(time, kind);
    }
    q
}

fn rank(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Completion { .. } => 0,
        EventKind::Arrival(_) => 1,
    }
}

fn payload(kind: &EventKind) -> usize {
    match kind {
        EventKind::Completion { task, .. } => task.0,
        EventKind::Arrival(task) => task.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pops_are_time_ordered(pushes in arb_pushes()) {
        let mut q = build(&pushes);
        let mut last = f64::NEG_INFINITY;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last, "time went backwards: {} after {last}", e.time);
            last = e.time;
        }
    }

    #[test]
    fn completions_pop_before_arrivals_at_equal_times(pushes in arb_pushes()) {
        let mut q = build(&pushes);
        let mut prev: Option<(f64, u8)> = None;
        while let Some(e) = q.pop() {
            let r = rank(&e.kind);
            if let Some((pt, pr)) = prev {
                if e.time == pt {
                    prop_assert!(
                        r >= pr,
                        "arrival popped before completion at t={pt}"
                    );
                }
            }
            prev = Some((e.time, r));
        }
    }

    #[test]
    fn insertion_order_is_the_final_tie_break(pushes in arb_pushes()) {
        let mut q = build(&pushes);
        // Expected order within each (time, rank) class = push order.
        let mut popped: Vec<(f64, u8, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, rank(&e.kind), payload(&e.kind)));
        }
        // Project the pushes per class and compare against the pops.
        for slot in 0u8..6 {
            for completion in [true, false] {
                let expected: Vec<usize> = pushes
                    .iter()
                    .filter(|&&(s, c, _)| s == slot && c == completion)
                    .map(|&(_, _, id)| id)
                    .collect();
                let r = u8::from(!completion);
                let got: Vec<usize> = popped
                    .iter()
                    .filter(|&&(t, pr, _)| t == slot as f64 && pr == r)
                    .map(|&(_, _, id)| id)
                    .collect();
                prop_assert_eq!(
                    &expected, &got,
                    "class (t={}, completion={}) not FIFO", slot, completion
                );
            }
        }
    }

    #[test]
    fn every_push_pops_exactly_once(pushes in arb_pushes()) {
        let mut q = build(&pushes);
        prop_assert_eq!(q.len(), pushes.len());
        let mut n = 0usize;
        while q.pop().is_some() {
            n += 1;
        }
        prop_assert_eq!(n, pushes.len());
        prop_assert!(q.is_empty());
    }
}
