//! Property tests of the [`EventQueue`] ordering contract — the invariants
//! every commitment discipline now inherits from the unified engine:
//!
//! 1. pops are non-decreasing in time;
//! 2. at equal times, completions pop before arrivals (a core freed at
//!    instant `t` is visible to work mapped at `t`);
//! 3. within one `(time, kind-rank)` class, insertion order is preserved
//!    (FIFO) — the final, total tie-break that makes trials reproducible
//!    bit-for-bit.

use ecds_sim::{EventKind, EventQueue};
use ecds_workload::TaskId;
use proptest::prelude::*;

/// One scripted push: a small time grid (to force plenty of exact ties), a
/// completion flag, and a payload id.
fn arb_pushes() -> impl Strategy<Value = Vec<(u8, bool, usize)>> {
    prop::collection::vec((0u8..6, prop::bool::ANY, 0usize..64), 1..40)
}

fn build(pushes: &[(u8, bool, usize)]) -> EventQueue {
    let mut q = EventQueue::new();
    for &(slot, completion, id) in pushes {
        let time = slot as f64;
        let kind = if completion {
            EventKind::Completion {
                core: id % 8,
                task: TaskId(id),
            }
        } else {
            EventKind::Arrival(TaskId(id))
        };
        q.push(time, kind);
    }
    q
}

fn rank(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Completion { .. } => 0,
        EventKind::Arrival(_) => 1,
    }
}

fn payload(kind: &EventKind) -> usize {
    match kind {
        EventKind::Completion { task, .. } => task.0,
        EventKind::Arrival(task) => task.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pops_are_time_ordered(pushes in arb_pushes()) {
        let mut q = build(&pushes);
        let mut last = f64::NEG_INFINITY;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last, "time went backwards: {} after {last}", e.time);
            last = e.time;
        }
    }

    #[test]
    fn completions_pop_before_arrivals_at_equal_times(pushes in arb_pushes()) {
        let mut q = build(&pushes);
        let mut prev: Option<(f64, u8)> = None;
        while let Some(e) = q.pop() {
            let r = rank(&e.kind);
            if let Some((pt, pr)) = prev {
                if e.time == pt {
                    prop_assert!(
                        r >= pr,
                        "arrival popped before completion at t={pt}"
                    );
                }
            }
            prev = Some((e.time, r));
        }
    }

    #[test]
    fn insertion_order_is_the_final_tie_break(pushes in arb_pushes()) {
        let mut q = build(&pushes);
        // Expected order within each (time, rank) class = push order.
        let mut popped: Vec<(f64, u8, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, rank(&e.kind), payload(&e.kind)));
        }
        // Project the pushes per class and compare against the pops.
        for slot in 0u8..6 {
            for completion in [true, false] {
                let expected: Vec<usize> = pushes
                    .iter()
                    .filter(|&&(s, c, _)| s == slot && c == completion)
                    .map(|&(_, _, id)| id)
                    .collect();
                let r = u8::from(!completion);
                let got: Vec<usize> = popped
                    .iter()
                    .filter(|&&(t, pr, _)| t == slot as f64 && pr == r)
                    .map(|&(_, _, id)| id)
                    .collect();
                prop_assert_eq!(
                    &expected, &got,
                    "class (t={}, completion={}) not FIFO", slot, completion
                );
            }
        }
    }

    #[test]
    fn every_push_pops_exactly_once(pushes in arb_pushes()) {
        let mut q = build(&pushes);
        prop_assert_eq!(q.len(), pushes.len());
        let mut n = 0usize;
        while q.pop().is_some() {
            n += 1;
        }
        prop_assert_eq!(n, pushes.len());
        prop_assert!(q.is_empty());
    }
}

/// Satellite pin for checkpointing at depth: a 10⁵-event queue snapshots
/// into exactly one right-sized vector (no heap clone, no pop loop, no
/// over-allocation), its encoded checkpoint section is the tight linear
/// size the serve codec implies (33 bytes per event + two `u64` headers),
/// and `from_parts` rebuilds a queue that pops bit-identically.
#[test]
fn depth_1e5_snapshot_is_right_sized_and_roundtrips() {
    const DEPTH: usize = 100_000;
    let mut q = EventQueue::with_capacity(DEPTH);
    // Deterministic pseudo-shuffled times with plenty of exact ties, both
    // event kinds interleaved.
    for i in 0..DEPTH {
        let time = ((i * 7919) % 1013) as f64 * 0.5;
        let kind = if i % 3 == 0 {
            EventKind::Completion {
                core: i % 97,
                task: TaskId(i),
            }
        } else {
            EventKind::Arrival(TaskId(i))
        };
        q.push(time, kind);
    }

    let snap = q.snapshot();
    assert_eq!(snap.len(), DEPTH);
    assert_eq!(
        snap.capacity(),
        DEPTH,
        "snapshot must allocate exactly one len-sized vector"
    );

    // Snapshot is already in pop order: (time, rank, seq) non-decreasing.
    for w in snap.windows(2) {
        let key = |e: &(f64, EventKind, u64)| (e.0, rank(&e.1), e.2);
        assert!(key(&w[0]) <= key(&w[1]), "snapshot not in pop order");
    }

    // Encoded exactly as the serve checkpoint does: next_seq + len headers,
    // then per event f64 time (8) + kind tag (1) + two u64 payload words
    // (16) + u64 seq (8).
    let mut enc = ecds_persist::Encoder::new();
    enc.put_u64(q.next_seq());
    enc.put_u64(snap.len() as u64);
    for &(time, kind, seq) in &snap {
        enc.put_f64(time);
        match kind {
            EventKind::Arrival(task) => {
                enc.put_u8(0);
                enc.put_u64(task.0 as u64);
                enc.put_u64(0);
            }
            EventKind::Completion { core, task } => {
                enc.put_u8(1);
                enc.put_u64(core as u64);
                enc.put_u64(task.0 as u64);
            }
        }
        enc.put_u64(seq);
    }
    assert_eq!(
        enc.as_slice().len(),
        16 + DEPTH * 33,
        "queue checkpoint section must stay tightly linear in depth"
    );

    let mut rebuilt = EventQueue::from_parts(q.next_seq(), snap);
    assert_eq!(rebuilt.next_seq(), q.next_seq());
    loop {
        match (q.pop(), rebuilt.pop()) {
            (None, None) => break,
            (Some(a), Some(b)) => {
                assert_eq!(a.time.to_bits(), b.time.to_bits());
                assert_eq!(a.kind, b.kind);
            }
            _ => panic!("queues drained at different depths"),
        }
    }
}
