//! Result statistics and presentation for the experiment harness.
//!
//! The paper reports every experiment as a box-and-whiskers plot of missed
//! deadlines over 50 trials (Figures 2–6) plus headline medians and
//! percentage improvements in the text. This crate computes those summaries
//! ([`BoxStats`]: quartiles, Tukey whiskers, outliers) and renders them as
//! ASCII box plots, markdown tables, and CSV — so the bench harness can
//! regenerate each figure as text.
//!
//! # Example
//!
//! ```
//! use ecds_stats::BoxStats;
//!
//! let samples = [1.0, 2.0, 3.0, 4.0, 100.0];
//! let stats = BoxStats::from_samples(&samples).unwrap();
//! assert_eq!(stats.median, 3.0);
//! assert_eq!(stats.outliers_hi, 1); // 100.0 is beyond the upper whisker
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod boxplot;
pub mod compare;
pub mod csv;
pub mod mannwhitney;
pub mod sparkline;
pub mod summary;
pub mod table;

pub use boxplot::render_boxplots;
pub use compare::{improvement_pct, Comparison};
pub use csv::CsvWriter;
pub use mannwhitney::{mann_whitney_u, MannWhitney};
pub use sparkline::{sparkline, sparkline_row};
pub use summary::BoxStats;
pub use table::MarkdownTable;
