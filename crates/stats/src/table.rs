//! Minimal markdown table builder for experiment reports.

/// A markdown table accumulated row by row.
#[derive(Debug, Clone)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&render_row(&self.header, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        let _ = cols;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = MarkdownTable::new(&["name", "median"]);
        t.push_row(vec!["SQ/none".into(), "375.5".into()]);
        t.push_row(vec!["LL/en+rob".into(), "226".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|-"));
        assert!(lines[2].contains("SQ/none"));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn len_and_empty() {
        let mut t = MarkdownTable::new(&["a"]);
        assert!(t.is_empty());
        t.push_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = MarkdownTable::new(&[]);
    }
}
