//! Percentage comparisons between experiment variants — the numbers the
//! paper quotes in Sec. VII ("at least a 13% improvement in each heuristic
//! due to filtering").

/// Relative improvement of `new` over `baseline` for a lower-is-better
/// metric (missed deadlines), in percent: positive means `new` is better.
///
/// Returns `None` when the baseline is zero (improvement undefined).
pub fn improvement_pct(baseline: f64, new: f64) -> Option<f64> {
    if baseline == 0.0 {
        None
    } else {
        Some((baseline - new) / baseline * 100.0)
    }
}

/// A labeled baseline-vs-variant comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Label of the baseline series.
    pub baseline_label: String,
    /// Label of the compared series.
    pub variant_label: String,
    /// Baseline metric value.
    pub baseline: f64,
    /// Variant metric value.
    pub variant: f64,
}

impl Comparison {
    /// The improvement percentage (see [`improvement_pct`]).
    pub fn improvement(&self) -> Option<f64> {
        improvement_pct(self.baseline, self.variant)
    }

    /// One-line report, e.g.
    /// `"LL/en+rob vs LL/none: 226.0 vs 381.0 (+40.7%)"`.
    pub fn render(&self) -> String {
        match self.improvement() {
            Some(pct) => format!(
                "{} vs {}: {:.1} vs {:.1} ({:+.1}%)",
                self.variant_label, self.baseline_label, self.variant, self.baseline, pct
            ),
            None => format!(
                "{} vs {}: {:.1} vs {:.1} (baseline is zero)",
                self.variant_label, self.baseline_label, self.variant, self.baseline
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_arithmetic() {
        // Paper: Random rob improves 561.5 → 335.5, "a 22.6% improvement"
        // ... actually (561.5-335.5)/561.5 = 40.2%; the paper's 22.6% is of
        // the window. Both conventions appear; we use relative-to-baseline.
        let pct = improvement_pct(561.5, 335.5).unwrap();
        assert!((pct - 40.249).abs() < 0.01);
    }

    #[test]
    fn worsening_is_negative() {
        let pct = improvement_pct(100.0, 103.45).unwrap();
        assert!(pct < 0.0);
    }

    #[test]
    fn zero_baseline_is_none() {
        assert_eq!(improvement_pct(0.0, 5.0), None);
    }

    #[test]
    fn comparison_render_contains_labels_and_pct() {
        let c = Comparison {
            baseline_label: "LL/none".into(),
            variant_label: "LL/en+rob".into(),
            baseline: 381.0,
            variant: 226.0,
        };
        let s = c.render();
        assert!(s.contains("LL/en+rob"));
        assert!(s.contains("LL/none"));
        assert!(s.contains('%'));
        assert!((c.improvement().unwrap() - 40.68).abs() < 0.01);
    }

    #[test]
    fn zero_baseline_render_does_not_panic() {
        let c = Comparison {
            baseline_label: "a".into(),
            variant_label: "b".into(),
            baseline: 0.0,
            variant: 5.0,
        };
        assert!(c.render().contains("baseline is zero"));
    }
}
