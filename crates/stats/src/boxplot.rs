//! ASCII box-and-whiskers rendering — the textual analogue of the paper's
//! Figures 2–6.
//!
//! Output format (one row per labeled series, shared horizontal scale):
//!
//! ```text
//! SQ/none      |        |-----[  ====|====  ]------|          * | median 375.5
//! ```
//!
//! `[` … `]` span Q1–Q3, `|` inside is the median, dashes are whiskers, and
//! `*` marks outliers (collapsed per side).

use crate::summary::BoxStats;

/// Renders labeled box plots on a shared scale, `width` columns wide
/// (minimum 20). Returns a multi-line string ending in a scale ruler.
pub fn render_boxplots(series: &[(String, BoxStats)], width: usize) -> String {
    let width = width.max(20);
    if series.is_empty() {
        return String::from("(no series)\n");
    }
    let lo = series
        .iter()
        .map(|(_, s)| s.min)
        .fold(f64::INFINITY, f64::min);
    let hi = series
        .iter()
        .map(|(_, s)| s.max)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = if (hi - lo).abs() < f64::EPSILON {
        1.0
    } else {
        hi - lo
    };
    let label_width = series
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(0)
        .max(8);
    let col = |x: f64| -> usize { (((x - lo) / span) * (width - 1) as f64).round() as usize };

    let mut out = String::new();
    for (label, s) in series {
        let mut row = vec![b' '; width];
        // Whiskers.
        row[col(s.whisker_lo)..=col(s.whisker_hi)].fill(b'-');
        // Box.
        row[col(s.q1)..=col(s.q3)].fill(b'=');
        row[col(s.q1)] = b'[';
        row[col(s.q3)] = b']';
        row[col(s.median)] = b'|';
        // Outlier markers.
        if s.outliers_lo > 0 {
            row[col(s.min)] = b'*';
        }
        if s.outliers_hi > 0 {
            row[col(s.max)] = b'*';
        }
        out.push_str(&format!(
            "{label:<label_width$} {} median {:.1}\n",
            String::from_utf8(row).expect("ascii"),
            s.median
        ));
    }
    // Scale ruler.
    out.push_str(&format!(
        "{:<label_width$} {:<w2$}{:>w2$}\n",
        "",
        format!("{lo:.0}"),
        format!("{hi:.0}"),
        w2 = width / 2,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(samples: &[f64]) -> BoxStats {
        BoxStats::from_samples(samples).unwrap()
    }

    #[test]
    fn renders_one_row_per_series_plus_ruler() {
        let series = vec![
            ("a".to_string(), stats(&[1.0, 2.0, 3.0, 4.0, 5.0])),
            ("bb".to_string(), stats(&[2.0, 3.0, 4.0])),
        ];
        let out = render_boxplots(&series, 40);
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("median 3.0"));
    }

    #[test]
    fn median_marker_inside_box() {
        let series = vec![("x".to_string(), stats(&[0.0, 25.0, 50.0, 75.0, 100.0]))];
        let out = render_boxplots(&series, 60);
        let row = out.lines().next().unwrap();
        let open = row.find('[').unwrap();
        let close = row.find(']').unwrap();
        let med = row.find('|').unwrap();
        assert!(open < med && med < close);
    }

    #[test]
    fn outliers_marked_with_star() {
        let series = vec![("x".to_string(), stats(&[1.0, 2.0, 3.0, 4.0, 100.0]))];
        let out = render_boxplots(&series, 60);
        assert!(out.lines().next().unwrap().contains('*'));
    }

    #[test]
    fn degenerate_all_equal_does_not_panic() {
        let series = vec![("x".to_string(), stats(&[5.0; 10]))];
        let out = render_boxplots(&series, 30);
        assert!(out.contains("median 5.0"));
    }

    #[test]
    fn empty_series_has_placeholder() {
        assert_eq!(render_boxplots(&[], 40), "(no series)\n");
    }

    #[test]
    fn width_floor_is_enforced() {
        let series = vec![("x".to_string(), stats(&[1.0, 2.0, 3.0]))];
        // Tiny widths are clamped to 20 rather than panicking.
        let out = render_boxplots(&series, 1);
        assert!(out.lines().next().unwrap().len() >= 20);
    }
}
