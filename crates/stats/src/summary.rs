//! Five-number summaries with Tukey whiskers.

/// A box-and-whiskers summary of a sample.
///
/// Quartiles use linear interpolation between order statistics (R's
/// default, "type 7"); whiskers extend to the most extreme data points
/// within 1.5 × IQR of the quartiles (Tukey's rule, the convention used by
/// the paper's plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Sample size.
    pub n: usize,
    /// Sample minimum.
    pub min: f64,
    /// Lower whisker (smallest point ≥ `q1 − 1.5·IQR`).
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (largest point ≤ `q3 + 1.5·IQR`).
    pub whisker_hi: f64,
    /// Sample maximum.
    pub max: f64,
    /// Sample mean.
    pub mean: f64,
    /// Count of points below the lower whisker.
    pub outliers_lo: usize,
    /// Count of points above the upper whisker.
    pub outliers_hi: usize,
}

impl BoxStats {
    /// Summarizes `samples`. Returns `None` for an empty slice or any
    /// non-finite sample.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let q1 = quantile_type7(&sorted, 0.25);
        let median = quantile_type7(&sorted, 0.5);
        let q3 = quantile_type7(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(sorted[n - 1]);
        let outliers_lo = sorted.iter().filter(|&&x| x < lo_fence).count();
        let outliers_hi = sorted.iter().filter(|&&x| x > hi_fence).count();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        Some(Self {
            n,
            min: sorted[0],
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            max: sorted[n - 1],
            mean,
            outliers_lo,
            outliers_hi,
        })
    }

    /// The interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation quantile (R type 7) of a sorted slice.
fn quantile_type7(sorted: &[f64], p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_five_point_summary() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.outliers_lo + s.outliers_hi, 0);
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 5.0);
    }

    #[test]
    fn even_count_interpolates_median() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn paper_style_median_of_50() {
        // Medians like 375.5 arise from 50 samples; check interpolation.
        let samples: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let s = BoxStats::from_samples(&samples).unwrap();
        assert_eq!(s.median, 25.5);
    }

    #[test]
    fn outliers_are_detected_and_whiskers_clamped() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(s.outliers_hi, 1);
        assert_eq!(s.whisker_hi, 4.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn low_outliers_detected() {
        let s = BoxStats::from_samples(&[-100.0, 10.0, 11.0, 12.0, 13.0]).unwrap();
        assert_eq!(s.outliers_lo, 1);
        assert_eq!(s.whisker_lo, 10.0);
    }

    #[test]
    fn single_sample_degenerates() {
        let s = BoxStats::from_samples(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn identical_samples_have_zero_iqr() {
        let s = BoxStats::from_samples(&[5.0; 20]).unwrap();
        assert_eq!(s.iqr(), 0.0);
        assert_eq!(s.outliers_lo + s.outliers_hi, 0);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(BoxStats::from_samples(&[]).is_none());
        assert!(BoxStats::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(BoxStats::from_samples(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = BoxStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }
}
