//! Unicode sparklines for time-series telemetry.

const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a one-line sparkline, scaling min→max onto the
/// eight block heights. An all-equal series renders as the lowest block.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return "?".repeat(values.len());
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '?'
            } else if span <= 0.0 {
                BLOCKS[0]
            } else {
                let idx = (((v - min) / span) * (BLOCKS.len() - 1) as f64).round() as usize;
                BLOCKS[idx.min(BLOCKS.len() - 1)]
            }
        })
        .collect()
}

/// A labeled sparkline row: `label  ▁▂▇█▃  [min .. max]`.
pub fn sparkline_row(label: &str, values: &[f64], label_width: usize) -> String {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if values.is_empty() {
        return format!("{label:<label_width$} (empty)");
    }
    format!(
        "{label:<label_width$} {} [{min:.2} .. {max:.2}]",
        sparkline(values)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_uses_full_block_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        assert_eq!(s.chars().count(), 8);
    }

    #[test]
    fn constant_series_is_flat() {
        let s = sparkline(&[5.0; 4]);
        assert_eq!(s, "▁▁▁▁");
    }

    #[test]
    fn empty_series_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn non_finite_values_marked() {
        let s = sparkline(&[1.0, f64::NAN, 2.0]);
        assert!(s.contains('?'));
    }

    #[test]
    fn row_includes_label_and_range() {
        let row = sparkline_row("queue", &[0.0, 2.0, 1.0], 8);
        assert!(row.starts_with("queue"));
        assert!(row.contains("[0.00 .. 2.00]"));
    }

    #[test]
    fn monotone_input_is_monotone_output() {
        let s: Vec<char> = sparkline(&[1.0, 2.0, 3.0, 4.0]).chars().collect();
        let heights: Vec<usize> = s
            .iter()
            .map(|c| BLOCKS.iter().position(|b| b == c).unwrap())
            .collect();
        assert!(heights.windows(2).all(|w| w[0] <= w[1]));
    }
}
