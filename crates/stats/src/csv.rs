//! Minimal CSV emission (no external dependency; fields are escaped per
//! RFC 4180 when they contain separators, quotes, or newlines).

/// Builds CSV text row by row.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    buf: String,
    columns: Option<usize>,
}

impl CsvWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one row. The first row fixes the column count.
    pub fn write_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert!(!cells.is_empty(), "row must have at least one cell");
        match self.columns {
            None => self.columns = Some(cells.len()),
            Some(n) => assert_eq!(n, cells.len(), "inconsistent column count"),
        }
        let row: Vec<String> = cells.iter().map(|c| escape(c.as_ref())).collect();
        self.buf.push_str(&row.join(","));
        self.buf.push('\n');
    }

    /// The CSV text so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the writer, returning the CSV text.
    pub fn into_string(self) -> String {
        self.buf
    }
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_plain_rows() {
        let mut w = CsvWriter::new();
        w.write_row(&["heuristic", "filter", "median"]);
        w.write_row(&["LL", "en+rob", "226"]);
        assert_eq!(w.as_str(), "heuristic,filter,median\nLL,en+rob,226\n");
    }

    #[test]
    fn escapes_commas_and_quotes() {
        let mut w = CsvWriter::new();
        w.write_row(&["a,b", "say \"hi\"", "line\nbreak"]);
        assert_eq!(w.as_str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
    }

    #[test]
    #[should_panic(expected = "inconsistent column count")]
    fn mismatched_columns_rejected() {
        let mut w = CsvWriter::new();
        w.write_row(&["a", "b"]);
        w.write_row(&["only-one"]);
    }

    #[test]
    fn into_string_round_trips() {
        let mut w = CsvWriter::new();
        w.write_row(&["x"]);
        assert_eq!(w.into_string(), "x\n");
    }
}
