//! Mann–Whitney U (Wilcoxon rank-sum) test — nonparametric significance
//! for "is variant A's missed-deadline distribution really lower than
//! B's?". The paper compares 50-trial box plots by eye; this makes the
//! comparisons quantitative without assuming normality.
//!
//! Implementation: U statistic with midranks for ties, normal
//! approximation with tie-corrected variance (standard for n ≥ ~20; the
//! experiment grids use n = 50 per cell).

/// Result of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Standardized z value (0 when the variance degenerates, e.g. all
    /// observations tied).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_two_sided: f64,
    /// Effect direction: negative when the first sample tends lower.
    pub effect: f64,
}

impl MannWhitney {
    /// `true` at the conventional 5% level.
    pub fn significant(&self) -> bool {
        self.p_two_sided < 0.05
    }
}

/// Runs the test on two samples. Returns `None` when either sample is
/// empty or any value is non-finite.
///
/// ```
/// use ecds_stats::mann_whitney_u;
///
/// let filtered:   Vec<f64> = (0..50).map(|i| 320.0 + (i % 7) as f64).collect();
/// let unfiltered: Vec<f64> = (0..50).map(|i| 420.0 + (i % 9) as f64).collect();
/// let test = mann_whitney_u(&filtered, &unfiltered).unwrap();
/// assert!(test.significant());
/// assert!(test.effect < 0.0); // the filtered sample tends lower
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitney> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    if a.iter().chain(b).any(|x| !x.is_finite()) {
        return None;
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;

    // Pool, sort, midrank.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = midrank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }

    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, group), _)| *group == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mean_u = n1 * n2 / 2.0;
    let n_tot = n1 + n2;
    let var_u =
        n1 * n2 / 12.0 * ((n_tot + 1.0) - tie_correction / (n_tot * (n_tot - 1.0)).max(1.0));
    let (z, p) = if var_u <= 0.0 {
        (0.0, 1.0)
    } else {
        // Continuity correction toward the mean.
        let diff = u1 - mean_u;
        let corrected = diff - 0.5 * diff.signum();
        let z = corrected / var_u.sqrt();
        (z, 2.0 * normal_sf(z.abs()))
    };
    Some(MannWhitney {
        u: u1,
        z,
        p_two_sided: p.min(1.0),
        effect: u1 / (n1 * n2) - 0.5, // rank-biserial / 2, sign = direction
    })
}

/// Standard normal survival function via the Abramowitz–Stegun 7.1.26
/// erf approximation (|error| < 1.5e-7, ample for reporting p-values).
fn normal_sf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * (1.0 - erf_approx(x))
}

fn erf_approx(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(!r.significant());
        assert!(r.p_two_sided > 0.9);
        assert!((r.effect).abs() < 1e-9);
    }

    #[test]
    fn clearly_separated_samples_are_significant() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 100.0 + i as f64).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.significant());
        assert!(r.p_two_sided < 1e-6);
        assert!(r.effect < -0.49, "a is uniformly lower: {}", r.effect);
    }

    #[test]
    fn direction_flips_with_order() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        let ab = mann_whitney_u(&a, &b).unwrap();
        let ba = mann_whitney_u(&b, &a).unwrap();
        assert!(ab.effect < 0.0);
        assert!(ba.effect > 0.0);
        assert!((ab.p_two_sided - ba.p_two_sided).abs() < 1e-12);
    }

    #[test]
    fn all_tied_degenerates_gracefully() {
        let a = [5.0; 10];
        let b = [5.0; 12];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.z, 0.0);
        assert_eq!(r.p_two_sided, 1.0);
    }

    #[test]
    fn handles_partial_ties_with_midranks() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [2.0, 3.0, 3.0, 4.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(
            r.p_two_sided > 0.05,
            "overlapping samples: p {}",
            r.p_two_sided
        );
        assert!(r.effect < 0.0);
    }

    #[test]
    fn empty_or_nan_inputs_rejected() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        assert!(mann_whitney_u(&[f64::NAN], &[1.0]).is_none());
    }

    #[test]
    fn normal_sf_matches_known_values() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.96) - 0.025).abs() < 5e-4);
        assert!((normal_sf(3.0) - 0.00135).abs() < 5e-5);
    }

    #[test]
    fn moderate_shift_has_moderate_p() {
        // Overlapping but shifted: p should be between the extremes.
        let a: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..25).map(|i| i as f64 + 5.0).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_two_sided > 1e-6 && r.p_two_sided < 0.5);
    }
}
