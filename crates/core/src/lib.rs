//! The paper's contribution: robustness-aware, energy-constrained
//! immediate-mode resource allocation (Sections IV and V).
//!
//! # Architecture
//!
//! Mapping one arriving task is a three-stage pipeline, assembled by
//! [`Scheduler`] (which implements [`ecds_sim::Mapper`]):
//!
//! 1. **Evaluate** — [`CandidateEvaluator`] enumerates every assignment
//!    (core × P-state) and computes the paper's four per-assignment
//!    quantities: expected execution time `EET`, expected completion time
//!    `ECT`, expected energy consumption `EEC`, and the robustness value
//!    `ρ(i,j,k,π,t_l,z)` — the probability the task meets its deadline
//!    under that assignment, obtained from the stochastic completion-time
//!    pmf of Sec. IV-B (shift + truncate + renormalize the executing task,
//!    convolve the queue, convolve the candidate).
//! 2. **Filter** — any chain of [`Filter`]s prunes the candidate list. The
//!    paper's two filters are provided: the [`EnergyFilter`] ("fair share"
//!    of the remaining energy budget, Eq. 6, with queue-depth-adaptive
//!    ζ_mul) and the [`RobustnessFilter`] (drop candidates with
//!    `ρ < ρ_thresh = 0.5`). An empty result discards the task.
//! 3. **Choose** — a [`Heuristic`] picks one surviving candidate:
//!    [`ShortestQueue`] (SQ), [`MinimumExpectedCompletionTime`] (MECT),
//!    [`LightestLoad`] (LL, the paper's new heuristic minimizing
//!    `EEC × (1 − ρ)`), or [`RandomChoice`].
//!
//! The 4 heuristics × 4 filter variants of the paper's Figures 2–5 are all
//! expressible through [`build_scheduler`].
//!
//! # Example
//!
//! ```
//! use ecds_core::{build_scheduler, FilterVariant, HeuristicKind};
//! use ecds_sim::{Scenario, Simulation};
//!
//! let scenario = Scenario::small_for_tests(42);
//! let trace = scenario.trace(0);
//! let mut mapper = build_scheduler(
//!     HeuristicKind::LightestLoad,
//!     FilterVariant::EnergyAndRobustness,
//!     &scenario,
//!     0, // trial index, seeds the Random heuristic's substream
//! );
//! let result = Simulation::new(&scenario, &trace).run(mapper.as_mut());
//! assert!(result.missed() <= result.window());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod candidate;
pub mod estimate;
pub mod factory;
pub mod filters;
pub mod heuristics;
pub mod robustness;
pub mod scheduler;
pub mod shard;

pub use candidate::{candidates_bit_eq, EvaluatedCandidate};
pub use estimate::{pending_completion_pmf, AssignmentEstimate, CandidateEvaluator};
pub use factory::{build_scheduler, FilterVariant, HeuristicKind};
pub use filters::energy::{EnergyFilter, ZetaMulPolicy};
pub use filters::robustness::RobustnessFilter;
pub use filters::{Filter, FilterCtx};
pub use heuristics::det_mect::DeterministicMct;
pub use heuristics::kpb::KPercentBest;
pub use heuristics::ll::LightestLoad;
pub use heuristics::mect::MinimumExpectedCompletionTime;
pub use heuristics::met::MinimumExecutionTime;
pub use heuristics::olb::OpportunisticLoadBalancing;
pub use heuristics::random::RandomChoice;
pub use heuristics::sq::ShortestQueue;
pub use heuristics::Heuristic;
pub use robustness::{core_robustness, system_robustness};
pub use scheduler::Scheduler;
pub use shard::ClassCandidate;
