//! Factory for the paper's 4 × 4 heuristic/filter grid.

use ecds_pmf::{ReductionPolicy, Stream};
use ecds_sim::Scenario;

use crate::filters::energy::EnergyFilter;
use crate::filters::robustness::RobustnessFilter;
use crate::filters::Filter;
use crate::heuristics::ll::LightestLoad;
use crate::heuristics::mect::MinimumExpectedCompletionTime;
use crate::heuristics::random::RandomChoice;
use crate::heuristics::sq::ShortestQueue;
use crate::heuristics::Heuristic;
use crate::scheduler::Scheduler;

/// The four heuristics of Sec. V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// Shortest Queue (Sec. V-B).
    ShortestQueue,
    /// Minimum Expected Completion Time (Sec. V-C).
    Mect,
    /// Lightest Load — the paper's new heuristic (Sec. V-D).
    LightestLoad,
    /// Uniform random baseline (Sec. V-E).
    Random,
}

impl HeuristicKind {
    /// All four, in the paper's figure order.
    pub const ALL: [HeuristicKind; 4] = [
        HeuristicKind::ShortestQueue,
        HeuristicKind::Mect,
        HeuristicKind::LightestLoad,
        HeuristicKind::Random,
    ];

    /// The figure label ("SQ", "MECT", "LL", "Random").
    pub fn label(&self) -> &'static str {
        match self {
            HeuristicKind::ShortestQueue => "SQ",
            HeuristicKind::Mect => "MECT",
            HeuristicKind::LightestLoad => "LL",
            HeuristicKind::Random => "Random",
        }
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The four filter variants of Figures 2–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterVariant {
    /// No filtering ("none").
    None,
    /// Energy filter only ("en").
    Energy,
    /// Robustness filter only ("rob").
    Robustness,
    /// Both filters ("en+rob") — the paper's best variant for every
    /// heuristic.
    EnergyAndRobustness,
}

impl FilterVariant {
    /// All four, in the paper's figure order.
    pub const ALL: [FilterVariant; 4] = [
        FilterVariant::None,
        FilterVariant::Energy,
        FilterVariant::Robustness,
        FilterVariant::EnergyAndRobustness,
    ];

    /// The figure label ("none", "en", "rob", "en+rob").
    pub fn label(&self) -> &'static str {
        match self {
            FilterVariant::None => "none",
            FilterVariant::Energy => "en",
            FilterVariant::Robustness => "rob",
            FilterVariant::EnergyAndRobustness => "en+rob",
        }
    }

    /// Builds the corresponding filter chain (energy first, then
    /// robustness — retain-only filters commute, so order affects only
    /// which filter short-circuits an empty set first).
    pub fn build(&self) -> Vec<Box<dyn Filter>> {
        match self {
            FilterVariant::None => vec![],
            FilterVariant::Energy => vec![Box::new(EnergyFilter::paper())],
            FilterVariant::Robustness => vec![Box::new(RobustnessFilter::paper())],
            FilterVariant::EnergyAndRobustness => vec![
                Box::new(EnergyFilter::paper()),
                Box::new(RobustnessFilter::paper()),
            ],
        }
    }
}

impl std::fmt::Display for FilterVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds one heuristic instance; `trial` seeds Random's substream (derived
/// from the scenario's master seed so whole grids reproduce from one u64).
pub fn build_heuristic(kind: HeuristicKind, scenario: &Scenario, trial: u64) -> Box<dyn Heuristic> {
    match kind {
        HeuristicKind::ShortestQueue => Box::new(ShortestQueue),
        HeuristicKind::Mect => Box::new(MinimumExpectedCompletionTime),
        HeuristicKind::LightestLoad => Box::new(LightestLoad),
        HeuristicKind::Random => Box::new(RandomChoice::new(scenario.seeds().seed(
            Stream::Heuristic,
            trial,
            0,
        ))),
    }
}

/// Builds a ready-to-run [`Scheduler`] for one cell of the paper's grid.
///
/// The scheduler's ledger budget is the scenario's ζ_max (infinite when the
/// scenario is unconstrained), and the default convolution reduction policy
/// is used.
pub fn build_scheduler(
    kind: HeuristicKind,
    variant: FilterVariant,
    scenario: &Scenario,
    trial: u64,
) -> Box<Scheduler> {
    let budget = scenario.energy_budget().unwrap_or(f64::INFINITY);
    Box::new(Scheduler::new(
        build_heuristic(kind, scenario, trial),
        variant.build(),
        budget,
        ReductionPolicy::default(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_sim::Simulation;

    #[test]
    fn labels_match_figures() {
        assert_eq!(HeuristicKind::ShortestQueue.label(), "SQ");
        assert_eq!(HeuristicKind::Mect.label(), "MECT");
        assert_eq!(HeuristicKind::LightestLoad.label(), "LL");
        assert_eq!(HeuristicKind::Random.label(), "Random");
        assert_eq!(FilterVariant::None.label(), "none");
        assert_eq!(FilterVariant::Energy.label(), "en");
        assert_eq!(FilterVariant::Robustness.label(), "rob");
        assert_eq!(FilterVariant::EnergyAndRobustness.label(), "en+rob");
    }

    #[test]
    fn variant_chains_have_expected_lengths() {
        assert_eq!(FilterVariant::None.build().len(), 0);
        assert_eq!(FilterVariant::Energy.build().len(), 1);
        assert_eq!(FilterVariant::Robustness.build().len(), 1);
        assert_eq!(FilterVariant::EnergyAndRobustness.build().len(), 2);
    }

    #[test]
    fn full_grid_builds_and_runs() {
        let s = ecds_sim::Scenario::small_for_tests(19);
        let trace = s.trace(0);
        for kind in HeuristicKind::ALL {
            for variant in FilterVariant::ALL {
                let mut sched = build_scheduler(kind, variant, &s, 0);
                let result = Simulation::new(&s, &trace).run(sched.as_mut());
                assert_eq!(result.window(), trace.len(), "{kind}/{variant}");
            }
        }
    }

    #[test]
    fn random_schedulers_reproduce_per_trial() {
        let s = ecds_sim::Scenario::small_for_tests(19);
        let trace = s.trace(0);
        let run = |trial: u64| {
            let mut sched = build_scheduler(HeuristicKind::Random, FilterVariant::None, &s, trial);
            Simulation::new(&s, &trace).run(sched.as_mut())
        };
        assert_eq!(run(0).outcomes(), run(0).outcomes());
        assert_ne!(run(0).outcomes(), run(1).outcomes());
    }

    #[test]
    fn display_impls() {
        assert_eq!(HeuristicKind::LightestLoad.to_string(), "LL");
        assert_eq!(FilterVariant::EnergyAndRobustness.to_string(), "en+rob");
    }
}
