//! A candidate assignment with its evaluated decision quantities.

use ecds_cluster::PState;

use crate::estimate::AssignmentEstimate;

/// One feasible assignment — a (core, P-state) pair — annotated with the
/// estimates every heuristic and filter consumes.
///
/// Candidates are produced in deterministic order (core-major, then
/// P-state from `P0` to `P4`), which fixes tie-breaking behaviour across
/// runs.
///
/// Like [`AssignmentEstimate`], deliberately not `PartialEq`: differential
/// suites compare candidates with [`EvaluatedCandidate::bit_eq`] (exact
/// `f64::to_bits` identity) rather than float `==`.
#[derive(Debug, Clone, Copy)]
pub struct EvaluatedCandidate {
    /// Flat core index.
    pub core: usize,
    /// P-state of the assignment.
    pub pstate: PState,
    /// The evaluated EET / ECT / EEC / ρ quadruple.
    pub est: AssignmentEstimate,
}

impl EvaluatedCandidate {
    /// `true` iff the assignments match and the estimates are bit-identical
    /// (see [`AssignmentEstimate::bit_eq`]).
    pub fn bit_eq(&self, other: &Self) -> bool {
        self.core == other.core && self.pstate == other.pstate && self.est.bit_eq(&other.est)
    }
}

/// `true` iff both candidate streams have the same length and match
/// pairwise under [`EvaluatedCandidate::bit_eq`] — the whole-stream
/// identity the evaluator's differential suites assert.
pub fn candidates_bit_eq(a: &[EvaluatedCandidate], b: &[EvaluatedCandidate]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bit_eq(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate() -> EvaluatedCandidate {
        EvaluatedCandidate {
            core: 3,
            pstate: PState::P2,
            est: AssignmentEstimate {
                eet: 10.0,
                ect: 25.0,
                eec: 600.0,
                rho: 0.75,
            },
        }
    }

    #[test]
    fn candidate_carries_estimates() {
        let c = candidate();
        assert_eq!(c.core, 3);
        assert_eq!(c.pstate, PState::P2);
        assert_eq!(c.est.rho, 0.75);
    }

    #[test]
    fn bit_eq_is_exact() {
        let a = candidate();
        let mut b = a;
        assert!(a.bit_eq(&b));
        assert!(a.est.bit_eq(&b.est));
        // An ulp-level perturbation breaks bit equality…
        b.est.ect = f64::from_bits(a.est.ect.to_bits() + 1);
        assert!(!a.bit_eq(&b));
        // …and so does a sign-of-zero difference float `==` would miss.
        let mut c = a;
        c.est.rho = 0.0;
        let mut d = a;
        d.est.rho = -0.0;
        assert!(!c.bit_eq(&d));
    }

    #[test]
    fn bit_eq_distinguishes_the_assignment_itself() {
        let a = candidate();
        let mut b = a;
        b.core = 4;
        assert!(!a.bit_eq(&b));
        let mut c = a;
        c.pstate = PState::P0;
        assert!(!a.bit_eq(&c));
    }

    #[test]
    fn slice_helper_requires_equal_lengths_and_pairs() {
        let a = candidate();
        assert!(candidates_bit_eq(&[a, a], &[a, a]));
        assert!(!candidates_bit_eq(&[a, a], &[a]));
        let mut b = a;
        b.est.eec = 601.0;
        assert!(!candidates_bit_eq(&[a], &[b]));
        assert!(candidates_bit_eq(&[], &[]));
    }
}
