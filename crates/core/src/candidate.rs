//! A candidate assignment with its evaluated decision quantities.

use ecds_cluster::PState;

use crate::estimate::AssignmentEstimate;

/// One feasible assignment — a (core, P-state) pair — annotated with the
/// estimates every heuristic and filter consumes.
///
/// Candidates are produced in deterministic order (core-major, then
/// P-state from `P0` to `P4`), which fixes tie-breaking behaviour across
/// runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatedCandidate {
    /// Flat core index.
    pub core: usize,
    /// P-state of the assignment.
    pub pstate: PState,
    /// The evaluated EET / ECT / EEC / ρ quadruple.
    pub est: AssignmentEstimate,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_carries_estimates() {
        let c = EvaluatedCandidate {
            core: 3,
            pstate: PState::P2,
            est: AssignmentEstimate {
                eet: 10.0,
                ect: 25.0,
                eec: 600.0,
                rho: 0.75,
            },
        };
        assert_eq!(c.core, 3);
        assert_eq!(c.pstate, PState::P2);
        assert_eq!(c.est.rho, 0.75);
    }
}
