//! The robustness filter (paper Sec. V-F).
//!
//! Eliminates assignments whose robustness value
//! `ρ(i,j,k,π,t_l,z)` — the probability of finishing the task by its
//! deadline — falls below a threshold. The paper found `ρ_thresh = 0.5`
//! limits the feasible set "without restricting a heuristic to only
//! high-performance (and therefore high energy consumption) P-state
//! assignments".

use ecds_pmf::Prob;
use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::filters::{Filter, FilterCtx};
use crate::shard::ClassCandidate;

/// The paper's robustness filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessFilter {
    threshold: Prob,
}

impl RobustnessFilter {
    /// The paper's tuned threshold `ρ_thresh = 0.5`.
    pub fn paper() -> Self {
        Self { threshold: 0.5 }
    }

    /// A custom threshold in `[0, 1]`.
    pub fn with_threshold(threshold: Prob) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be a probability"
        );
        Self { threshold }
    }

    /// The active threshold.
    pub fn threshold(&self) -> Prob {
        self.threshold
    }
}

impl Default for RobustnessFilter {
    fn default() -> Self {
        Self::paper()
    }
}

impl Filter for RobustnessFilter {
    fn name(&self) -> &'static str {
        "rob"
    }

    fn retain(
        &self,
        _task: &Task,
        _view: &SystemView<'_>,
        _ctx: &FilterCtx,
        candidates: &mut Vec<EvaluatedCandidate>,
    ) {
        candidates.retain(|c| c.est.rho >= self.threshold);
    }

    fn supports_indexed(&self) -> bool {
        true
    }

    fn retain_indexed(
        &self,
        _task: &Task,
        _view: &SystemView<'_>,
        _ctx: &FilterCtx,
        classes: &mut Vec<ClassCandidate>,
    ) {
        for class in classes.iter_mut() {
            for (pi, retained) in class.retained.iter_mut().enumerate() {
                *retained = *retained && class.ests[pi].rho >= self.threshold;
            }
        }
        classes.retain(ClassCandidate::any_retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::AssignmentEstimate;
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, Scenario};
    use ecds_workload::{TaskId, TaskTypeId};

    fn candidate(rho: f64) -> EvaluatedCandidate {
        EvaluatedCandidate {
            core: 0,
            pstate: PState::P0,
            est: AssignmentEstimate {
                eet: 1.0,
                ect: 1.0,
                eec: 1.0,
                rho,
            },
        }
    }

    fn apply(filter: &RobustnessFilter, cands: &mut Vec<EvaluatedCandidate>) {
        let s = Scenario::small_for_tests(4);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let ctx = FilterCtx {
            remaining_energy: 1.0,
            budget: 1.0,
        };
        let task = Task {
            id: TaskId(0),
            type_id: TaskTypeId(0),
            arrival: 0.0,
            deadline: 100.0,
            quantile: 0.5,
        };
        filter.retain(&task, &view, &ctx, cands);
    }

    #[test]
    fn keeps_candidates_at_or_above_threshold() {
        let f = RobustnessFilter::paper();
        let mut cands = vec![candidate(0.49), candidate(0.5), candidate(0.51)];
        apply(&f, &mut cands);
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.est.rho >= 0.5));
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let f = RobustnessFilter::with_threshold(0.0);
        let mut cands = vec![candidate(0.0), candidate(1.0)];
        apply(&f, &mut cands);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn one_threshold_keeps_only_certainties() {
        let f = RobustnessFilter::with_threshold(1.0);
        let mut cands = vec![candidate(0.999), candidate(1.0)];
        apply(&f, &mut cands);
        assert_eq!(cands.len(), 1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_threshold_rejected() {
        let _ = RobustnessFilter::with_threshold(1.5);
    }

    #[test]
    fn filter_name_is_rob() {
        assert_eq!(RobustnessFilter::paper().name(), "rob");
        assert_eq!(RobustnessFilter::paper().threshold(), 0.5);
    }
}
