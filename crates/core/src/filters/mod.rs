//! Filtering mechanisms (paper Sec. V-F).
//!
//! A filter "restrict\[s\] the set of feasible assignments a heuristic can
//! consider", adding energy-awareness and/or robustness-awareness to *any*
//! heuristic. Filters compose: the scheduler applies them in order, and if
//! the chain eliminates every candidate the task is discarded. The paper's
//! central result is that filter choice moves performance more than
//! heuristic choice.

pub mod energy;
pub mod robustness;

use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::shard::ClassCandidate;

/// Scheduler state a filter may consult.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterCtx {
    /// ζ(t_l): the heuristic's running estimate of remaining energy — the
    /// budget minus the EEC of every assignment made so far. This is the
    /// *scheduler's* ledger, not ground-truth consumption (Sec. V-F).
    pub remaining_energy: f64,
    /// ζ_max: the total budget for the window.
    pub budget: f64,
}

/// A feasible-set filter.
pub trait Filter: Send {
    /// Short name used in figures ("en", "rob").
    fn name(&self) -> &'static str;

    /// Removes infeasible candidates from `candidates` in place.
    fn retain(
        &self,
        task: &Task,
        view: &SystemView<'_>,
        ctx: &FilterCtx,
        candidates: &mut Vec<EvaluatedCandidate>,
    );

    /// `true` when [`Filter::retain_indexed`] reproduces this filter's
    /// feasibility decision on the equivalence-class form. Holds for any
    /// filter whose predicate depends only on the candidate's estimates
    /// and shared scheduler state (every member of a class carries
    /// bit-identical estimates). Default: `false`.
    fn supports_indexed(&self) -> bool {
        false
    }

    /// Narrows per-class P-state feasibility in place — clearing
    /// [`ClassCandidate::retained`] flags and dropping classes with no
    /// feasible P-state left — bit-identical to what [`Filter::retain`]
    /// keeps on the materialized stream. Only called when
    /// [`Filter::supports_indexed`] returns `true`.
    fn retain_indexed(
        &self,
        _task: &Task,
        _view: &SystemView<'_>,
        _ctx: &FilterCtx,
        _classes: &mut Vec<ClassCandidate>,
    ) {
        unreachable!("retain_indexed requires supports_indexed()")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::AssignmentEstimate;
    use ecds_cluster::PState;

    /// A filter that keeps nothing — exercises the discard path end to end.
    struct RejectAll;
    impl Filter for RejectAll {
        fn name(&self) -> &'static str {
            "reject-all"
        }
        fn retain(
            &self,
            _task: &Task,
            _view: &SystemView<'_>,
            _ctx: &FilterCtx,
            candidates: &mut Vec<EvaluatedCandidate>,
        ) {
            candidates.clear();
        }
    }

    #[test]
    fn filters_are_object_safe() {
        let f: Box<dyn Filter> = Box::new(RejectAll);
        assert_eq!(f.name(), "reject-all");
        let mut candidates = vec![EvaluatedCandidate {
            core: 0,
            pstate: PState::P0,
            est: AssignmentEstimate {
                eet: 1.0,
                ect: 1.0,
                eec: 1.0,
                rho: 1.0,
            },
        }];
        // A task/view are not needed by RejectAll; clearing suffices here.
        candidates.clear();
        assert!(candidates.is_empty());
    }
}
