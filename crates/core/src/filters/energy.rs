//! The energy filter (paper Sec. V-F, Eq. 6).
//!
//! Eliminates assignments whose expected energy consumption exceeds a "fair
//! share" of the remaining budget:
//!
//! `ζ_fair(t_l) = ζ_mul × ζ(t_l) / T_left(t_l)`
//!
//! where `ζ(t_l)` is the scheduler's remaining-energy ledger and
//! `T_left(t_l)` the tasks still to be served. The multiplier ζ_mul adapts
//! to the instantaneous average queue depth so that bursts may temporarily
//! overspend (1.2×) and lulls underspend (0.8×), banking energy for the
//! next burst.

use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::filters::{Filter, FilterCtx};
use crate::shard::ClassCandidate;

/// The queue-depth-adaptive ζ_mul schedule.
///
/// The paper's tuned values: 0.8 below depth 0.8, 1.0 for depths in
/// \[0.8, 1.2\], 1.2 above (the paper leaves (1.0, 1.2) unspecified; we
/// extend the 1.0 band — DESIGN.md §3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZetaMulPolicy {
    /// Depth below which the conservative multiplier applies.
    pub low_depth: f64,
    /// Depth above which the aggressive multiplier applies.
    pub high_depth: f64,
    /// Multiplier during lulls (paper: 0.8).
    pub low_mul: f64,
    /// Multiplier at equilibrium (paper: 1.0).
    pub mid_mul: f64,
    /// Multiplier during bursts (paper: 1.2).
    pub high_mul: f64,
}

impl ZetaMulPolicy {
    /// The paper's tuned schedule.
    pub fn paper() -> Self {
        Self {
            low_depth: 0.8,
            high_depth: 1.2,
            low_mul: 0.8,
            mid_mul: 1.0,
            high_mul: 1.2,
        }
    }

    /// A constant multiplier (ablation: disable adaptivity).
    pub fn constant(mul: f64) -> Self {
        assert!(mul.is_finite() && mul > 0.0, "multiplier must be positive");
        Self {
            low_depth: 0.0,
            high_depth: f64::INFINITY,
            low_mul: mul,
            mid_mul: mul,
            high_mul: mul,
        }
    }

    /// The multiplier for an observed average queue depth.
    pub fn multiplier(&self, avg_depth: f64) -> f64 {
        if avg_depth < self.low_depth {
            self.low_mul
        } else if avg_depth <= self.high_depth {
            self.mid_mul
        } else {
            self.high_mul
        }
    }
}

impl Default for ZetaMulPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

/// The paper's energy filter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyFilter {
    policy: ZetaMulPolicy,
}

impl EnergyFilter {
    /// Creates the filter with the paper's ζ_mul schedule.
    pub fn paper() -> Self {
        Self {
            policy: ZetaMulPolicy::paper(),
        }
    }

    /// Creates the filter with a custom ζ_mul schedule.
    pub fn with_policy(policy: ZetaMulPolicy) -> Self {
        Self { policy }
    }

    /// Eq. 6 for the given view and ledger: the per-task fair share.
    pub fn fair_share(&self, view: &SystemView<'_>, ctx: &FilterCtx) -> f64 {
        let mul = self.policy.multiplier(view.avg_queue_depth());
        let remaining = ctx.remaining_energy.max(0.0);
        mul * remaining / view.tasks_left() as f64
    }
}

impl Filter for EnergyFilter {
    fn name(&self) -> &'static str {
        "en"
    }

    fn retain(
        &self,
        _task: &Task,
        view: &SystemView<'_>,
        ctx: &FilterCtx,
        candidates: &mut Vec<EvaluatedCandidate>,
    ) {
        let fair = self.fair_share(view, ctx);
        candidates.retain(|c| c.est.eec <= fair);
    }

    fn supports_indexed(&self) -> bool {
        true
    }

    fn retain_indexed(
        &self,
        _task: &Task,
        view: &SystemView<'_>,
        ctx: &FilterCtx,
        classes: &mut Vec<ClassCandidate>,
    ) {
        // The same `eec <= fair` predicate on the same bits: every member
        // of a class shares its estimates, so feasibility is per
        // (class, P-state).
        let fair = self.fair_share(view, ctx);
        for class in classes.iter_mut() {
            for (pi, retained) in class.retained.iter_mut().enumerate() {
                *retained = *retained && class.ests[pi].eec <= fair;
            }
        }
        classes.retain(ClassCandidate::any_retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::AssignmentEstimate;
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, Scenario, SystemView};
    use ecds_workload::{TaskId, TaskTypeId};

    fn candidate(eec: f64) -> EvaluatedCandidate {
        EvaluatedCandidate {
            core: 0,
            pstate: PState::P0,
            est: AssignmentEstimate {
                eet: 1.0,
                ect: 1.0,
                eec,
                rho: 1.0,
            },
        }
    }

    fn task() -> Task {
        Task {
            id: TaskId(0),
            type_id: TaskTypeId(0),
            arrival: 0.0,
            deadline: 100.0,
            quantile: 0.5,
        }
    }

    #[test]
    fn multiplier_schedule_matches_paper() {
        let p = ZetaMulPolicy::paper();
        assert_eq!(p.multiplier(0.0), 0.8);
        assert_eq!(p.multiplier(0.79), 0.8);
        assert_eq!(p.multiplier(0.8), 1.0);
        assert_eq!(p.multiplier(1.0), 1.0);
        assert_eq!(p.multiplier(1.2), 1.0);
        assert_eq!(p.multiplier(1.21), 1.2);
        assert_eq!(p.multiplier(10.0), 1.2);
    }

    #[test]
    fn constant_policy_ignores_depth() {
        let p = ZetaMulPolicy::constant(1.0);
        assert_eq!(p.multiplier(0.0), 1.0);
        assert_eq!(p.multiplier(99.0), 1.0);
    }

    #[test]
    fn retains_only_affordable_candidates() {
        let s = Scenario::small_for_tests(3);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        // Idle system → depth 0 → mul 0.8. 10 tasks left (window 10,
        // arrived 1). remaining 1000 → fair = 0.8·1000/10 = 80.
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let ctx = FilterCtx {
            remaining_energy: 1000.0,
            budget: 1000.0,
        };
        let f = EnergyFilter::paper();
        assert!((f.fair_share(&view, &ctx) - 80.0).abs() < 1e-9);
        let mut cands = vec![candidate(79.0), candidate(80.0), candidate(81.0)];
        f.retain(&task(), &view, &ctx, &mut cands);
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.est.eec <= 80.0));
    }

    #[test]
    fn exhausted_ledger_rejects_everything() {
        let s = Scenario::small_for_tests(3);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let ctx = FilterCtx {
            remaining_energy: -5.0,
            budget: 1000.0,
        };
        let f = EnergyFilter::paper();
        let mut cands = vec![candidate(0.1)];
        f.retain(&task(), &view, &ctx, &mut cands);
        assert!(cands.is_empty());
    }

    #[test]
    fn last_task_gets_full_remaining_budget() {
        let s = Scenario::small_for_tests(3);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        // arrived == window → tasks_left == 1.
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 10, 10);
        let ctx = FilterCtx {
            remaining_energy: 500.0,
            budget: 1000.0,
        };
        let f = EnergyFilter::paper();
        assert!((f.fair_share(&view, &ctx) - 0.8 * 500.0).abs() < 1e-9);
    }

    #[test]
    fn filter_name_is_en() {
        assert_eq!(EnergyFilter::paper().name(), "en");
    }
}
