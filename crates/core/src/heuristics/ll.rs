//! The Lightest Load heuristic — the paper's new heuristic (Sec. V-D,
//! inspired by \[BaM09\]).

use ecds_cluster::PState;
use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::heuristics::{argmin_by_key, argmin_indexed, Heuristic};
use crate::shard::ClassCandidate;

/// **LL**: define the *load* of an assignment as
///
/// `L(i,j,k,π,t_l) = EEC(i,j,k,π,z) × (1 − ρ(i,j,k,π,t_l,z))`   (Eq. 5)
///
/// — expected energy times the probability of *missing* the deadline — and
/// assign to the candidate minimizing it. The product balances the two
/// objectives: a cheap assignment that will miss (ρ ≈ 0) keeps a high load
/// (≈ EEC); an expensive assignment that will surely hit (ρ ≈ 1) drives
/// load to 0. During congestion every ρ collapses and LL degenerates to a
/// minimum-energy picker until the congestion clears — the paper's
/// explanation for unfiltered LL's mediocre showing.
#[derive(Debug, Clone, Copy, Default)]
pub struct LightestLoad;

/// Eq. 5 for one candidate.
pub fn load_value(candidate: &EvaluatedCandidate) -> f64 {
    candidate.est.eec * (1.0 - candidate.est.rho)
}

impl Heuristic for LightestLoad {
    fn name(&self) -> &'static str {
        "LL"
    }

    fn choose(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        argmin_by_key(candidates, load_value)
    }

    fn supports_indexed(&self) -> bool {
        true
    }

    fn choose_indexed(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        classes: &[ClassCandidate],
    ) -> Option<(usize, PState)> {
        // The exact expression of `load_value`, term for term — the keys
        // must carry identical bits for the tie-break to be identical.
        argmin_indexed(classes, |est| est.eec * (1.0 - est.rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::testutil::{cand, task};
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, Scenario};

    fn view<'a>(s: &'a Scenario, cores: &'a [CoreState]) -> ecds_sim::SystemView<'a> {
        ecds_sim::SystemView::new(s.cluster(), s.table(), cores, 0.0, 1, 10)
    }

    #[test]
    fn load_is_eec_times_miss_probability() {
        let c = cand(0, PState::P0, 1.0, 1.0, 200.0, 0.75);
        assert!((load_value(&c) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn certain_hit_has_zero_load() {
        let c = cand(0, PState::P0, 1.0, 1.0, 500.0, 1.0);
        assert_eq!(load_value(&c), 0.0);
    }

    #[test]
    fn balances_energy_against_robustness() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = view(&s, &cores);
        let cands = vec![
            // Expensive but certain: load 0.
            cand(0, PState::P0, 1.0, 1.0, 900.0, 1.0),
            // Cheap but hopeless: load 100.
            cand(0, PState::P4, 1.0, 1.0, 100.0, 0.0),
        ];
        let mut h = LightestLoad;
        assert_eq!(h.choose(&task(), &v, &cands), Some(0));
    }

    #[test]
    fn congestion_degenerates_to_min_energy() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = view(&s, &cores);
        // All ρ ≈ 0 (congestion): the cheapest assignment wins.
        let cands = vec![
            cand(0, PState::P0, 1.0, 1.0, 900.0, 0.01),
            cand(0, PState::P4, 1.0, 1.0, 100.0, 0.0),
            cand(1, PState::P4, 1.0, 1.0, 80.0, 0.005),
        ];
        let mut h = LightestLoad;
        assert_eq!(h.choose(&task(), &v, &cands), Some(2));
    }

    #[test]
    fn empty_candidates_abstain() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = view(&s, &cores);
        let mut h = LightestLoad;
        assert_eq!(h.choose(&task(), &v, &[]), None);
    }

    #[test]
    fn name_is_ll() {
        assert_eq!(LightestLoad.name(), "LL");
    }
}
