//! The Random baseline heuristic (paper Sec. V-E).

use ecds_persist::{DecodeError, Decoder, Encoder};
use ecds_sim::SystemView;
use ecds_workload::Task;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::candidate::EvaluatedCandidate;
use crate::heuristics::Heuristic;

/// **Random**: pick uniformly at random among the feasible assignments —
/// "conceptually one of the simplest techniques", used to contrast how much
/// work the filters (rather than the heuristic) are doing. With "en+rob"
/// filtering the paper finds Random lands within ~4% of LL.
///
/// Carries its own seeded RNG so whole experiment grids stay reproducible;
/// [`Heuristic::reset`] rewinds the stream so repeated trials with one
/// scheduler instance are also deterministic.
#[derive(Debug, Clone)]
pub struct RandomChoice {
    seed: u64,
    rng: StdRng,
}

impl RandomChoice {
    /// Creates the heuristic with its RNG substream seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Heuristic for RandomChoice {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn choose(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        if candidates.is_empty() {
            None
        } else {
            Some(self.rng.gen_range(0..candidates.len()))
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn save_state(&self, enc: &mut Encoder) {
        for word in self.rng.state() {
            enc.put_u64(word);
        }
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = dec.u64()?;
        }
        self.rng = StdRng::from_state(state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::testutil::{cand, task};
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, Scenario};

    fn choices(h: &mut RandomChoice, n: usize) -> Vec<usize> {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let cands: Vec<_> = (0..4)
            .map(|i| cand(i, PState::P0, 1.0, 1.0, 1.0, 1.0))
            .collect();
        (0..n)
            .map(|_| h.choose(&task(), &view, &cands).unwrap())
            .collect()
    }

    #[test]
    fn choices_are_in_range_and_varied() {
        let mut h = RandomChoice::new(1);
        let picks = choices(&mut h, 200);
        assert!(picks.iter().all(|&p| p < 4));
        let distinct: std::collections::BTreeSet<_> = picks.iter().collect();
        assert_eq!(distinct.len(), 4, "uniform choice should hit all options");
    }

    #[test]
    fn reset_rewinds_the_stream() {
        let mut h = RandomChoice::new(7);
        let first = choices(&mut h, 50);
        h.reset();
        let second = choices(&mut h, 50);
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomChoice::new(1);
        let mut b = RandomChoice::new(2);
        assert_ne!(choices(&mut a, 50), choices(&mut b, 50));
    }

    #[test]
    fn empty_candidates_abstain() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let mut h = RandomChoice::new(1);
        assert_eq!(h.choose(&task(), &view, &[]), None);
    }

    #[test]
    fn name_is_random() {
        assert_eq!(RandomChoice::new(0).name(), "Random");
    }
}
