//! The Minimum Expected Completion Time heuristic (paper Sec. V-C, after
//! \[MaA99\]'s MCT adapted to stochastic completion times).

use ecds_cluster::PState;
use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::heuristics::{argmin_by_key, argmin_indexed, Heuristic};
use crate::shard::ClassCandidate;

/// **MECT**: assign to the feasible (core, P-state) pair minimizing the
/// expectation of the stochastic completion-time distribution,
/// `ECT(i,j,k,π,t_l,z)`. Unfiltered, it always selects `P0` (faster
/// execution strictly reduces expected completion), making it
/// energy-oblivious — exactly the behaviour the energy filter corrects.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimumExpectedCompletionTime;

impl Heuristic for MinimumExpectedCompletionTime {
    fn name(&self) -> &'static str {
        "MECT"
    }

    fn choose(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        argmin_by_key(candidates, |c| c.est.ect)
    }

    fn supports_indexed(&self) -> bool {
        true
    }

    fn choose_indexed(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        classes: &[ClassCandidate],
    ) -> Option<(usize, PState)> {
        argmin_indexed(classes, |est| est.ect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::testutil::{cand, task};
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, Scenario};

    #[test]
    fn picks_minimum_ect() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let cands = vec![
            cand(0, PState::P0, 1.0, 30.0, 0.0, 0.0),
            cand(1, PState::P2, 1.0, 20.0, 0.0, 0.0),
            cand(1, PState::P0, 1.0, 25.0, 0.0, 0.0),
        ];
        let mut h = MinimumExpectedCompletionTime;
        assert_eq!(h.choose(&task(), &view, &cands), Some(1));
    }

    #[test]
    fn ties_break_by_candidate_order() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let cands = vec![
            cand(2, PState::P0, 1.0, 20.0, 0.0, 0.0),
            cand(3, PState::P0, 1.0, 20.0, 0.0, 0.0),
        ];
        let mut h = MinimumExpectedCompletionTime;
        assert_eq!(h.choose(&task(), &view, &cands), Some(0));
    }

    #[test]
    fn empty_candidates_abstain() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let mut h = MinimumExpectedCompletionTime;
        assert_eq!(h.choose(&task(), &view, &[]), None);
    }

    #[test]
    fn name_is_mect() {
        assert_eq!(MinimumExpectedCompletionTime.name(), "MECT");
    }
}
