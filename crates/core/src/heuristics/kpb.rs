//! K-Percent Best — the \[MaA99\] compromise between MET's heterogeneity
//! exploitation and MCT's load awareness.

use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::heuristics::Heuristic;

/// **KPB**: restrict attention to the `k`% of candidates with the best
/// (smallest) expected execution time for this task, then choose the
/// minimum expected completion time among them (\[MaA99\]). `k = 100`
/// degenerates to MECT; small `k` approaches MET.
#[derive(Debug, Clone, Copy)]
pub struct KPercentBest {
    k_percent: f64,
}

impl KPercentBest {
    /// Creates the heuristic; `k_percent` must be in `(0, 100]`.
    pub fn new(k_percent: f64) -> Self {
        assert!(
            k_percent > 0.0 && k_percent <= 100.0,
            "k must be a percentage in (0, 100]"
        );
        Self { k_percent }
    }

    /// The `k` parameter.
    pub fn k_percent(&self) -> f64 {
        self.k_percent
    }
}

impl Default for KPercentBest {
    /// \[MaA99\]'s experiments found moderate k best; default to 20%.
    fn default() -> Self {
        Self::new(20.0)
    }
}

impl Heuristic for KPercentBest {
    fn name(&self) -> &'static str {
        "KPB"
    }

    fn choose(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let keep = ((candidates.len() as f64 * self.k_percent / 100.0).ceil() as usize).max(1);
        // Rank candidate indices by EET and keep the best `keep`.
        let mut by_eet: Vec<usize> = (0..candidates.len()).collect();
        by_eet.sort_by(|&a, &b| {
            candidates[a]
                .est
                .eet
                .total_cmp(&candidates[b].est.eet)
                .then(a.cmp(&b))
        });
        let shortlist = &by_eet[..keep];
        // Minimum ECT within the shortlist, ties by original order.
        shortlist.iter().copied().min_by(|&a, &b| {
            candidates[a]
                .est
                .ect
                .total_cmp(&candidates[b].est.ect)
                .then(a.cmp(&b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::argmin_by_key;

    /// Plain MCT over everything — the k = 100% reference.
    fn mect_index(candidates: &[EvaluatedCandidate]) -> Option<usize> {
        argmin_by_key(candidates, |c| c.est.ect)
    }
    use crate::heuristics::testutil::{cand, task};
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, Scenario};

    fn fixture() -> (Scenario, Vec<CoreState>) {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        (s, cores)
    }

    #[test]
    fn shortlists_by_eet_then_minimizes_ect() {
        let (s, cores) = fixture();
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let cands = vec![
            cand(0, PState::P0, 10.0, 500.0, 0.0, 0.0), // best EET, deep queue
            cand(1, PState::P0, 12.0, 40.0, 0.0, 0.0),  // 2nd EET, idle
            cand(2, PState::P0, 90.0, 20.0, 0.0, 0.0),  // worst EET, best ECT
        ];
        // k = 60% keeps ceil(1.8) = 2 best-EET candidates; MECT among them
        // → idx 1.
        let mut h = KPercentBest::new(60.0);
        assert_eq!(h.choose(&task(), &v, &cands), Some(1));
    }

    #[test]
    fn k_100_degenerates_to_mect() {
        let (s, cores) = fixture();
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let cands = vec![
            cand(0, PState::P0, 10.0, 500.0, 0.0, 0.0),
            cand(1, PState::P0, 12.0, 40.0, 0.0, 0.0),
            cand(2, PState::P0, 90.0, 20.0, 0.0, 0.0),
        ];
        let mut h = KPercentBest::new(100.0);
        assert_eq!(h.choose(&task(), &v, &cands), mect_index(&cands));
    }

    #[test]
    fn tiny_k_degenerates_to_met() {
        let (s, cores) = fixture();
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let cands = vec![
            cand(0, PState::P0, 50.0, 60.0, 0.0, 0.0),
            cand(1, PState::P0, 20.0, 900.0, 0.0, 0.0),
        ];
        let mut h = KPercentBest::new(1.0);
        // Shortlist of 1 = best EET.
        assert_eq!(h.choose(&task(), &v, &cands), Some(1));
    }

    #[test]
    fn empty_candidates_abstain() {
        let (s, cores) = fixture();
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        assert_eq!(KPercentBest::default().choose(&task(), &v, &[]), None);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn zero_k_rejected() {
        let _ = KPercentBest::new(0.0);
    }

    #[test]
    fn default_k_is_20() {
        assert_eq!(KPercentBest::default().k_percent(), 20.0);
    }
}
