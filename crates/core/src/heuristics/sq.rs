//! The Shortest Queue heuristic (paper Sec. V-B, after \[SmC09\]).

use ecds_cluster::PState;
use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::heuristics::{argmin_by_key, Heuristic};
use crate::shard::ClassCandidate;

/// **SQ**: assign to the feasible core with the fewest pending tasks
/// (`|MQ(i,j,k,t_l)|`); among equal queue lengths, pick the (core, P-state)
/// pair with minimum expected execution time — which, unfiltered, always
/// selects `P0` and is why unfiltered SQ burns energy (Sec. VII).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestQueue;

impl Heuristic for ShortestQueue {
    fn name(&self) -> &'static str {
        "SQ"
    }

    fn choose(
        &mut self,
        _task: &Task,
        view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        let min_depth = candidates
            .iter()
            .map(|c| view.core_state(c.core).depth())
            .min()?;
        // Lexicographic (depth, EET) via a composite key is fragile with
        // floats; do it in two passes instead.
        let mut best: Option<(usize, f64)> = None;
        for (idx, cand) in candidates.iter().enumerate() {
            if view.core_state(cand.core).depth() != min_depth {
                continue;
            }
            match best {
                Some((_, eet)) if eet <= cand.est.eet => {}
                _ => best = Some((idx, cand.est.eet)),
            }
        }
        debug_assert!(best.is_some());
        best.map(|(idx, _)| idx).or_else(|| {
            // Defensive: fall back to plain EET argmin (unreachable — the
            // min_depth core always yields at least one candidate).
            argmin_by_key(candidates, |c| c.est.eet)
        })
    }

    fn supports_indexed(&self) -> bool {
        true
    }

    fn choose_indexed(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        classes: &[ClassCandidate],
    ) -> Option<(usize, PState)> {
        // Queue depth is part of the class key, so the two-pass structure
        // of `choose` maps directly: every member of a class shares one
        // depth (and bit-identical estimates), making the first stream
        // occurrence of a tied minimum EET the smallest `(min_core,
        // P-state)` among min-depth classes.
        let min_depth = classes
            .iter()
            .filter(|c| c.any_retained())
            .map(|c| c.depth)
            .min()?;
        let mut best: Option<(usize, PState, f64)> = None;
        for (ci, class) in classes.iter().enumerate() {
            if class.depth != min_depth {
                continue;
            }
            for (pi, pstate) in PState::ALL.into_iter().enumerate() {
                if !class.retained[pi] {
                    continue;
                }
                let eet = class.ests[pi].eet;
                let better = match best {
                    None => true,
                    Some((bci, bp, bk)) => {
                        if eet < bk {
                            true
                        } else if eet > bk {
                            false
                        } else {
                            (class.min_core, pstate.index()) < (classes[bci].min_core, bp.index())
                        }
                    }
                };
                if better {
                    best = Some((ci, pstate, eet));
                }
            }
        }
        debug_assert!(best.is_some());
        best.map(|(ci, pstate, _)| (ci, pstate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::testutil::{cand, task};
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, ExecutingTask, Scenario};
    use ecds_workload::{TaskId, TaskTypeId};

    fn view_with_busy_core0(s: &Scenario, cores: &mut [CoreState]) {
        cores[0].start(ExecutingTask {
            task: TaskId(99),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            start: 0.0,
            deadline: 1e9,
        });
        let _ = s;
    }

    #[test]
    fn prefers_emptier_core() {
        let s = Scenario::small_for_tests(8);
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        view_with_busy_core0(&s, &mut cores);
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 10);
        let cands = vec![
            cand(0, PState::P0, 10.0, 0.0, 0.0, 0.0), // busy core, fast
            cand(1, PState::P0, 50.0, 0.0, 0.0, 0.0), // idle core, slower
        ];
        let mut h = ShortestQueue;
        assert_eq!(h.choose(&task(), &view, &cands), Some(1));
    }

    #[test]
    fn ties_break_on_minimum_eet() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 10);
        let cands = vec![
            cand(0, PState::P4, 40.0, 0.0, 0.0, 0.0),
            cand(0, PState::P0, 10.0, 0.0, 0.0, 0.0),
            cand(1, PState::P0, 12.0, 0.0, 0.0, 0.0),
        ];
        let mut h = ShortestQueue;
        // All cores idle (equal depth 0): minimum EET wins → index 1 (P0).
        assert_eq!(h.choose(&task(), &view, &cands), Some(1));
    }

    #[test]
    fn empty_candidates_abstain() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 10);
        let mut h = ShortestQueue;
        assert_eq!(h.choose(&task(), &view, &[]), None);
    }

    #[test]
    fn name_is_sq() {
        assert_eq!(ShortestQueue.name(), "SQ");
    }
}
