//! Opportunistic Load Balancing — a classic immediate-mode baseline from
//! the \[MaA99\] family the paper adapts its heuristics from.

use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::heuristics::{argmin_by_key, Heuristic};

/// **OLB**: assign the task to the core that becomes ready soonest,
/// ignoring the task's execution time entirely (\[MaA99\]). Ready time is
/// recovered from the evaluated candidates as `ECT − EET` (the expected
/// completion of the core's pending queue). Ties break by candidate order,
/// which lands on `P0` — like SQ and MECT, OLB is energy-oblivious and
/// needs the filters to survive an energy constraint.
///
/// OLB is known to waste execution-time heterogeneity (it never looks at
/// how well the task fits the machine); it is included as a
/// literature baseline for the ablation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpportunisticLoadBalancing;

impl Heuristic for OpportunisticLoadBalancing {
    fn name(&self) -> &'static str {
        "OLB"
    }

    fn choose(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        argmin_by_key(candidates, |c| c.est.ect - c.est.eet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::testutil::{cand, task};
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, Scenario};

    fn view<'a>(s: &'a Scenario, cores: &'a [CoreState]) -> ecds_sim::SystemView<'a> {
        ecds_sim::SystemView::new(s.cluster(), s.table(), cores, 0.0, 1, 10)
    }

    #[test]
    fn picks_earliest_ready_core_ignoring_execution_time() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = view(&s, &cores);
        let cands = vec![
            // ready = ect - eet: 100; fast task.
            cand(0, PState::P0, 10.0, 110.0, 0.0, 0.0),
            // ready = 50; slow task — OLB still prefers it.
            cand(1, PState::P0, 80.0, 130.0, 0.0, 0.0),
        ];
        let mut h = OpportunisticLoadBalancing;
        assert_eq!(h.choose(&task(), &v, &cands), Some(1));
    }

    #[test]
    fn ties_break_to_first_candidate() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = view(&s, &cores);
        let cands = vec![
            cand(0, PState::P0, 10.0, 10.0, 0.0, 0.0),
            cand(0, PState::P4, 40.0, 40.0, 0.0, 0.0),
        ];
        let mut h = OpportunisticLoadBalancing;
        // Both ready at 0: the P0 candidate (first) wins.
        assert_eq!(h.choose(&task(), &v, &cands), Some(0));
    }

    #[test]
    fn empty_candidates_abstain() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = view(&s, &cores);
        assert_eq!(OpportunisticLoadBalancing.choose(&task(), &v, &[]), None);
    }

    #[test]
    fn name_is_olb() {
        assert_eq!(OpportunisticLoadBalancing.name(), "OLB");
    }
}
