//! Minimum Execution Time — the second classic \[MaA99\] baseline.

use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::heuristics::{argmin_by_key, Heuristic};

/// **MET**: assign the task to the (core, P-state) pair with the smallest
/// expected *execution* time, ignoring queue state entirely (\[MaA99\]).
/// MET exploits machine heterogeneity perfectly but load-balances terribly:
/// every instance of a task type piles onto its best node. Included as a
/// literature baseline for the ablation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimumExecutionTime;

impl Heuristic for MinimumExecutionTime {
    fn name(&self) -> &'static str {
        "MET"
    }

    fn choose(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        argmin_by_key(candidates, |c| c.est.eet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::testutil::{cand, task};
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, Scenario};

    #[test]
    fn picks_minimum_execution_time_ignoring_queues() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        let cands = vec![
            // Idle core, mediocre fit.
            cand(0, PState::P0, 50.0, 50.0, 0.0, 0.0),
            // Deep queue (huge ECT) but the best fit — MET takes it anyway.
            cand(1, PState::P0, 20.0, 900.0, 0.0, 0.0),
        ];
        let mut h = MinimumExecutionTime;
        assert_eq!(h.choose(&task(), &v, &cands), Some(1));
    }

    #[test]
    fn empty_candidates_abstain() {
        let s = Scenario::small_for_tests(8);
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        assert_eq!(MinimumExecutionTime.choose(&task(), &v, &[]), None);
    }

    #[test]
    fn name_is_met() {
        assert_eq!(MinimumExecutionTime.name(), "MET");
    }
}
