//! Deterministic-estimate MCT: the ablation that validates the paper's
//! stochastic machinery (contribution (a)).
//!
//! Sec. IV-B motivates pmf-based completion times against "a deterministic
//! (i.e., non-probabilistic) model \[where\] we calculate the completion time
//! as the sum of the estimated execution times". This heuristic *is* that
//! deterministic model: it ranks assignments by scalar mean arithmetic
//! only — no truncation/renormalization of the executing task, no
//! convolution. Comparing it against [`MinimumExpectedCompletionTime`](crate::MinimumExpectedCompletionTime)
//! (whose ECT is the expectation of the true completion pmf) isolates the
//! value of the stochastic model in allocation decisions.

use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::heuristics::{argmin_by_key, Heuristic};

/// **det-MCT**: minimum completion time computed with scalar means.
///
/// The deterministic ready-time of a core is
/// `max(now, start(executing) + EET(executing)) + Σ EET(queued)`; the
/// deterministic completion time of a candidate adds its own EET. The
/// crucial difference from the stochastic model: a task that has already
/// run *longer* than its mean is predicted to finish "immediately",
/// whereas conditioning the pmf on "still running" (truncate + renormalize)
/// correctly pushes the prediction outward.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterministicMct;

/// The deterministic ready time of `core` at the view's time.
pub fn deterministic_ready_time(view: &SystemView<'_>, core: usize) -> f64 {
    let state = view.core_state(core);
    let node = view.cluster().core(core).node;
    let table = view.table();
    let now = view.time();
    let mut ready = now;
    if let Some(exec) = state.executing() {
        let predicted_end = exec.start + table.eet(exec.type_id, node, exec.pstate);
        ready = predicted_end.max(now);
    }
    for queued in state.queued() {
        ready += table.eet(queued.type_id, node, queued.pstate);
    }
    ready
}

impl Heuristic for DeterministicMct {
    fn name(&self) -> &'static str {
        "det-MCT"
    }

    fn choose(
        &mut self,
        _task: &Task,
        view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize> {
        // Ready times depend only on the core; cache per flat index.
        let mut ready: Vec<Option<f64>> = vec![None; view.cluster().total_cores()];
        argmin_by_key(candidates, |c| {
            let r = *ready[c.core].get_or_insert_with(|| deterministic_ready_time(view, c.core));
            r + c.est.eet
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::testutil::task;
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, ExecutingTask, QueuedTask, Scenario};
    use ecds_workload::{TaskId, TaskTypeId};

    fn scenario() -> Scenario {
        Scenario::small_for_tests(17)
    }

    #[test]
    fn idle_core_is_ready_now() {
        let s = scenario();
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 123.0, 1, 10);
        assert_eq!(deterministic_ready_time(&v, 0), 123.0);
    }

    #[test]
    fn busy_core_ready_after_mean_plus_queue() {
        let s = scenario();
        let node = s.cluster().core(0).node;
        let eet_exec = s.table().eet(TaskTypeId(1), node, PState::P0);
        let eet_queued = s.table().eet(TaskTypeId(2), node, PState::P2);
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        cores[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(1),
            pstate: PState::P0,
            start: 10.0,
            deadline: 1e9,
        });
        cores[0].enqueue(QueuedTask {
            task: TaskId(1),
            type_id: TaskTypeId(2),
            pstate: PState::P2,
            deadline: 1e9,
        });
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 20.0, 2, 10);
        let expected = 10.0 + eet_exec + eet_queued;
        assert!((deterministic_ready_time(&v, 0) - expected).abs() < 1e-9);
    }

    #[test]
    fn overdue_executing_task_clamps_to_now() {
        // The deterministic model's blind spot: a task past its mean is
        // predicted done "now", underestimating the true remaining time.
        let s = scenario();
        let node = s.cluster().core(0).node;
        let eet = s.table().eet(TaskTypeId(1), node, PState::P0);
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        cores[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(1),
            pstate: PState::P0,
            start: 0.0,
            deadline: 1e9,
        });
        let late = 5.0 * eet;
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, late, 1, 10);
        assert_eq!(deterministic_ready_time(&v, 0), late);
    }

    #[test]
    fn chooses_min_deterministic_completion() {
        let s = scenario();
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        // Core 0 busy with a long task; others idle.
        cores[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(1),
            pstate: PState::P4,
            start: 0.0,
            deadline: 1e9,
        });
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 10);
        let evaluator = crate::estimate::CandidateEvaluator::default();
        let t = task();
        let candidates = evaluator.evaluate_all(&v, &t);
        let mut h = DeterministicMct;
        let idx = h.choose(&t, &v, &candidates).unwrap();
        // The chosen core should not be the busy one unless its EET edge is
        // overwhelming; at minimum the choice must be a valid index.
        assert!(idx < candidates.len());
        // And it must be a base-state assignment (fastest completion).
        assert_eq!(candidates[idx].pstate, PState::P0);
    }

    #[test]
    fn empty_candidates_abstain() {
        let s = scenario();
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let v = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 10);
        assert_eq!(DeterministicMct.choose(&task(), &v, &[]), None);
    }

    #[test]
    fn name_is_det_mct() {
        assert_eq!(DeterministicMct.name(), "det-MCT");
    }
}
