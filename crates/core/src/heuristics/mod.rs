//! Task-scheduling heuristics (paper Sec. V).
//!
//! Every heuristic operates in immediate mode: given the filtered feasible
//! set of assignments for one arriving task, it picks exactly one (or
//! abstains if the set is empty — the scheduler then discards the task).
//! All heuristics are deterministic given their inputs ([`random`] carries
//! its own seeded RNG), and all tie-breaking follows the candidate list's
//! deterministic core-major order.

pub mod det_mect;
pub mod kpb;
pub mod ll;
pub mod mect;
pub mod met;
pub mod olb;
pub mod random;
pub mod sq;

use ecds_cluster::PState;
use ecds_persist::{DecodeError, Decoder, Encoder};
use ecds_sim::SystemView;
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::shard::ClassCandidate;

/// An immediate-mode assignment heuristic.
pub trait Heuristic: Send {
    /// Display name used in figures ("SQ", "MECT", "LL", "Random").
    fn name(&self) -> &'static str;

    /// Chooses the index of one candidate, or `None` when `candidates` is
    /// empty.
    fn choose(
        &mut self,
        task: &Task,
        view: &SystemView<'_>,
        candidates: &[EvaluatedCandidate],
    ) -> Option<usize>;

    /// `true` when [`Heuristic::choose_indexed`] reproduces this
    /// heuristic's selection from the equivalence-class form. Heuristics
    /// whose choice depends on candidate *positions* (Random's RNG draw,
    /// KPB's percentile cut over the materialized list) stay on the full
    /// scan. Default: `false`.
    fn supports_indexed(&self) -> bool {
        false
    }

    /// Chooses `(class index, P-state)` from the indexed candidate form —
    /// bit-identical (same core, same P-state) to what
    /// [`Heuristic::choose`] would pick from the materialized core-major
    /// stream, or `None` when `classes` is empty. Only called when
    /// [`Heuristic::supports_indexed`] returns `true`.
    fn choose_indexed(
        &mut self,
        _task: &Task,
        _view: &SystemView<'_>,
        _classes: &[ClassCandidate],
    ) -> Option<(usize, PState)> {
        unreachable!("choose_indexed requires supports_indexed()")
    }

    /// Resets per-trial internal state. Default: no-op.
    fn reset(&mut self) {}

    /// Serializes mutable per-trial state into a serving checkpoint.
    /// Default: nothing — most heuristics are stateless.
    fn save_state(&self, _enc: &mut Encoder) {}

    /// Restores state written by [`Heuristic::save_state`]. Default: no-op.
    fn restore_state(&mut self, _dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        Ok(())
    }
}

/// Selects the index minimizing `key`, breaking ties by list order
/// (deterministic because candidates are generated core-major).
pub(crate) fn argmin_by_key<F>(candidates: &[EvaluatedCandidate], mut key: F) -> Option<usize>
where
    F: FnMut(&EvaluatedCandidate) -> f64,
{
    let mut best: Option<(usize, f64)> = None;
    for (idx, cand) in candidates.iter().enumerate() {
        let k = key(cand);
        debug_assert!(!k.is_nan(), "heuristic keys must not be NaN");
        match best {
            Some((_, bk)) if bk <= k => {}
            _ => best = Some((idx, k)),
        }
    }
    best.map(|(idx, _)| idx)
}

/// Selects the `(class index, P-state)` minimizing `key` over every
/// retained (class, P-state) pair — breaking float-equal ties exactly like
/// the full scan's first-wins argmin over the core-major stream: the
/// lexicographically smallest `(min_core, P-state)` wins. (Every member of
/// a class carries bit-identical estimates, so the first stream occurrence
/// of a tied key sits at the smallest member core of the tied classes.)
pub(crate) fn argmin_indexed<F>(classes: &[ClassCandidate], mut key: F) -> Option<(usize, PState)>
where
    F: FnMut(&crate::estimate::AssignmentEstimate) -> f64,
{
    let mut best: Option<(usize, PState, f64)> = None;
    for (ci, class) in classes.iter().enumerate() {
        for (pi, pstate) in PState::ALL.into_iter().enumerate() {
            if !class.retained[pi] {
                continue;
            }
            let k = key(&class.ests[pi]);
            debug_assert!(!k.is_nan(), "heuristic keys must not be NaN");
            let better = match best {
                None => true,
                Some((bci, bp, bk)) => {
                    if k < bk {
                        true
                    } else if k > bk {
                        false
                    } else {
                        (class.min_core, pstate.index()) < (classes[bci].min_core, bp.index())
                    }
                }
            };
            if better {
                best = Some((ci, pstate, k));
            }
        }
    }
    best.map(|(ci, pstate, _)| (ci, pstate))
}

#[cfg(test)]
pub(crate) mod testutil {
    use ecds_cluster::PState;
    use ecds_workload::{Task, TaskId, TaskTypeId};

    use crate::candidate::EvaluatedCandidate;
    use crate::estimate::AssignmentEstimate;

    /// Builds a candidate with the given quantities.
    pub fn cand(
        core: usize,
        pstate: PState,
        eet: f64,
        ect: f64,
        eec: f64,
        rho: f64,
    ) -> EvaluatedCandidate {
        EvaluatedCandidate {
            core,
            pstate,
            est: AssignmentEstimate { eet, ect, eec, rho },
        }
    }

    /// A throwaway task for heuristic tests.
    pub fn task() -> Task {
        Task {
            id: TaskId(0),
            type_id: TaskTypeId(0),
            arrival: 0.0,
            deadline: 1000.0,
            quantile: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::cand;
    use super::*;
    use ecds_cluster::PState;

    #[test]
    fn argmin_picks_smallest() {
        let cands = vec![
            cand(0, PState::P0, 3.0, 0.0, 0.0, 0.0),
            cand(1, PState::P0, 1.0, 0.0, 0.0, 0.0),
            cand(2, PState::P0, 2.0, 0.0, 0.0, 0.0),
        ];
        assert_eq!(argmin_by_key(&cands, |c| c.est.eet), Some(1));
    }

    #[test]
    fn argmin_breaks_ties_by_order() {
        let cands = vec![
            cand(0, PState::P0, 1.0, 0.0, 0.0, 0.0),
            cand(1, PState::P0, 1.0, 0.0, 0.0, 0.0),
        ];
        assert_eq!(argmin_by_key(&cands, |c| c.est.eet), Some(0));
    }

    #[test]
    fn argmin_empty_is_none() {
        assert_eq!(argmin_by_key(&[], |c| c.est.eet), None);
    }
}
