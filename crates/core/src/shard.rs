//! The persistent shard index over candidate equivalence classes
//! (DESIGN.md §13).
//!
//! The per-event class partition of DESIGN.md §11 rebuilds its classes from
//! scratch on every mapping event — O(cores) work per arrival even when
//! nothing changed. The shard index makes the partition *persistent*: the
//! classes live across events, and an epoch bump on a core invalidates only
//! that core's membership (reported through the engine's
//! [`DirtyCores`](ecds_sim::DirtyCores) mailbox), while cached prefixes that
//! outlive their exact-validity window surface through an expiry heap. One
//! arrival then costs O(active classes + marks since the last arrival +
//! log cores) instead of O(cores × P-states).
//!
//! Class *identity* is bit-exact, never hashed: a core joins an existing
//! class only when its `(template, fingerprint, depth)` key matches **and**
//! its queue prefix is impulse-for-impulse bit-identical
//! ([`Pmf::bit_eq`](ecds_pmf::Pmf::bit_eq)) to the class representative's.
//! Fingerprint collisions chain (`next` links) exactly like the per-event
//! partition re-checks, so the shard-indexed partition is the *same*
//! partition — at paper scale (identity templates) class-for-class — and
//! every counter the committed artifacts embed stays arithmetically exact.
//!
//! The index is derived state: it is never checkpointed. Restores, cache
//! resets, and cluster-size changes schedule a full rebuild, which is the
//! always-correct fallback the incremental path degrades to whenever the
//! mark mailbox is absent or has dropped marks.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use ecds_cluster::NUM_PSTATES;
use ecds_pmf::Time;

use crate::estimate::AssignmentEstimate;

/// Sentinel class id: "not a member of any class" / "end of chain".
pub(crate) const CLASS_NONE: u32 = u32::MAX;

/// Grouping key of one candidate equivalence class. Two cores can share a
/// class only when their keys are equal; equal keys still require
/// bit-identical prefixes (checked against the class representative) before
/// a core joins. `depth` rides in the key so every member shares one queue
/// depth — what lets Shortest Queue select straight from the class list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ClassKey {
    /// Node template of every member (estimates depend on the core only
    /// through its node spec and execution-time table, both per-template).
    pub template: u32,
    /// Prefix fingerprint (`None` for the idle class) — a fast filter,
    /// never trusted alone.
    pub fingerprint: Option<u64>,
    /// Queue depth shared by every member.
    pub depth: u32,
}

/// One persistent equivalence class.
#[derive(Debug)]
pub(crate) struct ShardClass {
    /// The grouping key (kept for chain unlinking).
    pub key: ClassKey,
    /// Live member count; the class is freed when it reaches zero.
    pub count: u32,
    /// Lazy min-heap of member cores: stale entries (cores that left) are
    /// skipped on peek, so the minimum live member — the deterministic
    /// representative and tie-break anchor — is O(log members) amortized.
    pub members: BinaryHeap<Reverse<u32>>,
    /// Next class with the same key but different prefix bits
    /// (fingerprint-collision chain), `CLASS_NONE`-terminated.
    pub next: u32,
}

/// Expiry-heap entry: the inclusive end of a cached prefix's
/// exact-validity window, ordered by `total_cmp` (floats carry no `Ord`;
/// the total order is explicit rather than `==`-based — lint R3).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Expiry {
    /// `valid_until` of the cache entry at push time.
    pub valid_until: Time,
    /// The core whose entry expires.
    pub core: u32,
}

impl PartialEq for Expiry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Expiry {}

impl PartialOrd for Expiry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Expiry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.valid_until
            .total_cmp(&other.valid_until)
            .then(self.core.cmp(&other.core))
    }
}

/// One equivalence class of (core, P-state) candidates as the indexed
/// selection path sees it: the five per-P-state estimates evaluated once on
/// the class representative, plus everything a heuristic or filter needs to
/// reproduce the full-scan selection bit-for-bit without materializing the
/// `cores × P-states` candidate stream.
///
/// Produced by
/// [`CandidateEvaluator::evaluate_indexed_into`](crate::CandidateEvaluator::evaluate_indexed_into)
/// in deterministic key order. Tie-breaking anchors on
/// [`ClassCandidate::min_core`]: because every member carries bit-identical
/// estimates, the earliest candidate a full scan would keep is exactly the
/// minimum member core at the smallest qualifying P-state.
#[derive(Debug, Clone, Copy)]
pub struct ClassCandidate {
    /// Lowest-index member — the representative, and the core a full-scan
    /// argmin's first-wins tie-break would select from this class.
    pub min_core: usize,
    /// Queue depth shared by every member (Shortest Queue's primary key).
    pub depth: usize,
    /// Number of member cores.
    pub members: usize,
    /// Per-P-state estimates, indexed by P-state.
    pub ests: [AssignmentEstimate; NUM_PSTATES],
    /// Per-P-state feasibility, narrowed in place by indexed filters.
    pub retained: [bool; NUM_PSTATES],
}

impl ClassCandidate {
    /// `true` while at least one P-state remains feasible.
    pub fn any_retained(&self) -> bool {
        self.retained.iter().any(|&r| r)
    }
}

pub(crate) const ZERO_ESTS: [AssignmentEstimate; NUM_PSTATES] = [AssignmentEstimate {
    eet: 0.0,
    ect: 0.0,
    eec: 0.0,
    rho: 0.0,
}; NUM_PSTATES];

/// The persistent index state. Structure-only: freshness predicates,
/// prefix recomputation, and counter accounting stay in the evaluator,
/// which drives the two-phase sweep (leave every invalidated core first,
/// then refresh and re-join in ascending core order).
#[derive(Debug)]
pub(crate) struct ShardIndex {
    /// Set by restores, resets, and size changes: the next sweep discards
    /// the whole structure and re-joins every core.
    pub needs_rebuild: bool,
    /// View time of the last sweep; a backward step forces a rebuild (the
    /// expiry heap only ever reasons forward).
    pub last_now: Time,
    /// Absolute read position in the engine's dirty-core mailbox.
    pub cursor: u64,
    /// Chain heads by class key.
    pub by_key: BTreeMap<ClassKey, u32>,
    /// Class slots (free-listed).
    pub classes: Vec<ShardClass>,
    /// Free class slots available for reuse.
    pub free: Vec<u32>,
    /// Per-core class membership (`CLASS_NONE` while detached mid-sweep).
    pub class_of: Vec<u32>,
    /// Number of live (non-freed) classes.
    pub active: usize,
    /// Min-heap of pending validity-window expiries (lazy: entries whose
    /// core was since recomputed are re-checked, not trusted).
    pub expiry: BinaryHeap<Reverse<Expiry>>,
    /// Per-sweep scratch: the cores whose membership must be revalidated.
    pub candidates: Vec<u32>,
    /// Per-event stamp for the lazy estimate table below.
    pub stamp: u64,
    /// `ests[id]` is valid for this event iff `ests_stamp[id] == stamp`.
    pub ests_stamp: Vec<u64>,
    /// Per-class estimates computed at most once per mapping event.
    pub ests: Vec<[AssignmentEstimate; NUM_PSTATES]>,
}

impl Default for ShardIndex {
    fn default() -> Self {
        Self {
            needs_rebuild: true,
            last_now: f64::NEG_INFINITY,
            cursor: 0,
            by_key: BTreeMap::new(),
            classes: Vec::new(),
            free: Vec::new(),
            class_of: Vec::new(),
            active: 0,
            expiry: BinaryHeap::new(),
            candidates: Vec::new(),
            stamp: 0,
            ests_stamp: Vec::new(),
            ests: Vec::new(),
        }
    }
}

impl ShardIndex {
    /// Discards every class and schedules a full rebuild at the next
    /// sweep. Called on cache resets and restores (the index is derived
    /// from the prefix cache, never checkpointed).
    pub fn reset(&mut self) {
        self.needs_rebuild = true;
        self.last_now = f64::NEG_INFINITY;
        self.cursor = 0;
        self.by_key.clear();
        self.classes.clear();
        self.free.clear();
        self.class_of.clear();
        self.active = 0;
        self.expiry.clear();
        self.candidates.clear();
    }

    /// Clears the class structure in place (capacities retained) ahead of
    /// a full re-join of all `n` cores.
    pub fn begin_rebuild(&mut self, n: usize) {
        self.by_key.clear();
        self.classes.clear();
        self.free.clear();
        self.class_of.clear();
        self.class_of.resize(n, CLASS_NONE);
        self.active = 0;
        self.expiry.clear();
        self.candidates.clear();
    }

    /// Detaches `core` from its class, freeing the class when it empties.
    /// Idempotent for already-detached cores.
    pub fn leave(&mut self, core: u32) {
        let id = self.class_of[core as usize];
        if id == CLASS_NONE {
            return;
        }
        self.class_of[core as usize] = CLASS_NONE;
        let class = &mut self.classes[id as usize];
        class.count -= 1;
        if class.count > 0 {
            return;
        }
        // Unlink the emptied class from its key chain and free the slot.
        let key = class.key;
        let next = class.next;
        class.members.clear();
        let head = *self
            .by_key
            .get(&key)
            .expect("a live class's key is indexed");
        if head == id {
            if next == CLASS_NONE {
                self.by_key.remove(&key);
            } else {
                *self.by_key.get_mut(&key).expect("checked above") = next;
            }
        } else {
            let mut prev = head;
            loop {
                let after = self.classes[prev as usize].next;
                if after == id {
                    self.classes[prev as usize].next = next;
                    break;
                }
                prev = after;
            }
        }
        self.free.push(id);
        self.active -= 1;
    }

    /// The minimum live member of class `id` — the deterministic
    /// representative. Pops stale heap entries (members that left) lazily.
    pub fn min_member(&mut self, id: u32) -> u32 {
        let Self {
            classes, class_of, ..
        } = self;
        let class = &mut classes[id as usize];
        loop {
            let &Reverse(top) = class
                .members
                .peek()
                .expect("a live class has at least one member");
            if class_of[top as usize] == id {
                return top;
            }
            class.members.pop();
        }
    }

    /// Attaches `core` (currently detached) to the class matching `key`
    /// whose representative's prefix satisfies `bits_eq`, creating a new
    /// class at the chain head when none matches. `bits_eq` receives the
    /// candidate representative core; it must confirm *bit identity* of the
    /// queue prefixes — fingerprint equality (already folded into `key`) is
    /// never sufficient on its own.
    pub fn join(&mut self, core: u32, key: ClassKey, bits_eq: impl Fn(u32) -> bool) {
        debug_assert_eq!(self.class_of[core as usize], CLASS_NONE);
        let mut id = self.by_key.get(&key).copied().unwrap_or(CLASS_NONE);
        while id != CLASS_NONE {
            let rep = self.min_member(id);
            if bits_eq(rep) {
                break;
            }
            id = self.classes[id as usize].next;
        }
        if id == CLASS_NONE {
            id = match self.free.pop() {
                Some(slot) => {
                    let class = &mut self.classes[slot as usize];
                    class.key = key;
                    class.count = 0;
                    class.members.clear();
                    class.next = CLASS_NONE;
                    slot
                }
                None => {
                    self.classes.push(ShardClass {
                        key,
                        count: 0,
                        members: BinaryHeap::new(),
                        next: CLASS_NONE,
                    });
                    (self.classes.len() - 1) as u32
                }
            };
            let prior_head = self.by_key.insert(key, id).unwrap_or(CLASS_NONE);
            self.classes[id as usize].next = prior_head;
            self.active += 1;
        }
        let class = &mut self.classes[id as usize];
        class.count += 1;
        class.members.push(Reverse(core));
        self.class_of[core as usize] = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(template: u32, fingerprint: Option<u64>, depth: u32) -> ClassKey {
        ClassKey {
            template,
            fingerprint,
            depth,
        }
    }

    fn index_with(n: usize) -> ShardIndex {
        let mut idx = ShardIndex::default();
        idx.begin_rebuild(n);
        idx
    }

    #[test]
    fn join_groups_equal_keys_and_bits() {
        let mut idx = index_with(4);
        for core in 0..4 {
            idx.join(core, key(0, Some(7), 1), |_| true);
        }
        assert_eq!(idx.active, 1);
        let id = idx.class_of[0];
        assert!((1..4).all(|c| idx.class_of[c] == id));
        assert_eq!(idx.classes[id as usize].count, 4);
        assert_eq!(idx.min_member(id), 0);
    }

    #[test]
    fn bit_mismatch_chains_under_one_key() {
        let mut idx = index_with(3);
        // Core 0 founds a class; cores 1 and 2 share its key but only core
        // 2's bits match core 1's (never core 0's): two chained classes.
        idx.join(0, key(0, Some(9), 1), |_| true);
        idx.join(1, key(0, Some(9), 1), |rep| rep != 0);
        idx.join(2, key(0, Some(9), 1), |rep| rep != 0);
        assert_eq!(idx.active, 2);
        assert_ne!(idx.class_of[0], idx.class_of[1]);
        assert_eq!(idx.class_of[1], idx.class_of[2]);
    }

    #[test]
    fn leave_frees_empty_classes_and_unlinks_chains() {
        let mut idx = index_with(3);
        idx.join(0, key(0, Some(9), 1), |_| true);
        idx.join(1, key(0, Some(9), 1), |rep| rep != 0);
        idx.join(2, key(0, Some(9), 1), |rep| rep != 0);
        // Drop the chained class's members: the head class must survive.
        idx.leave(1);
        idx.leave(2);
        assert_eq!(idx.active, 1);
        assert_eq!(
            idx.class_of[0],
            *idx.by_key.get(&key(0, Some(9), 1)).unwrap()
        );
        assert_eq!(idx.classes[idx.class_of[0] as usize].next, CLASS_NONE);
        // Dropping the last member removes the key entirely.
        idx.leave(0);
        assert_eq!(idx.active, 0);
        assert!(idx.by_key.is_empty());
        assert_eq!(idx.free.len(), 2);
        // Leave is idempotent on detached cores.
        idx.leave(0);
        assert_eq!(idx.active, 0);
    }

    #[test]
    fn min_member_tracks_departures_lazily() {
        let mut idx = index_with(4);
        for core in 0..4 {
            idx.join(core, key(1, None, 0), |_| true);
        }
        let id = idx.class_of[3];
        assert_eq!(idx.min_member(id), 0);
        idx.leave(0);
        assert_eq!(idx.min_member(id), 1);
        // Re-joining pushes a fresh heap entry; the minimum recovers.
        idx.join(0, key(1, None, 0), |_| true);
        assert_eq!(idx.min_member(id), 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut idx = index_with(2);
        idx.join(0, key(0, None, 0), |_| true);
        let first = idx.class_of[0];
        idx.leave(0);
        idx.join(1, key(5, Some(1), 2), |_| true);
        assert_eq!(idx.class_of[1], first, "freed slot must be recycled");
        assert_eq!(idx.classes.len(), 1);
    }

    #[test]
    fn expiry_orders_by_time_then_core() {
        let mut heap = BinaryHeap::new();
        for (t, c) in [(5.0, 1), (1.0, 9), (1.0, 2), (3.0, 0)] {
            heap.push(Reverse(Expiry {
                valid_until: t,
                core: c,
            }));
        }
        let order: Vec<(f64, u32)> =
            std::iter::from_fn(|| heap.pop().map(|Reverse(e)| (e.valid_until, e.core))).collect();
        assert_eq!(order, vec![(1.0, 2), (1.0, 9), (3.0, 0), (5.0, 1)]);
    }

    #[test]
    fn reset_schedules_rebuild() {
        let mut idx = index_with(2);
        idx.join(0, key(0, None, 0), |_| true);
        idx.needs_rebuild = false;
        idx.reset();
        assert!(idx.needs_rebuild);
        assert!(idx.by_key.is_empty());
        assert!(idx.class_of.is_empty());
        assert_eq!(idx.active, 0);
    }
}
