//! Per-assignment estimation: the stochastic completion-time computation of
//! Sec. IV-B and the expectation operators of Sec. V-A.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;

use ecds_cluster::{PState, NUM_PSTATES};
use ecds_persist::{DecodeError, Decoder, Encoder, Persist};
use ecds_pmf::{Pmf, PmfScratch, Prob, ReductionPolicy, Time};
use ecds_sim::{DirtyCores, PrefixStamp, SystemView};
use ecds_workload::Task;

use crate::candidate::EvaluatedCandidate;
use crate::shard::{ClassCandidate, ClassKey, Expiry, ShardIndex, CLASS_NONE, ZERO_ESTS};

/// The four quantities Sec. V-A defines per assignment of task `z` to core
/// `k` (of processor `j`, node `i`) in P-state `π` at time `t_l`.
///
/// Deliberately *not* `PartialEq`: float `==` is the wrong relation for
/// differential testing (NaN-hostile, and weaker than the bit identity the
/// pipeline actually guarantees — `-0.0 == 0.0` would mask a real
/// divergence). Compare with [`AssignmentEstimate::bit_eq`].
#[derive(Debug, Clone, Copy)]
pub struct AssignmentEstimate {
    /// `EET(i,j,k,π,z)`: expectation of the execution-time pmf.
    pub eet: Time,
    /// `ECT(i,j,k,π,t_l,z)`: expectation of the completion-time pmf.
    pub ect: Time,
    /// `EEC(i,j,k,π,z) = EET × μ(i,π) / ε(i)`: expected wall energy.
    pub eec: f64,
    /// `ρ(i,j,k,π,t_l,z)`: probability of finishing by the deadline.
    pub rho: Prob,
}

impl AssignmentEstimate {
    /// `true` iff all four quantities match bit-for-bit (`f64::to_bits`) —
    /// the identity differential suites assert, consistent with lint rule
    /// R3's stance on float equality.
    pub fn bit_eq(&self, other: &Self) -> bool {
        self.eet.to_bits() == other.eet.to_bits()
            && self.ect.to_bits() == other.ect.to_bits()
            && self.eec.to_bits() == other.eec.to_bits()
            && self.rho.to_bits() == other.rho.to_bits()
    }
}

/// Computes the completion-time pmf of the *last pending* task on `core` at
/// the view's time — the "queue prefix" every candidate on that core is
/// convolved with. Returns `None` for an idle, empty core (whose ready time
/// is the current time).
///
/// Per Sec. IV-B: the executing task's execution-time pmf is shifted by its
/// start time, impulses in the past are removed and the rest renormalized
/// (a task that has outlived its entire distribution is treated as
/// completing now); queued tasks' execution-time pmfs are convolved on in
/// FIFO order.
pub fn pending_completion_pmf(
    view: &SystemView<'_>,
    core: usize,
    policy: ReductionPolicy,
) -> Option<Pmf> {
    prefix_with_validity(view, core, policy).0
}

/// [`pending_completion_pmf`] plus the inclusive upper bound of the time
/// window over which the returned prefix stays *bit-identical* while the
/// core's epoch is unchanged (the basis of the evaluator's cache; see
/// DESIGN.md §7).
///
/// The prefix's only time dependence is the truncation of the executing
/// task's shifted pmf at `now`: truncating at any `t` with
/// `now <= t <= min kept impulse` keeps the same impulse set, hence the
/// same renormalization and the same convolution chain. So the bound is
/// the truncated pmf's minimum value — including the degenerate floor case
/// (all mass elapsed → singleton at `now`, valid only at exactly `now`).
/// Idle empty cores have no time dependence (`None` prefix, bound `+∞`);
/// the idle-but-queued branch (unreachable with the bundled engine) shifts
/// by `now` directly, so its bound is `now` itself.
fn prefix_with_validity(
    view: &SystemView<'_>,
    core: usize,
    policy: ReductionPolicy,
) -> (Option<Pmf>, Time) {
    let state = view.core_state(core);
    let node = view.cluster().core(core).node;
    let table = view.table();
    let now = view.time();

    let mut valid_until = f64::INFINITY;
    let mut acc: Option<Pmf> = state.executing().map(|exec| {
        let mut completion = table.pmf(exec.type_id, node, exec.pstate).shift(exec.start);
        completion.truncate_below_or_floor_in_place(now);
        valid_until = completion.min_value();
        completion
    });
    for queued in state.queued() {
        let exec_pmf = table.pmf(queued.type_id, node, queued.pstate);
        acc = Some(match acc {
            Some(prefix) => prefix.convolve(exec_pmf, policy),
            // Unreachable with the bundled engine (it starts tasks on idle
            // cores immediately), but kept correct for custom engines.
            None => {
                valid_until = now;
                exec_pmf.shift(now)
            }
        });
    }
    (acc, valid_until)
}

/// [`prefix_with_validity`] built entirely inside a [`PmfScratch`]: the
/// shift, truncation, and every convolution of the chain run on the
/// scratch's resident prefix buffer (zero intermediate `Pmf`s), and the
/// result is materialized once at the end — for the cache entry that every
/// later lookup borrows. Bit-identical to the legacy builder (see
/// `ecds_pmf::scratch`).
fn prefix_with_validity_fused(
    view: &SystemView<'_>,
    core: usize,
    policy: ReductionPolicy,
    scratch: &mut PmfScratch,
) -> (Option<Pmf>, Time) {
    let state = view.core_state(core);
    let node = view.cluster().core(core).node;
    let table = view.table();
    let now = view.time();

    let mut valid_until = f64::INFINITY;
    scratch.clear_prefix();
    if let Some(exec) = state.executing() {
        scratch.load_prefix_shifted(table.pmf(exec.type_id, node, exec.pstate), exec.start);
        scratch.truncate_prefix_below_or_floor(now);
        valid_until = scratch.prefix().min_value();
    }
    for queued in state.queued() {
        let exec_pmf = table.pmf(queued.type_id, node, queued.pstate);
        if scratch.has_prefix() {
            scratch.convolve_prefix_with(exec_pmf, policy);
        } else {
            // Unreachable with the bundled engine; see the legacy builder.
            valid_until = now;
            scratch.load_prefix_shifted(exec_pmf, now);
        }
    }
    let prefix = scratch.has_prefix().then(|| scratch.prefix().to_pmf());
    (prefix, valid_until)
}

/// `pmf.shift(dt).expectation()` without materializing the shifted pmf:
/// the sum runs over `(value + dt) * prob` in impulse order — exactly the
/// `weighted_value` terms [`Pmf::expectation`] would add — so the result is
/// bit-identical to the allocating form.
fn shifted_expectation(pmf: &Pmf, dt: Time) -> f64 {
    pmf.impulses().iter().map(|i| (i.value + dt) * i.prob).sum()
}

/// `pmf.shift(dt).prob_le(x)` without materializing the shifted pmf — the
/// same accumulate-and-break loop as [`Pmf::prob_le`] over `value + dt`.
fn shifted_prob_le(pmf: &Pmf, dt: Time, x: Time) -> Prob {
    let mut acc = 0.0;
    for imp in pmf.impulses() {
        if imp.value + dt <= x {
            acc += imp.prob;
        } else {
            break;
        }
    }
    acc.min(1.0)
}

/// One core's cached queue prefix: the pmf (or `None` for an idle empty
/// core) plus the state it is exact for.
#[derive(Debug, Clone)]
struct CachedPrefix {
    /// [`CoreState::epoch`](ecds_sim::CoreState::epoch) at computation time.
    epoch: u64,
    /// View time the prefix was computed at.
    computed_at: Time,
    /// Inclusive end of the exact-validity window (see
    /// [`prefix_with_validity`]).
    valid_until: Time,
    prefix: Option<Pmf>,
    /// Bit-fingerprint of `prefix` (epoch-guarded; re-stamped on every
    /// fill) — the fast equivalence-class key of DESIGN.md §11.
    stamp: PrefixStamp,
}

/// The cache entry of `core`, which the caller has just refreshed via
/// [`CandidateEvaluator::refresh_entry`].
fn entry_of(entries: &[Option<CachedPrefix>], core: usize) -> &CachedPrefix {
    entries[core].as_ref().unwrap()
}

/// Bit-identity of two optional queue prefixes: both absent (idle, empty
/// cores), or present and impulse-for-impulse bit-identical.
fn prefix_bit_eq(a: Option<&Pmf>, b: Option<&Pmf>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => a.bit_eq(b),
        _ => false,
    }
}

/// One candidate equivalence class discovered during a mapping event: all
/// cores on `node` whose queue prefixes are bit-identical to the
/// representative's share these five estimates (DESIGN.md §11).
#[derive(Debug, Clone, Copy)]
struct DedupClass {
    /// Owning node of every member (estimates depend on the core only
    /// through its node).
    node: usize,
    /// Prefix fingerprint of every member (`None` for the idle class).
    fingerprint: Option<u64>,
    /// Lowest-index member — the core the estimates were evaluated on.
    rep: usize,
    /// The replicated per-P-state estimates, indexed by P-state.
    ests: [AssignmentEstimate; NUM_PSTATES],
}

/// Reusable class storage for one mapping event. Cleared (capacity
/// retained) at the start of every deduplicated `evaluate_all`, preserving
/// the evaluator's one-allocation-per-call steady state.
#[derive(Debug, Default)]
struct DedupScratch {
    classes: Vec<DedupClass>,
}

/// Evaluates all candidate assignments for one arriving task, computing the
/// per-core queue prefix once and reusing it across the five P-states.
///
/// By default the evaluator also keeps a *versioned prefix cache*: the
/// prefix of each core is remembered together with the core's mutation
/// epoch and its exact-validity time window, and reused across mapping
/// events as long as both still match. The cache is invisible — reused
/// prefixes are bit-identical to recomputed ones by construction — and
/// interiorly mutable, so the evaluation API stays `&self`. The evaluator
/// is `Send` but not `Sync` (one per scheduler, one scheduler per thread).
///
/// Orthogonally to the cache, the evaluator owns a [`PmfScratch`] and runs
/// every candidate convolution through the allocation-free fused kernel,
/// reusing the workspace across all (core, P-state) candidates of a mapping
/// event (and across events). [`CandidateEvaluator::without_fused_kernel`]
/// falls back to the legacy allocating pipeline — the differential
/// reference, mirroring `uncached` for the cache.
///
/// Thirdly, [`CandidateEvaluator::evaluate_all`] deduplicates by candidate
/// *equivalence class*: cores on the same node whose queue prefixes are
/// bit-identical (confirmed, never assumed, via fingerprint then
/// [`Pmf::bit_eq`]) are evaluated once on the lowest-index representative
/// and the estimates replicated, while candidates are still emitted in
/// core-major / P-state-minor order — so heuristics' argmin tie-breaks see
/// an identical candidate stream (DESIGN.md §11).
/// [`CandidateEvaluator::without_candidate_dedup`] evaluates every core
/// independently — the differential reference for the class partition.
#[derive(Debug)]
pub struct CandidateEvaluator {
    policy: ReductionPolicy,
    /// `None` disables caching (differential testing, baselines).
    cache: Option<RefCell<Vec<Option<CachedPrefix>>>>,
    /// `None` disables the fused kernel (differential testing, baselines).
    scratch: Option<RefCell<PmfScratch>>,
    /// `None` disables equivalence-class dedup (differential testing).
    dedup: Option<RefCell<DedupScratch>>,
    /// The persistent shard index of DESIGN.md §13 (`None` falls back to
    /// the per-event partition — the differential reference). Requires
    /// both the cache and dedup; disabled alongside either.
    shard: Option<RefCell<ShardIndex>>,
    /// Cores whose entry was recomputed by a single-core lookup *outside*
    /// a sweep: their class membership must be revalidated next sweep.
    rekey_pending: RefCell<Vec<u32>>,
    /// Guards [`CandidateEvaluator::refresh_entry`]'s pending push: sweeps
    /// refresh through the same code path but rekey inline.
    in_sweep: Cell<bool>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    /// Equivalence classes summed over all deduplicated mapping events.
    dedup_classes: Cell<u64>,
    /// Deduplicated mapping events (`evaluate_all` calls).
    dedup_events: Cell<u64>,
    /// (core, P-state) evaluations skipped via class replication.
    dedup_skipped: Cell<u64>,
}

impl CandidateEvaluator {
    /// Creates a caching evaluator with the given convolution reduction
    /// policy.
    pub fn new(policy: ReductionPolicy) -> Self {
        Self {
            policy,
            cache: Some(RefCell::new(Vec::new())),
            scratch: Some(RefCell::new(PmfScratch::new())),
            dedup: Some(RefCell::new(DedupScratch::default())),
            shard: Some(RefCell::new(ShardIndex::default())),
            rekey_pending: RefCell::new(Vec::new()),
            in_sweep: Cell::new(false),
            hits: Cell::new(0),
            misses: Cell::new(0),
            dedup_classes: Cell::new(0),
            dedup_events: Cell::new(0),
            dedup_skipped: Cell::new(0),
        }
    }

    /// Creates an evaluator that recomputes every prefix from scratch —
    /// the reference the cached evaluator is differentially tested against.
    pub fn uncached(policy: ReductionPolicy) -> Self {
        Self {
            policy,
            cache: None,
            scratch: Some(RefCell::new(PmfScratch::new())),
            dedup: Some(RefCell::new(DedupScratch::default())),
            shard: None,
            rekey_pending: RefCell::new(Vec::new()),
            in_sweep: Cell::new(false),
            hits: Cell::new(0),
            misses: Cell::new(0),
            dedup_classes: Cell::new(0),
            dedup_events: Cell::new(0),
            dedup_skipped: Cell::new(0),
        }
    }

    /// Disables the fused scratch kernel: every convolution goes through the
    /// legacy allocating `convolve` + `reduce` pipeline instead. Used as the
    /// differential reference proving the fused path bit-identical.
    pub fn without_fused_kernel(mut self) -> Self {
        self.scratch = None;
        self
    }

    /// Disables candidate equivalence-class deduplication:
    /// [`CandidateEvaluator::evaluate_all`] evaluates every (core, P-state)
    /// pair independently. Used as the differential reference proving the
    /// class partition bit-identical.
    pub fn without_candidate_dedup(mut self) -> Self {
        self.dedup = None;
        self.shard = None;
        self
    }

    /// Disables the persistent shard index: every deduplicated
    /// `evaluate_all` rebuilds its class partition from scratch (the
    /// per-event path of DESIGN.md §11) and
    /// [`CandidateEvaluator::evaluate_indexed_into`] reports the indexed
    /// path unavailable. The differential reference the shard-indexed
    /// default is tested against.
    pub fn without_shard_index(mut self) -> Self {
        self.shard = None;
        self
    }

    /// `true` when the persistent shard index is enabled (the default;
    /// requires both the prefix cache and candidate dedup).
    pub fn has_shard_index(&self) -> bool {
        self.shard.is_some()
    }

    /// The reduction policy in use.
    pub fn policy(&self) -> ReductionPolicy {
        self.policy
    }

    /// Number of fused-kernel invocations since construction or the last
    /// [`CandidateEvaluator::reset_cache`]; 0 when the fused kernel is
    /// disabled.
    pub fn fused_kernel_calls(&self) -> u64 {
        self.scratch
            .as_ref()
            .map_or(0, |s| s.borrow().kernel_calls())
    }

    /// `(hits, misses)` of the prefix cache since construction or the last
    /// [`CandidateEvaluator::reset_cache`]; `None` if caching is disabled.
    pub fn prefix_cache_stats(&self) -> Option<(u64, u64)> {
        self.cache
            .as_ref()
            .map(|_| (self.hits.get(), self.misses.get()))
    }

    /// `(classes, events)` — candidate equivalence classes summed over all
    /// deduplicated mapping events, and the number of such events — since
    /// construction or the last [`CandidateEvaluator::reset_cache`];
    /// `None` if dedup is disabled.
    pub fn dedup_stats(&self) -> Option<(u64, u64)> {
        self.dedup
            .as_ref()
            .map(|_| (self.dedup_classes.get(), self.dedup_events.get()))
    }

    /// (core, P-state) evaluations skipped because the core belonged to an
    /// already-evaluated equivalence class; 0 when dedup is disabled.
    pub fn dedup_skipped_evaluations(&self) -> u64 {
        self.dedup_skipped.get()
    }

    /// The current bit-fingerprint of `core`'s queue prefix, or `None` for
    /// an unloaded core (whose prefix pmf is itself absent — see
    /// [`PrefixStamp`]). Served from the refreshed cache entry when caching
    /// is enabled, computed on the spot otherwise.
    pub fn prefix_fingerprint(&self, view: &SystemView<'_>, core: usize) -> Option<u64> {
        match &self.cache {
            Some(cache) => {
                let mut entries = cache.borrow_mut();
                self.refresh_entry(&mut entries, view, core);
                entry_of(&entries, core).stamp.fingerprint()
            }
            None => {
                let (prefix, _) = self.compute_prefix(view, core);
                prefix.as_ref().map(Pmf::fingerprint)
            }
        }
    }

    /// Drops every cached prefix and zeroes the hit/miss, dedup, and
    /// kernel counters. Must be called between trials: a fresh trial resets
    /// every core to epoch 0, which would otherwise collide with stale
    /// entries.
    pub fn reset_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.borrow_mut().clear();
        }
        if let Some(scratch) = &self.scratch {
            scratch.borrow_mut().reset_kernel_calls();
        }
        if let Some(shard) = &self.shard {
            shard.borrow_mut().reset();
        }
        self.rekey_pending.borrow_mut().clear();
        self.hits.set(0);
        self.misses.set(0);
        self.dedup_classes.set(0);
        self.dedup_events.set(0);
        self.dedup_skipped.set(0);
    }

    /// Serializes the evaluator's mutable state — the counters, the fused
    /// kernel's call count, and every prefix-cache entry (epoch, validity
    /// window, pmf, stamp) — into a serving checkpoint. The evaluator's
    /// *configuration* (which of cache / fused kernel / dedup are enabled)
    /// is encoded as presence flags so a restore into a differently
    /// configured evaluator fails loudly instead of silently diverging.
    pub fn save_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.hits.get());
        enc.put_u64(self.misses.get());
        enc.put_u64(self.dedup_classes.get());
        enc.put_u64(self.dedup_events.get());
        enc.put_u64(self.dedup_skipped.get());
        match &self.scratch {
            Some(scratch) => {
                enc.put_bool(true);
                enc.put_u64(scratch.borrow().kernel_calls());
            }
            None => enc.put_bool(false),
        }
        match &self.cache {
            Some(cache) => {
                enc.put_bool(true);
                let entries = cache.borrow();
                enc.put_u64(entries.len() as u64);
                for entry in entries.iter() {
                    match entry {
                        Some(e) => {
                            enc.put_bool(true);
                            enc.put_u64(e.epoch);
                            enc.put_f64(e.computed_at);
                            enc.put_f64(e.valid_until);
                            e.prefix.encode(enc);
                            e.stamp.encode(enc);
                        }
                        None => enc.put_bool(false),
                    }
                }
            }
            None => enc.put_bool(false),
        }
        // DedupScratch is per-mapping-event (cleared at every
        // `evaluate_all`), so only the configuration flag persists.
        enc.put_bool(self.dedup.is_some());
    }

    /// Restores state written by [`CandidateEvaluator::save_state`].
    ///
    /// Fails with [`DecodeError::Corrupt`] when the checkpoint was taken
    /// from an evaluator with a different cache / fused-kernel / dedup
    /// configuration.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.hits.set(dec.u64()?);
        self.misses.set(dec.u64()?);
        self.dedup_classes.set(dec.u64()?);
        self.dedup_events.set(dec.u64()?);
        self.dedup_skipped.set(dec.u64()?);
        if dec.bool()? != self.scratch.is_some() {
            return Err(DecodeError::Corrupt(
                "checkpoint fused-kernel configuration mismatch",
            ));
        }
        if let Some(scratch) = &self.scratch {
            scratch.borrow_mut().set_kernel_calls(dec.u64()?);
        }
        if dec.bool()? != self.cache.is_some() {
            return Err(DecodeError::Corrupt(
                "checkpoint prefix-cache configuration mismatch",
            ));
        }
        if let Some(cache) = &self.cache {
            let n = dec.u64()?;
            if n > dec.remaining() {
                return Err(DecodeError::Truncated);
            }
            let mut entries = Vec::with_capacity(n as usize);
            for _ in 0..n {
                if dec.bool()? {
                    let epoch = dec.u64()?;
                    let computed_at = dec.f64()?;
                    let valid_until = dec.f64()?;
                    if computed_at.is_nan() || valid_until.is_nan() {
                        return Err(DecodeError::Corrupt(
                            "cache validity window must not be NaN",
                        ));
                    }
                    let prefix = Option::<Pmf>::decode(dec)?;
                    let stamp = PrefixStamp::decode(dec)?;
                    entries.push(Some(CachedPrefix {
                        epoch,
                        computed_at,
                        valid_until,
                        prefix,
                        stamp,
                    }));
                } else {
                    entries.push(None);
                }
            }
            *cache.borrow_mut() = entries;
        }
        if dec.bool()? != self.dedup.is_some() {
            return Err(DecodeError::Corrupt(
                "checkpoint candidate-dedup configuration mismatch",
            ));
        }
        // The shard index is derived from the cache entries and never
        // checkpointed: a restore schedules a full rebuild instead.
        if let Some(shard) = &self.shard {
            shard.borrow_mut().reset();
        }
        self.rekey_pending.borrow_mut().clear();
        Ok(())
    }

    /// Computes a core's prefix through whichever pipeline is enabled.
    fn compute_prefix(&self, view: &SystemView<'_>, core: usize) -> (Option<Pmf>, Time) {
        match &self.scratch {
            Some(scratch) => {
                prefix_with_validity_fused(view, core, self.policy, &mut scratch.borrow_mut())
            }
            None => prefix_with_validity(view, core, self.policy),
        }
    }

    /// Brings `core`'s cache entry up to date: a lookup counts as a hit
    /// when the core's epoch and the view time both sit inside the cached
    /// entry's exact-validity window, and recomputes (re-stamping the
    /// prefix fingerprint) otherwise. Postcondition: `entries[core]` is
    /// `Some` and exact for the view.
    fn refresh_entry(
        &self,
        entries: &mut Vec<Option<CachedPrefix>>,
        view: &SystemView<'_>,
        core: usize,
    ) {
        let epoch = view.core_epoch(core);
        let now = view.time();
        if entries.len() <= core {
            entries.resize(view.cluster().total_cores().max(core + 1), None);
        }
        let fresh = matches!(
            &entries[core],
            Some(e) if e.epoch == epoch && e.computed_at <= now && now <= e.valid_until
        );
        if fresh {
            self.hits.set(self.hits.get() + 1);
            return;
        }
        self.misses.set(self.misses.get() + 1);
        // A single-core recompute outside a sweep silently changes the
        // prefix bits the core's shard-class membership rests on: queue it
        // for revalidation at the next sweep. The queue is bounded — once
        // it outgrows the core count a rebuild is cheaper than a sweep, so
        // the backlog collapses into a rebuild flag instead of growing.
        if !self.in_sweep.get() {
            if let Some(shard) = &self.shard {
                let mut pending = self.rekey_pending.borrow_mut();
                let mut shard = shard.borrow_mut();
                if pending.len() >= shard.class_of.len().max(64) {
                    shard.needs_rebuild = true;
                    pending.clear();
                } else {
                    pending.push(core as u32);
                }
            }
        }
        let (prefix, valid_until) = self.compute_prefix(view, core);
        let fingerprint = prefix.as_ref().map(Pmf::fingerprint);
        match &mut entries[core] {
            Some(e) => {
                e.epoch = epoch;
                e.computed_at = now;
                e.valid_until = valid_until;
                e.prefix = prefix;
                e.stamp.restamp(fingerprint);
            }
            slot => {
                let mut stamp = PrefixStamp::new();
                stamp.restamp(fingerprint);
                *slot = Some(CachedPrefix {
                    epoch,
                    computed_at: now,
                    valid_until,
                    prefix,
                    stamp,
                });
            }
        }
    }

    /// Hands `f` the current queue prefix of `core`, served from the cache
    /// when the entry is still exact for the view (see
    /// [`CandidateEvaluator::refresh_entry`]), recomputed otherwise.
    fn with_prefix<R>(
        &self,
        view: &SystemView<'_>,
        core: usize,
        f: impl FnOnce(Option<&Pmf>) -> R,
    ) -> R {
        let Some(cache) = &self.cache else {
            let (prefix, _) = self.compute_prefix(view, core);
            return f(prefix.as_ref());
        };
        let mut entries = cache.borrow_mut();
        self.refresh_entry(&mut entries, view, core);
        f(entry_of(&entries, core).prefix.as_ref())
    }

    /// Computes the completion-time pmf of assigning `task` to `core` in
    /// `pstate` at the view's time (exposed for the robustness validator
    /// and for custom heuristics that need the full distribution).
    pub fn completion_pmf(
        &self,
        view: &SystemView<'_>,
        task: &Task,
        core: usize,
        pstate: PState,
    ) -> Pmf {
        self.with_prefix(view, core, |prefix| {
            self.completion_pmf_with_prefix(view, task, core, pstate, prefix)
        })
    }

    fn completion_pmf_with_prefix(
        &self,
        view: &SystemView<'_>,
        task: &Task,
        core: usize,
        pstate: PState,
        prefix: Option<&Pmf>,
    ) -> Pmf {
        let node = view.cluster().core(core).node;
        let exec_pmf = view.table().pmf(task.type_id, node, pstate);
        match prefix {
            Some(p) => match &self.scratch {
                Some(scratch) => {
                    scratch
                        .borrow_mut()
                        .convolve_reduced_into(p, exec_pmf, self.policy)
                }
                None => p.convolve(exec_pmf, self.policy),
            },
            None => exec_pmf.shift(view.time()),
        }
    }

    /// Evaluates one assignment.
    pub fn evaluate(
        &self,
        view: &SystemView<'_>,
        task: &Task,
        core: usize,
        pstate: PState,
    ) -> AssignmentEstimate {
        self.with_prefix(view, core, |prefix| {
            self.evaluate_with_prefix(view, task, core, pstate, prefix)
        })
    }

    fn evaluate_with_prefix(
        &self,
        view: &SystemView<'_>,
        task: &Task,
        core: usize,
        pstate: PState,
        prefix: Option<&Pmf>,
    ) -> AssignmentEstimate {
        let cluster = view.cluster();
        let core_id = cluster.core(core);
        let node = cluster.node_of(core_id);
        let table = view.table();
        let eet = table.eet(task.type_id, core_id.node, pstate);
        // The fused path never materializes the completion-time pmf: the
        // convolution lands in the scratch workspace and the two moments are
        // read straight off the buffer (busy core), or computed shift-free
        // from the execution-time pmf (idle core). Both are bit-identical to
        // the legacy allocating pipeline below.
        let (ect, rho) = match (&self.scratch, prefix) {
            (Some(scratch), Some(p)) => {
                let mut scratch = scratch.borrow_mut();
                let exec_pmf = table.pmf(task.type_id, core_id.node, pstate);
                let completion = scratch.convolve_reduced(p, exec_pmf, self.policy);
                (completion.expectation(), completion.prob_le(task.deadline))
            }
            (Some(_), None) => {
                let exec_pmf = table.pmf(task.type_id, core_id.node, pstate);
                let now = view.time();
                (
                    shifted_expectation(exec_pmf, now),
                    shifted_prob_le(exec_pmf, now, task.deadline),
                )
            }
            (None, _) => {
                let completion = self.completion_pmf_with_prefix(view, task, core, pstate, prefix);
                (completion.expectation(), completion.prob_le(task.deadline))
            }
        };
        AssignmentEstimate {
            eet,
            ect,
            eec: eet * node.power.watts(pstate) / node.efficiency,
            rho,
        }
    }

    /// Evaluates every (core, P-state) assignment for `task`, in
    /// deterministic core-major / P-state-minor order.
    ///
    /// With dedup enabled (the default), cores are partitioned into
    /// equivalence classes keyed by `(node, prefix identity)`; each class
    /// is evaluated once on its lowest-index representative and the
    /// estimates replicated to the other members — bit-identical to
    /// per-core evaluation, because the estimates depend on the core only
    /// through its node and queue prefix (DESIGN.md §11). The emitted
    /// candidate stream is unchanged in length, order, and content.
    pub fn evaluate_all(&self, view: &SystemView<'_>, task: &Task) -> Vec<EvaluatedCandidate> {
        let mut out = Vec::with_capacity(view.cluster().total_cores() * NUM_PSTATES);
        self.evaluate_all_into(view, task, &mut out);
        out
    }

    /// [`CandidateEvaluator::evaluate_all`] into a caller-owned buffer:
    /// `out` is cleared and refilled, retaining its capacity — the
    /// steady-state serve path reuses one buffer across every mapping
    /// event instead of allocating a fresh candidate vector per arrival.
    // lint: alloc-free
    pub fn evaluate_all_into(
        &self,
        view: &SystemView<'_>,
        task: &Task,
        out: &mut Vec<EvaluatedCandidate>,
    ) {
        let num_cores = view.cluster().total_cores();
        out.clear();
        out.reserve(num_cores * NUM_PSTATES);
        let Some(dedup) = &self.dedup else {
            for core in 0..num_cores {
                self.with_prefix(view, core, |prefix| {
                    for pstate in PState::ALL {
                        out.push(EvaluatedCandidate {
                            core,
                            pstate,
                            est: self.evaluate_with_prefix(view, task, core, pstate, prefix),
                        });
                    }
                });
            }
            return;
        };
        if let (Some(shard), Some(cache), Some(_)) = (&self.shard, &self.cache, view.dirty_cores())
        {
            // Shard-indexed path: sweep the persistent partition up to
            // date, then emit per class in core-major order. Counters are
            // arithmetically exact against the per-event path below. A
            // view without a dirty-core mailbox takes the per-event path
            // instead — incrementality (and the warm path's allocation
            // pin) depends on the engine reporting its epoch bumps.
            let mut shard = shard.borrow_mut();
            let mut entries = cache.borrow_mut();
            self.shard_sweep(&mut shard, &mut entries, view);
            let entries = &*entries;
            let shard = &mut *shard;
            shard.stamp += 1;
            shard.ests_stamp.resize(shard.classes.len(), 0);
            shard.ests.resize(shard.classes.len(), ZERO_ESTS);
            let mut touched = 0u64;
            for core in 0..num_cores {
                let id = shard.class_of[core] as usize;
                if shard.ests_stamp[id] != shard.stamp {
                    // First member seen in ascending order == the class
                    // minimum — the same representative the per-event
                    // partition evaluates.
                    shard.ests_stamp[id] = shard.stamp;
                    let prefix = entry_of(entries, core).prefix.as_ref();
                    shard.ests[id] = PState::ALL
                        .map(|pstate| self.evaluate_with_prefix(view, task, core, pstate, prefix));
                    touched += 1;
                }
                let ests = shard.ests[id];
                for (idx, pstate) in PState::ALL.into_iter().enumerate() {
                    out.push(EvaluatedCandidate {
                        core,
                        pstate,
                        est: ests[idx],
                    });
                }
            }
            self.note_dedup_event(num_cores, touched);
            return;
        }
        let mut scratch = dedup.borrow_mut();
        scratch.classes.clear();
        match &self.cache {
            Some(cache) => {
                // Refresh every entry first (same per-core lookups — and
                // hit/miss counts — as the undeduplicated loop), then
                // partition against the refreshed, now-immutable entries.
                let mut entries = cache.borrow_mut();
                for core in 0..num_cores {
                    self.refresh_entry(&mut entries, view, core);
                }
                let entries = &*entries;
                for core in 0..num_cores {
                    let entry = entry_of(entries, core);
                    self.emit_for_core(
                        &mut scratch,
                        out,
                        view,
                        task,
                        core,
                        entry.stamp.fingerprint(),
                        entry.prefix.as_ref(),
                        |rep| entry_of(entries, rep).prefix.as_ref(),
                    );
                }
            }
            None => {
                // Uncached differential baseline: compute each prefix once
                // into a local table, then partition identically.
                // Allocating here is fine — only the cached evaluator
                // promises the one-allocation steady state.
                let prefixes: Vec<Option<Pmf>> = (0..num_cores)
                    .map(|core| self.compute_prefix(view, core).0)
                    .collect();
                for core in 0..num_cores {
                    let prefix = prefixes[core].as_ref();
                    self.emit_for_core(
                        &mut scratch,
                        out,
                        view,
                        task,
                        core,
                        prefix.map(Pmf::fingerprint),
                        prefix,
                        |rep| prefixes[rep].as_ref(),
                    );
                }
            }
        }
        self.dedup_classes
            .set(self.dedup_classes.get() + scratch.classes.len() as u64);
        self.dedup_events.set(self.dedup_events.get() + 1);
    }

    /// Books one deduplicated mapping event that touched `classes` of the
    /// `num_cores` cores: same arithmetic as the per-event partition
    /// (`dedup_skipped` counts `NUM_PSTATES` per replicated core).
    fn note_dedup_event(&self, num_cores: usize, classes: u64) {
        self.dedup_classes.set(self.dedup_classes.get() + classes);
        self.dedup_events.set(self.dedup_events.get() + 1);
        self.dedup_skipped
            .set(self.dedup_skipped.get() + (num_cores as u64 - classes) * NUM_PSTATES as u64);
    }

    /// Resolves `core` against the equivalence classes discovered so far
    /// this mapping event — replicating an existing class's estimates when
    /// the `(node, fingerprint)` key matches *and* `rep_prefix(class.rep)`
    /// is bit-identical to `prefix` (fingerprint equality alone is never
    /// trusted), opening a new class with `core` as representative
    /// otherwise — and appends the core's `NUM_PSTATES` candidates.
    #[allow(clippy::too_many_arguments)]
    fn emit_for_core<'p>(
        &self,
        scratch: &mut DedupScratch,
        out: &mut Vec<EvaluatedCandidate>,
        view: &SystemView<'_>,
        task: &Task,
        core: usize,
        fingerprint: Option<u64>,
        prefix: Option<&'p Pmf>,
        rep_prefix: impl Fn(usize) -> Option<&'p Pmf>,
    ) {
        let node = view.cluster().core(core).node;
        let found = scratch.classes.iter().position(|c| {
            c.node == node
                && c.fingerprint == fingerprint
                && prefix_bit_eq(prefix, rep_prefix(c.rep))
        });
        let class = match found {
            Some(idx) => {
                self.dedup_skipped
                    .set(self.dedup_skipped.get() + NUM_PSTATES as u64);
                idx
            }
            None => {
                let ests = PState::ALL
                    .map(|pstate| self.evaluate_with_prefix(view, task, core, pstate, prefix));
                scratch.classes.push(DedupClass {
                    node,
                    fingerprint,
                    rep: core,
                    ests,
                });
                scratch.classes.len() - 1
            }
        };
        let ests = scratch.classes[class].ests;
        for (idx, pstate) in PState::ALL.into_iter().enumerate() {
            out.push(EvaluatedCandidate {
                core,
                pstate,
                est: ests[idx],
            });
        }
    }

    /// Brings the shard index exactly up to date with `view` (DESIGN.md
    /// §13): determines which cores' memberships could have drifted since
    /// the last sweep — epoch bumps via the engine's dirty-core mailbox,
    /// validity-window expiries via the expiry heap, out-of-sweep
    /// recomputes via the pending queue — detaches exactly those, then
    /// refreshes and re-joins them in ascending core order. Falls back to
    /// a full rebuild whenever incremental correctness can't be proven
    /// (no mailbox, dropped marks, size change, backward time step).
    ///
    /// Cache-counter accounting matches the per-event path exactly: every
    /// candidate core is refreshed through
    /// [`CandidateEvaluator::refresh_entry`] (one hit or miss each), and
    /// every untouched core is a guaranteed hit, booked in bulk.
    fn shard_sweep(
        &self,
        shard: &mut ShardIndex,
        entries: &mut Vec<Option<CachedPrefix>>,
        view: &SystemView<'_>,
    ) {
        let n = view.cluster().total_cores();
        let now = view.time();
        if shard.class_of.len() != n || now < shard.last_now {
            shard.needs_rebuild = true;
        }
        let mut candidates = std::mem::take(&mut shard.candidates);
        candidates.clear();
        let mut pending = self.rekey_pending.borrow_mut();
        // An unbounded pending backlog (e.g. validator loops recomputing
        // entries between events) makes a rebuild cheaper than a sweep.
        let mut full = shard.needs_rebuild || pending.len() > n;
        if !full {
            match view.dirty_cores() {
                // `cursor > head` means this is a different mailbox than
                // the one the cursor was read from: marks may be hidden.
                Some(dirty) if shard.cursor <= dirty.head() => {
                    match dirty.marks_since(shard.cursor) {
                        Some(marks) => {
                            candidates.extend_from_slice(marks);
                            shard.cursor = dirty.head();
                        }
                        // The mailbox overflowed and dropped marks.
                        None => full = true,
                    }
                }
                _ => full = true,
            }
        }
        if full {
            shard.begin_rebuild(n);
            candidates.clear();
            candidates.extend(0..n as u32);
            pending.clear();
            shard.cursor = view.dirty_cores().map_or(0, DirtyCores::head);
        } else {
            // Entries whose exact-validity window has closed may now be
            // stale even at an unchanged epoch. The heap is lazy: a popped
            // core's entry may have been recomputed since the push, so it
            // is re-checked by `refresh_entry` like any other candidate.
            while let Some(&Reverse(top)) = shard.expiry.peek() {
                if now <= top.valid_until {
                    break;
                }
                shard.expiry.pop();
                candidates.push(top.core);
            }
            candidates.append(&mut pending);
            candidates.sort_unstable();
            candidates.dedup();
        }
        drop(pending);
        // Two-phase: detach every candidate first, so phase 2's bit-identity
        // checks only ever compare against representatives that are either
        // untouched (still fresh) or already refreshed this sweep.
        for &core in &candidates {
            shard.leave(core);
        }
        self.in_sweep.set(true);
        for &core in &candidates {
            let core = core as usize;
            self.refresh_entry(entries, view, core);
            let entries_ref: &[Option<CachedPrefix>] = entries;
            let e = entry_of(entries_ref, core);
            if e.valid_until.is_finite() {
                shard.expiry.push(Reverse(Expiry {
                    valid_until: e.valid_until,
                    core: core as u32,
                }));
            }
            let node = view.cluster().core(core).node;
            let key = ClassKey {
                template: view.cluster().template_of(node) as u32,
                fingerprint: e.stamp.fingerprint(),
                depth: view.core_state(core).depth() as u32,
            };
            let prefix = e.prefix.as_ref();
            shard.join(core as u32, key, |rep| {
                prefix_bit_eq(prefix, entry_of(entries_ref, rep as usize).prefix.as_ref())
            });
        }
        self.in_sweep.set(false);
        // Every non-candidate core's entry is provably fresh (epoch
        // unmarked, validity window still open, no out-of-sweep recompute):
        // book the hits the per-event path would count one by one.
        self.hits
            .set(self.hits.get() + (n - candidates.len()) as u64);
        shard.candidates = candidates;
        shard.last_now = now;
        shard.needs_rebuild = false;
    }

    /// Evaluates every candidate assignment for `task` as one
    /// [`ClassCandidate`] per equivalence class — the five per-P-state
    /// estimates computed once on each class's minimum member — without
    /// materializing the `cores × P-states` candidate stream. `out` is
    /// cleared and refilled (capacity retained) in deterministic key order.
    ///
    /// Returns `false`, leaving `out` empty, when the shard index is
    /// disabled or the view carries no dirty-core mailbox (incrementality
    /// depends on the engine reporting epoch bumps); callers fall back to
    /// [`CandidateEvaluator::evaluate_all_into`]. Cache and dedup counters
    /// advance exactly as a full-scan `evaluate_all` would.
    // lint: alloc-free
    pub fn evaluate_indexed_into(
        &self,
        view: &SystemView<'_>,
        task: &Task,
        out: &mut Vec<ClassCandidate>,
    ) -> bool {
        out.clear();
        let (Some(shard), Some(cache), Some(_)) = (&self.shard, &self.cache, view.dirty_cores())
        else {
            return false;
        };
        let num_cores = view.cluster().total_cores();
        let mut shard = shard.borrow_mut();
        let mut entries = cache.borrow_mut();
        self.shard_sweep(&mut shard, &mut entries, view);
        let entries = &*entries;
        let ShardIndex {
            by_key,
            classes,
            class_of,
            active,
            ..
        } = &mut *shard;
        out.reserve(*active);
        // BTreeMap key order, then chain order, is deterministic — though
        // selection never depends on it: indexed tie-breaks anchor on
        // `min_core`, reproducing the full scan's first-wins argmin.
        for (&key, &head) in by_key.iter() {
            let mut id = head;
            while id != CLASS_NONE {
                let class = &mut classes[id as usize];
                // Lazy min-member scan, as in `ShardIndex::min_member`
                // (inlined: the map iteration holds `by_key` borrowed).
                let rep = loop {
                    let &Reverse(top) = class
                        .members
                        .peek()
                        .expect("a live class has at least one member");
                    if class_of[top as usize] == id {
                        break top as usize;
                    }
                    class.members.pop();
                };
                let prefix = entry_of(entries, rep).prefix.as_ref();
                let ests = PState::ALL
                    .map(|pstate| self.evaluate_with_prefix(view, task, rep, pstate, prefix));
                out.push(ClassCandidate {
                    min_core: rep,
                    depth: key.depth as usize,
                    members: class.count as usize,
                    ests,
                    retained: [true; NUM_PSTATES],
                });
                id = class.next;
            }
        }
        debug_assert_eq!(out.len(), *active);
        self.note_dedup_event(num_cores, out.len() as u64);
        true
    }
}

impl Default for CandidateEvaluator {
    fn default() -> Self {
        Self::new(ReductionPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::candidates_bit_eq;
    use ecds_sim::{CoreState, ExecutingTask, QueuedTask, Scenario};
    use ecds_workload::{TaskId, TaskTypeId};

    fn scenario() -> Scenario {
        Scenario::small_for_tests(17)
    }

    fn mk_task(scenario: &Scenario, arrival: f64) -> Task {
        let type_id = TaskTypeId(0);
        Task {
            id: TaskId(0),
            type_id,
            arrival,
            deadline: arrival + scenario.table().type_average(type_id) + scenario.table().t_avg(),
            quantile: 0.5,
        }
    }

    fn idle_cores(scenario: &Scenario) -> Vec<CoreState> {
        vec![CoreState::new(); scenario.cluster().total_cores()]
    }

    #[test]
    fn idle_core_completion_is_shifted_exec_pmf() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 100.0, 1, 60);
        let task = mk_task(&s, 100.0);
        let ev = CandidateEvaluator::default();
        let ct = ev.completion_pmf(&view, &task, 0, PState::P0);
        let exec = s
            .table()
            .pmf(task.type_id, s.cluster().core(0).node, PState::P0);
        assert!((ct.expectation() - (exec.expectation() + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn pending_pmf_none_for_idle_core() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        assert!(pending_completion_pmf(&view, 0, ReductionPolicy::default()).is_none());
    }

    #[test]
    fn busy_core_prefix_raises_ect() {
        let s = scenario();
        let mut cores = idle_cores(&s);
        cores[0].start(ExecutingTask {
            task: TaskId(9),
            type_id: TaskTypeId(1),
            pstate: PState::P0,
            start: 0.0,
            deadline: 5000.0,
        });
        let view = SystemView::new(s.cluster(), s.table(), &cores, 10.0, 1, 60);
        let task = mk_task(&s, 10.0);
        let ev = CandidateEvaluator::default();
        let busy = ev.evaluate(&view, &task, 0, PState::P0);
        let idle = ev.evaluate(&view, &task, 1, PState::P0);
        // Core 1 may be on a different node, so compare like-for-like: the
        // candidate on the busy core must complete later than its own
        // execution time would allow from t_l.
        let own_eet = s
            .table()
            .eet(task.type_id, s.cluster().core(0).node, PState::P0);
        assert!(busy.ect > 10.0 + own_eet - 1e-9);
        assert!(busy.rho <= 1.0 && idle.rho <= 1.0);
    }

    #[test]
    fn queued_tasks_stack_in_the_prefix() {
        let s = scenario();
        let mut cores = idle_cores(&s);
        cores[0].start(ExecutingTask {
            task: TaskId(8),
            type_id: TaskTypeId(1),
            pstate: PState::P2,
            start: 0.0,
            deadline: 5000.0,
        });
        let one_depth = {
            let view = SystemView::new(s.cluster(), s.table(), &cores, 5.0, 1, 60);
            pending_completion_pmf(&view, 0, ReductionPolicy::default())
                .unwrap()
                .expectation()
        };
        cores[0].enqueue(QueuedTask {
            task: TaskId(9),
            type_id: TaskTypeId(2),
            pstate: PState::P1,
            deadline: 5000.0,
        });
        let two_depth = {
            let view = SystemView::new(s.cluster(), s.table(), &cores, 5.0, 1, 60);
            pending_completion_pmf(&view, 0, ReductionPolicy::default())
                .unwrap()
                .expectation()
        };
        let queued_eet = s
            .table()
            .eet(TaskTypeId(2), s.cluster().core(0).node, PState::P1);
        assert!((two_depth - one_depth - queued_eet).abs() < 2.0,
            "prefix should grow by the queued task's EET (one {one_depth}, two {two_depth}, eet {queued_eet})");
    }

    #[test]
    fn truncation_moves_prediction_forward() {
        let s = scenario();
        let mut cores = idle_cores(&s);
        cores[0].start(ExecutingTask {
            task: TaskId(8),
            type_id: TaskTypeId(1),
            pstate: PState::P0,
            start: 0.0,
            deadline: 5000.0,
        });
        let eet = s
            .table()
            .eet(TaskTypeId(1), s.cluster().core(0).node, PState::P0);
        // Observe long past the mean: most impulses are truncated and the
        // predicted completion is pushed to at least `now`.
        let late = 3.0 * eet;
        let view = SystemView::new(s.cluster(), s.table(), &cores, late, 1, 60);
        let pmf = pending_completion_pmf(&view, 0, ReductionPolicy::default()).unwrap();
        assert!(pmf.min_value() >= late - 1e-9);
    }

    #[test]
    fn evaluate_all_is_core_major_deterministic() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let all = ev.evaluate_all(&view, &task);
        assert_eq!(all.len(), s.cluster().total_cores() * 5);
        for (idx, c) in all.iter().enumerate() {
            assert_eq!(c.core, idx / 5);
            assert_eq!(c.pstate, PState::from_index(idx % 5));
        }
        let again = ev.evaluate_all(&view, &task);
        assert!(candidates_bit_eq(&all, &again));
    }

    #[test]
    fn repeated_evaluate_all_hits_the_cache() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let n = s.cluster().total_cores() as u64;
        let first = ev.evaluate_all(&view, &task);
        assert_eq!(ev.prefix_cache_stats(), Some((0, n)));
        let second = ev.evaluate_all(&view, &task);
        assert_eq!(ev.prefix_cache_stats(), Some((n, n)));
        assert!(candidates_bit_eq(&first, &second));
    }

    #[test]
    fn epoch_bump_invalidates_the_cached_prefix() {
        let s = scenario();
        let mut cores = idle_cores(&s);
        let task = mk_task(&s, 5.0);
        let ev = CandidateEvaluator::default();
        {
            let view = SystemView::new(s.cluster(), s.table(), &cores, 5.0, 1, 60);
            let _ = ev.evaluate(&view, &task, 0, PState::P0);
        }
        cores[0].start(ExecutingTask {
            task: TaskId(3),
            type_id: TaskTypeId(1),
            pstate: PState::P0,
            start: 5.0,
            deadline: 5000.0,
        });
        let view = SystemView::new(s.cluster(), s.table(), &cores, 5.0, 1, 60);
        let cached = ev.evaluate(&view, &task, 0, PState::P0);
        let reference = CandidateEvaluator::uncached(ReductionPolicy::default()).evaluate(
            &view,
            &task,
            0,
            PState::P0,
        );
        assert_eq!(ev.prefix_cache_stats(), Some((0, 2)), "mutation must miss");
        assert!(cached.bit_eq(&reference));
    }

    #[test]
    fn time_advance_within_window_hits_and_stays_exact() {
        let s = scenario();
        let mut cores = idle_cores(&s);
        cores[0].start(ExecutingTask {
            task: TaskId(3),
            type_id: TaskTypeId(1),
            pstate: PState::P2,
            start: 0.0,
            deadline: 5000.0,
        });
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let view = SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 60);
        let at_t1 = ev.completion_pmf(&view, &task, 0, PState::P0);
        // The executing pmf's support starts well above t=1, so a small
        // advance keeps the truncation unchanged: the lookup must hit and
        // the pmf must be bit-identical to an uncached recompute.
        let later = SystemView::new(s.cluster(), s.table(), &cores, 2.0, 2, 60);
        let at_t2 = ev.completion_pmf(&later, &task, 0, PState::P0);
        assert_eq!(ev.prefix_cache_stats(), Some((1, 1)));
        assert_eq!(at_t1, at_t2);
        let reference = CandidateEvaluator::uncached(ReductionPolicy::default()).completion_pmf(
            &later,
            &task,
            0,
            PState::P0,
        );
        assert_eq!(at_t2, reference);
    }

    #[test]
    fn time_advance_past_first_impulse_misses_and_recomputes() {
        let s = scenario();
        let mut cores = idle_cores(&s);
        cores[0].start(ExecutingTask {
            task: TaskId(3),
            type_id: TaskTypeId(1),
            pstate: PState::P4,
            start: 0.0,
            deadline: 50_000.0,
        });
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let node = s.cluster().core(0).node;
        let raw = s.table().pmf(TaskTypeId(1), node, PState::P4);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 60);
        let _ = ev.completion_pmf(&view, &task, 0, PState::P0);
        // Jump past the support's start: some impulses fall into the past,
        // the truncation changes, and the cache must recompute.
        let late_t = raw.min_value() + raw.expectation() * 0.5;
        let late = SystemView::new(s.cluster(), s.table(), &cores, late_t, 2, 60);
        let recomputed = ev.completion_pmf(&late, &task, 0, PState::P0);
        assert_eq!(ev.prefix_cache_stats(), Some((0, 2)));
        let reference = CandidateEvaluator::uncached(ReductionPolicy::default()).completion_pmf(
            &late,
            &task,
            0,
            PState::P0,
        );
        assert_eq!(recomputed, reference);
    }

    #[test]
    fn reset_cache_clears_entries_and_counters() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let _ = ev.evaluate_all(&view, &task);
        let _ = ev.evaluate_all(&view, &task);
        ev.reset_cache();
        assert_eq!(ev.prefix_cache_stats(), Some((0, 0)));
        let _ = ev.evaluate_all(&view, &task);
        let n = s.cluster().total_cores() as u64;
        assert_eq!(
            ev.prefix_cache_stats(),
            Some((0, n)),
            "entries were dropped"
        );
    }

    #[test]
    fn uncached_evaluator_reports_no_stats() {
        let ev = CandidateEvaluator::uncached(ReductionPolicy::default());
        assert_eq!(ev.prefix_cache_stats(), None);
        ev.reset_cache(); // must be a harmless no-op
        assert_eq!(ev.prefix_cache_stats(), None);
    }

    #[test]
    fn evaluator_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CandidateEvaluator>();
    }

    fn busy_cores(s: &Scenario) -> Vec<CoreState> {
        let mut cores = idle_cores(s);
        for (i, core) in cores.iter_mut().enumerate() {
            core.start(ExecutingTask {
                task: TaskId(i),
                type_id: TaskTypeId(i % 3),
                pstate: PState::P1,
                start: 0.0,
                deadline: 5000.0,
            });
            core.enqueue(QueuedTask {
                task: TaskId(100 + i),
                type_id: TaskTypeId((i + 1) % 3),
                pstate: PState::P2,
                deadline: 6000.0,
            });
        }
        cores
    }

    #[test]
    fn fused_evaluate_all_is_bit_identical_to_legacy() {
        let s = scenario();
        let cores = busy_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 50.0, 1, 60);
        let task = mk_task(&s, 50.0);
        for (fused, legacy) in [
            (
                CandidateEvaluator::default(),
                CandidateEvaluator::default().without_fused_kernel(),
            ),
            (
                CandidateEvaluator::uncached(ReductionPolicy::default()),
                CandidateEvaluator::uncached(ReductionPolicy::default()).without_fused_kernel(),
            ),
        ] {
            assert!(candidates_bit_eq(
                &fused.evaluate_all(&view, &task),
                &legacy.evaluate_all(&view, &task)
            ));
        }
    }

    #[test]
    fn fused_completion_pmf_is_bit_identical_to_legacy() {
        let s = scenario();
        let cores = busy_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 50.0, 1, 60);
        let task = mk_task(&s, 50.0);
        let fused = CandidateEvaluator::default();
        let legacy = CandidateEvaluator::default().without_fused_kernel();
        for pstate in PState::ALL {
            assert_eq!(
                fused.completion_pmf(&view, &task, 0, pstate),
                legacy.completion_pmf(&view, &task, 0, pstate)
            );
        }
    }

    #[test]
    fn fused_kernel_calls_count_and_reset() {
        let s = scenario();
        let cores = busy_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 50.0, 1, 60);
        let task = mk_task(&s, 50.0);
        let ev = CandidateEvaluator::default().without_candidate_dedup();
        assert_eq!(ev.fused_kernel_calls(), 0);
        let _ = ev.evaluate_all(&view, &task);
        // Per busy core: one prefix convolution (the queued task) plus one
        // candidate convolution per P-state.
        let n = s.cluster().total_cores() as u64;
        assert_eq!(ev.fused_kernel_calls(), n * (1 + PState::ALL.len() as u64));
        ev.reset_cache();
        assert_eq!(ev.fused_kernel_calls(), 0);
    }

    #[test]
    fn dedup_cuts_candidate_kernel_calls_to_one_set_per_class() {
        let s = scenario();
        let cores = busy_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 50.0, 1, 60);
        let task = mk_task(&s, 50.0);
        let ev = CandidateEvaluator::default();
        let _ = ev.evaluate_all(&view, &task);
        let n = s.cluster().total_cores() as u64;
        let (classes, events) = ev.dedup_stats().expect("dedup is on by default");
        assert_eq!(events, 1);
        assert!(classes <= n, "at most one class per core");
        // One prefix convolution per core (every entry is refreshed), but
        // candidate convolutions only for class representatives.
        assert_eq!(
            ev.fused_kernel_calls(),
            n + classes * PState::ALL.len() as u64
        );
        assert_eq!(
            ev.dedup_skipped_evaluations(),
            (n - classes) * PState::ALL.len() as u64
        );
    }

    #[test]
    fn dedup_collapses_idle_cores_per_node() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let all = ev.evaluate_all(&view, &task);
        assert_eq!(all.len(), s.cluster().total_cores() * NUM_PSTATES);
        // Every idle core of a node is interchangeable: exactly one class
        // per node.
        let nodes = s.cluster().num_nodes() as u64;
        assert_eq!(ev.dedup_stats(), Some((nodes, 1)));
        let n = s.cluster().total_cores() as u64;
        assert_eq!(
            ev.dedup_skipped_evaluations(),
            (n - nodes) * NUM_PSTATES as u64
        );
    }

    #[test]
    fn dedup_is_bit_identical_to_per_core_evaluation() {
        let s = scenario();
        for cores in [idle_cores(&s), busy_cores(&s)] {
            let view = SystemView::new(s.cluster(), s.table(), &cores, 50.0, 1, 60);
            let task = mk_task(&s, 50.0);
            for (deduped, reference) in [
                (
                    CandidateEvaluator::default(),
                    CandidateEvaluator::default().without_candidate_dedup(),
                ),
                (
                    CandidateEvaluator::uncached(ReductionPolicy::default()),
                    CandidateEvaluator::uncached(ReductionPolicy::default())
                        .without_candidate_dedup(),
                ),
            ] {
                assert!(candidates_bit_eq(
                    &deduped.evaluate_all(&view, &task),
                    &reference.evaluate_all(&view, &task)
                ));
            }
        }
    }

    #[test]
    fn without_dedup_reports_no_stats() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default().without_candidate_dedup();
        let _ = ev.evaluate_all(&view, &task);
        assert_eq!(ev.dedup_stats(), None);
        assert_eq!(ev.dedup_skipped_evaluations(), 0);
    }

    #[test]
    fn reset_cache_zeroes_dedup_counters() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let _ = ev.evaluate_all(&view, &task);
        ev.reset_cache();
        assert_eq!(ev.dedup_stats(), Some((0, 0)));
        assert_eq!(ev.dedup_skipped_evaluations(), 0);
    }

    #[test]
    fn prefix_fingerprint_matches_loads_not_cores() {
        let s = scenario();
        let cluster = s.cluster();
        // Two cores on the same node, loaded identically, plus a third
        // loaded differently.
        let twin = (1..cluster.total_cores())
            .find(|&c| cluster.core(c).node == cluster.core(0).node)
            .expect("test cluster has multi-core nodes");
        let mut cores = idle_cores(&s);
        for &c in &[0, twin] {
            cores[c].start(ExecutingTask {
                task: TaskId(c),
                type_id: TaskTypeId(1),
                pstate: PState::P1,
                start: 0.0,
                deadline: 5000.0,
            });
        }
        let view = SystemView::new(cluster, s.table(), &cores, 10.0, 1, 60);
        for ev in [
            CandidateEvaluator::default(),
            CandidateEvaluator::uncached(ReductionPolicy::default()),
        ] {
            let f0 = ev.prefix_fingerprint(&view, 0);
            assert!(f0.is_some(), "busy core has a prefix to fingerprint");
            assert_eq!(f0, ev.prefix_fingerprint(&view, twin));
            // An unloaded core has no prefix, hence no fingerprint.
            let idle = (0..cluster.total_cores())
                .find(|&c| c != 0 && c != twin)
                .expect("more than two cores");
            assert_eq!(ev.prefix_fingerprint(&view, idle), None);
        }
    }

    #[test]
    fn legacy_evaluator_reports_zero_kernel_calls() {
        let s = scenario();
        let cores = busy_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 50.0, 1, 60);
        let task = mk_task(&s, 50.0);
        let ev = CandidateEvaluator::default().without_fused_kernel();
        let _ = ev.evaluate_all(&view, &task);
        assert_eq!(ev.fused_kernel_calls(), 0);
    }

    /// Asserts every observable counter of the two evaluators agrees —
    /// the shard-indexed path must be *arithmetically* exact, not just
    /// bit-identical in its candidate stream, because the committed
    /// artifacts embed these counters.
    fn assert_counters_eq(a: &CandidateEvaluator, b: &CandidateEvaluator) {
        assert_eq!(a.prefix_cache_stats(), b.prefix_cache_stats());
        assert_eq!(a.dedup_stats(), b.dedup_stats());
        assert_eq!(a.dedup_skipped_evaluations(), b.dedup_skipped_evaluations());
        assert_eq!(a.fused_kernel_calls(), b.fused_kernel_calls());
    }

    #[test]
    fn shard_indexed_evaluate_all_stays_exact_across_mutations() {
        let s = scenario();
        let mut cores = idle_cores(&s);
        let mut dirty = ecds_sim::DirtyCores::default();
        let shard = CandidateEvaluator::default();
        let reference = CandidateEvaluator::default().without_shard_index();
        assert!(shard.has_shard_index());
        assert!(!reference.has_shard_index());
        let n = s.cluster().total_cores();
        let mut now = 0.0;
        for step in 0..8 {
            let task = mk_task(&s, now);
            {
                let view = SystemView::new(s.cluster(), s.table(), &cores, now, 1 + step, 60)
                    .with_dirty(&dirty);
                assert!(candidates_bit_eq(
                    &shard.evaluate_all(&view, &task),
                    &reference.evaluate_all(&view, &task)
                ));
                assert_counters_eq(&shard, &reference);
            }
            // Mutate a handful of cores — epoch bumps the engine would
            // report through the mailbox — and advance time unevenly so
            // some steps cross validity windows.
            for k in 0..=(step % 3) {
                let c = (step * 5 + k * 7) % n;
                if cores[c].executing().is_some() {
                    cores[c].enqueue(QueuedTask {
                        task: TaskId(1000 + step * 10 + k),
                        type_id: TaskTypeId((step + k) % 3),
                        pstate: PState::P2,
                        deadline: now + 6000.0,
                    });
                } else {
                    cores[c].start(ExecutingTask {
                        task: TaskId(500 + step * 10 + k),
                        type_id: TaskTypeId(step % 3),
                        pstate: PState::P1,
                        start: now,
                        deadline: now + 5000.0,
                    });
                }
                dirty.mark(c);
            }
            now += 0.5 + 150.0 * (step % 4) as f64;
        }
    }

    #[test]
    fn shard_expiry_recomputes_stale_windows_without_marks() {
        let s = scenario();
        let cores = busy_cores(&s);
        let dirty = ecds_sim::DirtyCores::default();
        let shard = CandidateEvaluator::default();
        let reference = CandidateEvaluator::default().without_shard_index();
        let task = mk_task(&s, 1.0);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 60).with_dirty(&dirty);
        assert!(candidates_bit_eq(
            &shard.evaluate_all(&view, &task),
            &reference.evaluate_all(&view, &task)
        ));
        // Jump far past every executing pmf's first impulse with NO dirty
        // marks: every prefix's truncation changes, so both evaluators
        // must recompute every busy core — the shard finds them through
        // its expiry heap alone.
        let node = s.cluster().core(0).node;
        let raw = s.table().pmf(TaskTypeId(0), node, PState::P1);
        let late_t = raw.min_value() + raw.expectation() * 3.0;
        let late_task = mk_task(&s, late_t);
        let late =
            SystemView::new(s.cluster(), s.table(), &cores, late_t, 2, 60).with_dirty(&dirty);
        assert!(candidates_bit_eq(
            &shard.evaluate_all(&late, &late_task),
            &reference.evaluate_all(&late, &late_task)
        ));
        assert_counters_eq(&shard, &reference);
        let (_, misses) = shard.prefix_cache_stats().unwrap();
        let n = s.cluster().total_cores() as u64;
        assert!(misses > n, "the second event must have recomputed");
    }

    #[test]
    fn shard_revalidates_out_of_sweep_recomputes() {
        let s = scenario();
        let cores = busy_cores(&s);
        let dirty = ecds_sim::DirtyCores::default();
        let shard = CandidateEvaluator::default();
        let reference = CandidateEvaluator::default().without_shard_index();
        let task = mk_task(&s, 1.0);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 60).with_dirty(&dirty);
        let _ = shard.evaluate_all(&view, &task);
        let _ = reference.evaluate_all(&view, &task);
        // A validator-style single-core lookup between events, late enough
        // to recompute core 0's entry outside any sweep: the shard must
        // revalidate its membership at the next event.
        let node = s.cluster().core(0).node;
        let raw = s.table().pmf(TaskTypeId(0), node, PState::P1);
        let late_t = raw.min_value() + raw.expectation();
        let late_task = mk_task(&s, late_t);
        let late =
            SystemView::new(s.cluster(), s.table(), &cores, late_t, 2, 60).with_dirty(&dirty);
        let a = shard.evaluate(&late, &late_task, 0, PState::P0);
        let b = reference.evaluate(&late, &late_task, 0, PState::P0);
        assert!(a.bit_eq(&b));
        assert!(candidates_bit_eq(
            &shard.evaluate_all(&late, &late_task),
            &reference.evaluate_all(&late, &late_task)
        ));
        assert_counters_eq(&shard, &reference);
    }

    #[test]
    fn shard_rebuilds_after_reset() {
        let s = scenario();
        let cores = busy_cores(&s);
        let dirty = ecds_sim::DirtyCores::default();
        let shard = CandidateEvaluator::default();
        let task = mk_task(&s, 1.0);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 60).with_dirty(&dirty);
        let before = shard.evaluate_all(&view, &task);
        shard.reset_cache();
        let fresh = CandidateEvaluator::default().without_shard_index();
        assert!(candidates_bit_eq(
            &shard.evaluate_all(&view, &task),
            &fresh.evaluate_all(&view, &task)
        ));
        assert_counters_eq(&shard, &fresh);
        assert!(candidates_bit_eq(
            &before,
            &shard.evaluate_all(&view, &task)
        ));
    }

    #[test]
    fn indexed_classes_cover_every_core_with_identical_estimates() {
        let s = scenario();
        let cores = busy_cores(&s);
        let dirty = ecds_sim::DirtyCores::default();
        let ev = CandidateEvaluator::default();
        let task = mk_task(&s, 1.0);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 60).with_dirty(&dirty);
        let mut classes = Vec::new();
        assert!(ev.evaluate_indexed_into(&view, &task, &mut classes));
        let n = s.cluster().total_cores();
        assert_eq!(classes.iter().map(|c| c.members).sum::<usize>(), n);
        // Each class's estimates are bit-identical to the representative's
        // candidates in the materialized stream (same sweep: cache hits).
        let all = CandidateEvaluator::default()
            .without_shard_index()
            .evaluate_all(&view, &task);
        for class in &classes {
            assert!(class.any_retained());
            for (pi, est) in class.ests.iter().enumerate() {
                let cand = &all[class.min_core * NUM_PSTATES + pi];
                assert_eq!(cand.core, class.min_core);
                assert!(est.bit_eq(&cand.est));
            }
        }
    }

    #[test]
    fn indexed_path_requires_shard_and_mailbox() {
        let s = scenario();
        let cores = idle_cores(&s);
        let task = mk_task(&s, 0.0);
        let mut classes = Vec::new();
        // No shard index configured.
        let dirty = ecds_sim::DirtyCores::default();
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60).with_dirty(&dirty);
        let off = CandidateEvaluator::default().without_shard_index();
        assert!(!off.evaluate_indexed_into(&view, &task, &mut classes));
        assert!(classes.is_empty());
        // Shard on, but the view has no dirty-core mailbox.
        let bare = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let on = CandidateEvaluator::default();
        assert!(!on.evaluate_indexed_into(&bare, &task, &mut classes));
        assert!(classes.is_empty());
    }

    #[test]
    fn deeper_pstates_cost_more_time_on_idle_core() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let p0 = ev.evaluate(&view, &task, 0, PState::P0);
        let p4 = ev.evaluate(&view, &task, 0, PState::P4);
        assert!(p4.eet > p0.eet);
        assert!(p4.ect > p0.ect);
        assert!(p4.rho <= p0.rho + 1e-9);
    }

    #[test]
    fn eec_combines_power_and_efficiency() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0);
        let ev = CandidateEvaluator::default();
        let est = ev.evaluate(&view, &task, 0, PState::P1);
        let node = s.cluster().node(s.cluster().core(0).node);
        let expected = est.eet * node.power.watts(PState::P1) / node.efficiency;
        assert!((est.eec - expected).abs() < 1e-9);
    }

    #[test]
    fn rho_is_high_with_generous_deadline_on_idle_core() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 0.0, 1, 60);
        let task = mk_task(&s, 0.0); // deadline = type avg + t_avg: generous
        let ev = CandidateEvaluator::default();
        let est = ev.evaluate(&view, &task, 0, PState::P0);
        assert!(est.rho > 0.9, "rho {}", est.rho);
    }

    #[test]
    fn rho_is_zero_for_impossible_deadline() {
        let s = scenario();
        let cores = idle_cores(&s);
        let view = SystemView::new(s.cluster(), s.table(), &cores, 1000.0, 1, 60);
        let mut task = mk_task(&s, 1000.0);
        task.deadline = 1000.5; // far below any execution time
        let ev = CandidateEvaluator::default();
        let est = ev.evaluate(&view, &task, 0, PState::P0);
        assert_eq!(est.rho, 0.0);
    }
}
