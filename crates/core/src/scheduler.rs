//! The scheduler: evaluate → filter → choose, plus the energy ledger.

use ecds_persist::{DecodeError, Decoder, Encoder};
use ecds_pmf::ReductionPolicy;
use ecds_sim::{Assignment, Mapper, MapperStats, SystemView};
use ecds_workload::{Task, TaskId};

use crate::candidate::EvaluatedCandidate;
use crate::estimate::CandidateEvaluator;
use crate::filters::{Filter, FilterCtx};
use crate::heuristics::Heuristic;
use crate::shard::ClassCandidate;

/// An immediate-mode resource-allocation scheduler: a heuristic wrapped in
/// an (optional) filter chain, with the Sec. V-F remaining-energy ledger.
///
/// Implements [`ecds_sim::Mapper`], so it plugs directly into
/// [`ecds_sim::Simulation`]. The ledger starts at the budget each trial and
/// decrements by the expected energy consumption of every assignment made —
/// deliberately an *estimate* (idle power and actual-vs-expected deviations
/// are invisible to it), exactly as the paper prescribes.
///
/// ```
/// use ecds_core::{EnergyFilter, LightestLoad, RobustnessFilter, Scheduler};
/// use ecds_pmf::ReductionPolicy;
/// use ecds_sim::{Scenario, Simulation};
///
/// let scenario = Scenario::small_for_tests(42);
/// // Hand-assemble the paper's best configuration (the `build_scheduler`
/// // factory does the same from enums).
/// let mut scheduler = Scheduler::new(
///     Box::new(LightestLoad),
///     vec![Box::new(EnergyFilter::paper()), Box::new(RobustnessFilter::paper())],
///     scenario.energy_budget().unwrap(),
///     ReductionPolicy::default(),
/// );
/// assert_eq!(scheduler.label(), "LL/en+rob");
/// let trace = scenario.trace(0);
/// let result = Simulation::new(&scenario, &trace).run(&mut scheduler);
/// assert!(result.completed() > 0);
/// ```
pub struct Scheduler {
    heuristic: Box<dyn Heuristic>,
    filters: Vec<Box<dyn Filter>>,
    evaluator: CandidateEvaluator,
    budget: f64,
    remaining: f64,
    record_predictions: bool,
    predictions: Vec<(ecds_workload::TaskId, f64)>,
    /// Reused full-scan candidate buffer: one assignment allocates nothing
    /// in the steady state.
    candidates: Vec<EvaluatedCandidate>,
    /// Reused indexed (per-class) candidate buffer.
    indexed: Vec<ClassCandidate>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("heuristic", &self.heuristic.name())
            .field(
                "filters",
                &self.filters.iter().map(|x| x.name()).collect::<Vec<_>>(),
            )
            .field("budget", &self.budget)
            .field("remaining", &self.remaining)
            .finish()
    }
}

impl Scheduler {
    /// Assembles a scheduler. `budget` seeds the ledger (use `f64::INFINITY`
    /// for unconstrained runs); `policy` bounds convolution support sizes.
    pub fn new(
        heuristic: Box<dyn Heuristic>,
        filters: Vec<Box<dyn Filter>>,
        budget: f64,
        policy: ReductionPolicy,
    ) -> Self {
        assert!(
            budget > 0.0,
            "budget must be positive (use INFINITY to disable)"
        );
        Self {
            heuristic,
            filters,
            evaluator: CandidateEvaluator::new(policy),
            budget,
            remaining: budget,
            record_predictions: false,
            predictions: Vec::new(),
            candidates: Vec::new(),
            indexed: Vec::new(),
        }
    }

    /// Disables the evaluator's queue-prefix pmf cache, recomputing every
    /// prefix from scratch. The reference configuration the cached default
    /// is differentially tested against; also useful for benchmarking the
    /// cache itself.
    pub fn without_prefix_cache(mut self) -> Self {
        self.evaluator = CandidateEvaluator::uncached(self.evaluator.policy());
        self
    }

    /// Disables the evaluator's fused scratch kernel, routing every
    /// convolution through the legacy allocating pipeline. The reference
    /// configuration the fused default is differentially tested against.
    /// Composes with [`Scheduler::without_prefix_cache`] for the fully
    /// legacy evaluator.
    pub fn without_fused_kernel(mut self) -> Self {
        self.evaluator = self.evaluator.without_fused_kernel();
        self
    }

    /// Disables the evaluator's candidate equivalence-class deduplication,
    /// evaluating every (core, P-state) pair independently. The reference
    /// configuration the deduplicated default is differentially tested
    /// against (apply after [`Scheduler::without_prefix_cache`], which
    /// rebuilds the evaluator).
    pub fn without_candidate_dedup(mut self) -> Self {
        self.evaluator = self.evaluator.without_candidate_dedup();
        self
    }

    /// Disables the evaluator's persistent shard index: every mapping
    /// event rebuilds its class partition from scratch and selection runs
    /// on the materialized candidate stream. The reference configuration
    /// the shard-indexed default is differentially tested against.
    pub fn without_shard_index(mut self) -> Self {
        self.evaluator = self.evaluator.without_shard_index();
        self
    }

    /// Enables recording of `(task, ρ)` pairs — the robustness value of
    /// every chosen assignment — for the model-validation harness (the
    /// `validate` binary compares these predictions against realized
    /// on-time completions, a calibration check of contribution (a)).
    pub fn with_prediction_recording(mut self) -> Self {
        self.record_predictions = true;
        self
    }

    /// The `(task, predicted ρ)` pairs recorded during the last trial
    /// (empty unless [`Scheduler::with_prediction_recording`] was used).
    pub fn predictions(&self) -> &[(ecds_workload::TaskId, f64)] {
        &self.predictions
    }

    /// Human-readable label: heuristic name plus filter names, e.g.
    /// `"LL/en+rob"` or `"MECT/none"`.
    pub fn label(&self) -> String {
        if self.filters.is_empty() {
            format!("{}/none", self.heuristic.name())
        } else {
            let names: Vec<&str> = self.filters.iter().map(|f| f.name()).collect();
            format!("{}/{}", self.heuristic.name(), names.join("+"))
        }
    }

    /// The current remaining-energy ledger value ζ(t_l).
    pub fn remaining_energy(&self) -> f64 {
        self.remaining
    }

    /// The configured budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }
}

impl Mapper for Scheduler {
    fn on_trial_start(&mut self) {
        self.remaining = self.budget;
        self.predictions.clear();
        self.heuristic.reset();
        // A fresh trial rebuilds every core at epoch 0, so stale entries
        // from the previous trial would collide with the new epoch stream.
        self.evaluator.reset_cache();
    }

    fn stats(&self) -> MapperStats {
        MapperStats {
            prefix_cache: self.evaluator.prefix_cache_stats(),
            fused_kernel_calls: self.evaluator.fused_kernel_calls(),
            candidate_classes: self.evaluator.dedup_stats(),
            dedup_skipped_evaluations: self.evaluator.dedup_skipped_evaluations(),
        }
    }

    fn assign(&mut self, task: &Task, view: &SystemView<'_>) -> Option<Assignment> {
        let ctx = FilterCtx {
            remaining_energy: self.remaining,
            budget: self.budget,
        };
        // Indexed top-k selection (DESIGN.md §13): when the whole pipeline
        // can decide from the equivalence-class form, skip materializing
        // the cores × P-states stream. Bit-identical to the full scan —
        // same chosen core, P-state, ledger decrement, and prediction.
        if self.heuristic.supports_indexed()
            && self.filters.iter().all(|f| f.supports_indexed())
            && self
                .evaluator
                .evaluate_indexed_into(view, task, &mut self.indexed)
        {
            for filter in &self.filters {
                filter.retain_indexed(task, view, &ctx, &mut self.indexed);
                if self.indexed.is_empty() {
                    return None; // the task is discarded
                }
            }
            let (ci, pstate) = self.heuristic.choose_indexed(task, view, &self.indexed)?;
            let class = self.indexed[ci];
            let est = class.ests[pstate.index()];
            self.remaining -= est.eec;
            if self.record_predictions {
                self.predictions.push((task.id, est.rho));
            }
            return Some(Assignment {
                core: class.min_core,
                pstate,
            });
        }
        self.evaluator
            .evaluate_all_into(view, task, &mut self.candidates);
        for filter in &self.filters {
            filter.retain(task, view, &ctx, &mut self.candidates);
            if self.candidates.is_empty() {
                return None; // the task is discarded
            }
        }
        let idx = self.heuristic.choose(task, view, &self.candidates)?;
        let chosen = self.candidates[idx];
        self.remaining -= chosen.est.eec;
        if self.record_predictions {
            self.predictions.push((task.id, chosen.est.rho));
        }
        Some(Assignment {
            core: chosen.core,
            pstate: chosen.pstate,
        })
    }

    fn save_state(&self, enc: &mut Encoder) {
        enc.put_f64(self.remaining);
        enc.put_u64(self.predictions.len() as u64);
        for &(task, rho) in &self.predictions {
            enc.put_u64(task.0 as u64);
            enc.put_f64(rho);
        }
        self.heuristic.save_state(enc);
        self.evaluator.save_state(enc);
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.remaining = dec.f64()?;
        let n = dec.u64()?;
        if n > dec.remaining() / 16 {
            return Err(DecodeError::Truncated);
        }
        self.predictions.clear();
        for _ in 0..n {
            let id = dec.u64()? as usize;
            let rho = dec.f64()?;
            self.predictions.push((TaskId(id), rho));
        }
        self.heuristic.restore_state(dec)?;
        self.evaluator.restore_state(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::energy::EnergyFilter;
    use crate::filters::robustness::RobustnessFilter;
    use crate::heuristics::mect::MinimumExpectedCompletionTime;
    use crate::heuristics::sq::ShortestQueue;
    use ecds_cluster::PState;
    use ecds_sim::{Scenario, Simulation};

    fn unconstrained(heuristic: Box<dyn Heuristic>) -> Scheduler {
        Scheduler::new(heuristic, vec![], f64::INFINITY, ReductionPolicy::default())
    }

    #[test]
    fn unfiltered_mect_always_picks_p0() {
        let s = Scenario::small_for_tests(12);
        let trace = s.trace(0);
        let mut sched = unconstrained(Box::new(MinimumExpectedCompletionTime));
        let result = Simulation::new(&s, &trace).run(&mut sched);
        for o in result.outcomes() {
            let (_, pstate) = o.assignment.expect("nothing is discarded unfiltered");
            assert_eq!(pstate, PState::P0, "MECT must choose the base state");
        }
    }

    #[test]
    fn unfiltered_sq_always_picks_p0() {
        let s = Scenario::small_for_tests(12);
        let trace = s.trace(0);
        let mut sched = unconstrained(Box::new(ShortestQueue));
        let result = Simulation::new(&s, &trace).run(&mut sched);
        for o in result.outcomes() {
            let (_, pstate) = o.assignment.unwrap();
            assert_eq!(pstate, PState::P0, "SQ's EET tie-break selects P0");
        }
    }

    #[test]
    fn ledger_decrements_per_assignment() {
        let s = Scenario::small_for_tests(12);
        let trace = s.trace(0);
        let budget = s.energy_budget().unwrap();
        let mut sched = Scheduler::new(
            Box::new(MinimumExpectedCompletionTime),
            vec![],
            budget,
            ReductionPolicy::default(),
        );
        let _ = Simulation::new(&s, &trace).run(&mut sched);
        assert!(sched.remaining_energy() < budget);
    }

    #[test]
    fn trial_start_resets_ledger() {
        let s = Scenario::small_for_tests(12);
        let trace = s.trace(0);
        let budget = s.energy_budget().unwrap();
        let mut sched = Scheduler::new(
            Box::new(MinimumExpectedCompletionTime),
            vec![],
            budget,
            ReductionPolicy::default(),
        );
        let first = Simulation::new(&s, &trace).run(&mut sched);
        let after_first = sched.remaining_energy();
        let second = Simulation::new(&s, &trace).run(&mut sched);
        // on_trial_start resets the ledger, so runs are identical.
        assert_eq!(after_first, sched.remaining_energy());
        assert_eq!(first.outcomes(), second.outcomes());
    }

    #[test]
    fn filtered_scheduler_can_discard() {
        let s = Scenario::small_for_tests(12);
        let trace = s.trace(0);
        // A budget so tiny the fair share rejects everything immediately.
        let mut sched = Scheduler::new(
            Box::new(MinimumExpectedCompletionTime),
            vec![Box::new(EnergyFilter::paper())],
            1e-6,
            ReductionPolicy::default(),
        );
        let result = Simulation::new(&s, &trace).run(&mut sched);
        assert_eq!(result.discarded(), result.window());
    }

    #[test]
    fn label_encodes_heuristic_and_filters() {
        let sched = Scheduler::new(
            Box::new(MinimumExpectedCompletionTime),
            vec![
                Box::new(EnergyFilter::paper()),
                Box::new(RobustnessFilter::paper()),
            ],
            100.0,
            ReductionPolicy::default(),
        );
        assert_eq!(sched.label(), "MECT/en+rob");
        let bare = unconstrained(Box::new(ShortestQueue));
        assert_eq!(bare.label(), "SQ/none");
    }

    #[test]
    fn prediction_recording_captures_every_assignment() {
        let s = Scenario::small_for_tests(12);
        let trace = s.trace(0);
        let mut sched = Scheduler::new(
            Box::new(MinimumExpectedCompletionTime),
            vec![],
            f64::INFINITY,
            ReductionPolicy::default(),
        )
        .with_prediction_recording();
        let result = Simulation::new(&s, &trace).run(&mut sched);
        assert_eq!(
            sched.predictions().len(),
            result.window() - result.discarded()
        );
        for &(task, rho) in sched.predictions() {
            assert!(task.0 < result.window());
            assert!((0.0..=1.0).contains(&rho), "rho {rho} out of range");
        }
        // Recording resets per trial.
        let _ = Simulation::new(&s, &trace).run(&mut sched);
        assert_eq!(
            sched.predictions().len(),
            result.window() - result.discarded()
        );
    }

    #[test]
    fn predictions_empty_without_opt_in() {
        let s = Scenario::small_for_tests(12);
        let trace = s.trace(0);
        let mut sched = unconstrained(Box::new(ShortestQueue));
        let _ = Simulation::new(&s, &trace).run(&mut sched);
        assert!(sched.predictions().is_empty());
    }

    #[test]
    fn shard_indexed_selection_matches_full_scan_end_to_end() {
        use crate::heuristics::ll::LightestLoad;
        let s = Scenario::small_for_tests(12);
        let trace = s.trace(0);
        let budget = s.energy_budget().unwrap();
        let heuristics: [fn() -> Box<dyn Heuristic>; 3] = [
            || Box::new(ShortestQueue),
            || Box::new(MinimumExpectedCompletionTime),
            || Box::new(LightestLoad),
        ];
        for mk in heuristics {
            for filtered in [false, true] {
                let filters = || -> Vec<Box<dyn Filter>> {
                    if filtered {
                        vec![
                            Box::new(EnergyFilter::paper()),
                            Box::new(RobustnessFilter::paper()),
                        ]
                    } else {
                        vec![]
                    }
                };
                let mut indexed =
                    Scheduler::new(mk(), filters(), budget, ReductionPolicy::default());
                let mut full = Scheduler::new(mk(), filters(), budget, ReductionPolicy::default())
                    .without_shard_index();
                let a = Simulation::new(&s, &trace).run(&mut indexed);
                let b = Simulation::new(&s, &trace).run(&mut full);
                assert_eq!(
                    a.outcomes(),
                    b.outcomes(),
                    "indexed selection diverged ({}, filtered={filtered})",
                    indexed.label()
                );
                assert_eq!(indexed.remaining_energy(), full.remaining_energy());
                assert_eq!(indexed.stats(), full.stats(), "{}", indexed.label());
            }
        }
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = Scheduler::new(
            Box::new(ShortestQueue),
            vec![],
            0.0,
            ReductionPolicy::default(),
        );
    }
}
