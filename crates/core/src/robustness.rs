//! The system robustness metric ρ(t_l) (paper Sec. IV-C, Eqs. 3–4).
//!
//! An allocation's robustness at time-step `t_l` is the *expected number of
//! tasks that will complete by their individual deadlines*, predicted at
//! `t_l`. Tasks on different cores are independent, so the metric decomposes
//! into per-core sums (Eq. 3) totalled over the cluster (Eq. 4). The
//! immediate-mode corollary the heuristics exploit: assigning an arriving
//! task where its own on-time probability is highest maximizes ρ(t_l).
//!
//! This module exists to *validate* the robustness model (the paper's
//! contribution (a)): integration tests check that ρ(t_l) computed mid-run
//! predicts the realized on-time completions.

use ecds_pmf::{truncate::truncate_below_or_floor, Prob, ReductionPolicy};
use ecds_sim::SystemView;

/// Eq. 3: `ρ(i,j,k,t_l)` — the expected number of on-time completions among
/// the tasks pending (executing or queued) on `core`, predicted at the
/// view's time.
///
/// Walks the core's FIFO queue, maintaining each task's completion-time pmf
/// exactly as Sec. IV-B prescribes, and sums `P(completion ≤ deadline)`.
pub fn core_robustness(view: &SystemView<'_>, core: usize, policy: ReductionPolicy) -> Prob {
    let state = view.core_state(core);
    let node = view.cluster().core(core).node;
    let table = view.table();
    let now = view.time();

    let mut total = 0.0;
    let mut prefix = match state.executing() {
        Some(exec) => {
            let completion = truncate_below_or_floor(
                &table.pmf(exec.type_id, node, exec.pstate).shift(exec.start),
                now,
            );
            total += completion.prob_le(exec.deadline);
            Some(completion)
        }
        None => None,
    };
    for queued in state.queued() {
        let exec_pmf = table.pmf(queued.type_id, node, queued.pstate);
        let completion = match prefix {
            Some(p) => p.convolve(exec_pmf, policy),
            None => exec_pmf.shift(now),
        };
        total += completion.prob_le(queued.deadline);
        prefix = Some(completion);
    }
    total
}

/// Eq. 4: `ρ(t_l)` — the cluster-wide expected number of on-time
/// completions among all pending tasks.
pub fn system_robustness(view: &SystemView<'_>, policy: ReductionPolicy) -> Prob {
    (0..view.cluster().total_cores())
        .map(|core| core_robustness(view, core, policy))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_cluster::PState;
    use ecds_sim::{CoreState, ExecutingTask, QueuedTask, Scenario};
    use ecds_workload::{TaskId, TaskTypeId};

    fn scenario() -> Scenario {
        Scenario::small_for_tests(33)
    }

    #[test]
    fn empty_system_has_zero_robustness() {
        let s = scenario();
        let cores = vec![CoreState::new(); s.cluster().total_cores()];
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 0, 60);
        assert_eq!(system_robustness(&view, ReductionPolicy::default()), 0.0);
    }

    #[test]
    fn single_task_with_loose_deadline_contributes_nearly_one() {
        let s = scenario();
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        cores[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            start: 0.0,
            deadline: 1e9,
        });
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 60);
        let rho = system_robustness(&view, ReductionPolicy::default());
        assert!((rho - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hopeless_deadline_contributes_zero() {
        let s = scenario();
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        cores[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(0),
            pstate: PState::P4,
            start: 0.0,
            deadline: 0.5, // already unmeetable at t_l = 1
        });
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 1.0, 1, 60);
        assert_eq!(system_robustness(&view, ReductionPolicy::default()), 0.0);
    }

    #[test]
    fn system_is_sum_of_cores() {
        let s = scenario();
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        let deadline = 1e6;
        cores[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(1),
            pstate: PState::P0,
            start: 0.0,
            deadline,
        });
        if cores.len() > 1 {
            cores[1].start(ExecutingTask {
                task: TaskId(1),
                type_id: TaskTypeId(2),
                pstate: PState::P2,
                start: 0.0,
                deadline,
            });
        }
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 1.0, 2, 60);
        let policy = ReductionPolicy::default();
        let by_core: f64 = (0..cores.len())
            .map(|c| core_robustness(&view, c, policy))
            .sum();
        assert!((system_robustness(&view, policy) - by_core).abs() < 1e-12);
    }

    #[test]
    fn queued_task_with_tight_deadline_lowers_contribution() {
        let s = scenario();
        let node = s.cluster().core(0).node;
        let eet0 = s.table().eet(TaskTypeId(0), node, PState::P0);
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        cores[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            start: 0.0,
            deadline: 1e9,
        });
        // Queued task must wait ~eet0 then run; a deadline under eet0 is
        // nearly hopeless, a deadline of 10× is nearly certain.
        cores[0].enqueue(QueuedTask {
            task: TaskId(1),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            deadline: eet0 * 0.5,
        });
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 2, 60);
        let tight = core_robustness(&view, 0, ReductionPolicy::default());

        let mut cores2 = vec![CoreState::new(); s.cluster().total_cores()];
        cores2[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            start: 0.0,
            deadline: 1e9,
        });
        cores2[0].enqueue(QueuedTask {
            task: TaskId(1),
            type_id: TaskTypeId(0),
            pstate: PState::P0,
            deadline: eet0 * 10.0,
        });
        let view2 = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores2, 0.0, 2, 60);
        let loose = core_robustness(&view2, 0, ReductionPolicy::default());

        assert!(loose > tight);
        assert!(loose > 1.5, "loose {loose}");
        assert!(tight < 1.5, "tight {tight}");
    }

    #[test]
    fn robustness_bounded_by_pending_count() {
        let s = scenario();
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        cores[0].start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(0),
            pstate: PState::P1,
            start: 0.0,
            deadline: 1e9,
        });
        for i in 1..4 {
            cores[0].enqueue(QueuedTask {
                task: TaskId(i),
                type_id: TaskTypeId(0),
                pstate: PState::P1,
                deadline: 1e9,
            });
        }
        let view = ecds_sim::SystemView::new(s.cluster(), s.table(), &cores, 0.0, 4, 60);
        let rho = system_robustness(&view, ReductionPolicy::default());
        assert!(rho <= 4.0 + 1e-9);
        assert!(rho > 3.9, "all deadlines are loose: {rho}");
    }
}
