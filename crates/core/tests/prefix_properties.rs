//! Property tests of the queue-prefix computation and its versioned cache:
//! truncation semantics, monotonicity in queue depth, epoch bookkeeping,
//! and cached-vs-uncached bit-identity over arbitrary core states.

use ecds_cluster::PState;
use ecds_core::{candidates_bit_eq, pending_completion_pmf, CandidateEvaluator};
use ecds_pmf::ReductionPolicy;
use ecds_sim::{CoreState, ExecutingTask, QueuedTask, Scenario, SystemView};
use ecds_workload::{Task, TaskId, TaskTypeId};
use proptest::prelude::*;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::small_for_tests(21))
}

fn num_types() -> usize {
    scenario().workload().num_types
}

/// A core with an executing task (started at `start`) and `queued` waiting
/// tasks of arbitrary types and P-states.
fn busy_core(exec_type: usize, start: f64, queued: &[(usize, usize)]) -> CoreState {
    let mut core = CoreState::new();
    core.start(ExecutingTask {
        task: TaskId(0),
        type_id: TaskTypeId(exec_type),
        pstate: PState::P1,
        start,
        deadline: 1e9,
    });
    for (i, &(type_id, ps)) in queued.iter().enumerate() {
        core.enqueue(QueuedTask {
            task: TaskId(i + 1),
            type_id: TaskTypeId(type_id),
            pstate: PState::from_index(ps),
            deadline: 1e9,
        });
    }
    core
}

fn probe_task() -> Task {
    Task {
        id: TaskId(99),
        type_id: TaskTypeId(0),
        arrival: 0.0,
        deadline: 1e9,
        quantile: 0.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sec. IV-B truncation: whatever is pending on a core, its predicted
    /// completion cannot lie in the past — the prefix's support starts at
    /// or after the view time.
    #[test]
    fn prefix_support_floor_is_at_least_view_time(
        exec_type in 0usize..10,
        start in 0.0f64..500.0,
        elapsed in 0.0f64..4000.0,
        queued in prop::collection::vec((0usize..10, 0usize..5), 0..4),
    ) {
        let s = scenario();
        prop_assert!(exec_type < num_types());
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        cores[0] = busy_core(exec_type, start, &queued);
        let now = start + elapsed;
        let view = SystemView::new(s.cluster(), s.table(), &cores, now, 1, 60);
        let pmf = pending_completion_pmf(&view, 0, ReductionPolicy::default())
            .expect("core is executing");
        prop_assert!(
            pmf.min_value() >= now - 1e-9,
            "support starts at {} before now {}", pmf.min_value(), now
        );
    }

    /// Convolving one more queued task onto a prefix can only push the
    /// expected completion out: the prefix expectation is monotone
    /// non-decreasing in queue depth.
    #[test]
    fn prefix_expectation_is_monotone_in_queue_depth(
        exec_type in 0usize..10,
        now in 1.0f64..200.0,
        queued in prop::collection::vec((0usize..10, 0usize..5), 1..5),
    ) {
        let s = scenario();
        let mut expectations = Vec::new();
        for depth in 0..=queued.len() {
            let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
            cores[0] = busy_core(exec_type, 0.0, &queued[..depth]);
            let view = SystemView::new(s.cluster(), s.table(), &cores, now, 1, 60);
            let pmf = pending_completion_pmf(&view, 0, ReductionPolicy::default())
                .expect("core is executing");
            expectations.push(pmf.expectation());
        }
        for w in expectations.windows(2) {
            prop_assert!(
                w[1] >= w[0] - 1e-6,
                "expectation shrank when a task was queued: {} -> {}", w[0], w[1]
            );
        }
    }

    /// Every mutator bumps the epoch by exactly one (complete bumps once
    /// even though it also pops), and the epoch never decreases.
    #[test]
    fn every_mutation_bumps_the_epoch(
        ops in prop::collection::vec(0usize..4, 1..20),
    ) {
        let mut core = CoreState::new();
        let mut id = 0usize;
        for &op in &ops {
            let before = core.epoch();
            let mutated = match op {
                0 => {
                    core.enqueue(QueuedTask {
                        task: TaskId(id),
                        type_id: TaskTypeId(0),
                        pstate: PState::P0,
                        deadline: 100.0,
                    });
                    id += 1;
                    true
                }
                1 => {
                    if core.is_idle() {
                        core.start(ExecutingTask {
                            task: TaskId(id),
                            type_id: TaskTypeId(0),
                            pstate: PState::P0,
                            start: 0.0,
                            deadline: 100.0,
                        });
                        id += 1;
                        true
                    } else {
                        false
                    }
                }
                2 => {
                    if core.is_idle() {
                        false
                    } else {
                        let _ = core.complete();
                        true
                    }
                }
                _ => core.pop_queued().is_some(),
            };
            let expected = if mutated { before + 1 } else { before };
            prop_assert_eq!(core.epoch(), expected, "op {} at epoch {}", op, before);
        }
    }

    /// Cached and uncached evaluators agree bit-for-bit on arbitrary core
    /// states, view times, and repeat/advance patterns.
    #[test]
    fn cached_prefix_is_bit_identical_to_recompute(
        exec_type in 0usize..10,
        start in 0.0f64..100.0,
        elapsed_a in 0.0f64..2000.0,
        advance in 0.0f64..2000.0,
        queued in prop::collection::vec((0usize..10, 0usize..5), 0..3),
    ) {
        let s = scenario();
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        cores[0] = busy_core(exec_type, start, &queued);
        let task = probe_task();
        let cached = CandidateEvaluator::default();
        let uncached = CandidateEvaluator::uncached(ReductionPolicy::default());
        for now in [start + elapsed_a, start + elapsed_a, start + elapsed_a + advance] {
            let view = SystemView::new(s.cluster(), s.table(), &cores, now, 1, 60);
            prop_assert!(
                candidates_bit_eq(
                    &cached.evaluate_all(&view, &task),
                    &uncached.evaluate_all(&view, &task)
                ),
                "diverged at t={}", now
            );
        }
    }
}
