//! Property tests of candidate equivalence-class deduplication: the
//! congruence the partition rests on (equal class keys imply bit-identical
//! estimates for every P-state), and deduped-vs-per-core bit-identity of
//! `evaluate_all` over arbitrary core loads.

use ecds_cluster::{PState, NUM_PSTATES};
use ecds_core::{candidates_bit_eq, CandidateEvaluator};
use ecds_pmf::ReductionPolicy;
use ecds_sim::{CoreState, ExecutingTask, QueuedTask, Scenario, SystemView};
use ecds_workload::{Task, TaskId, TaskTypeId};
use proptest::prelude::*;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::small_for_tests(21))
}

/// First pair of distinct cores on the same node.
fn same_node_pair() -> (usize, usize) {
    static PAIR: OnceLock<(usize, usize)> = OnceLock::new();
    *PAIR.get_or_init(|| {
        let cluster = scenario().cluster();
        for a in 0..cluster.total_cores() {
            for b in a + 1..cluster.total_cores() {
                if cluster.core(a).node == cluster.core(b).node {
                    return (a, b);
                }
            }
        }
        panic!("test cluster has multi-core nodes");
    })
}

/// One arbitrary core load: `None` leaves the core idle and empty;
/// `Some((exec_type, start, queued))` starts a task and queues more.
type Load = Option<(usize, f64, Vec<(usize, usize)>)>;

fn apply_load(core: &mut CoreState, load: &Load) {
    if let Some((exec_type, start, queued)) = load {
        core.start(ExecutingTask {
            task: TaskId(0),
            type_id: TaskTypeId(*exec_type),
            pstate: PState::P1,
            start: *start,
            deadline: 1e9,
        });
        for (i, &(type_id, ps)) in queued.iter().enumerate() {
            core.enqueue(QueuedTask {
                task: TaskId(i + 1),
                type_id: TaskTypeId(type_id),
                pstate: PState::from_index(ps),
                deadline: 1e9,
            });
        }
    }
}

fn arb_load() -> impl Strategy<Value = Load> {
    (
        prop::bool::ANY,
        0usize..10,
        0.0f64..100.0,
        prop::collection::vec((0usize..10, 0usize..5), 0..3),
    )
        .prop_map(|(busy, exec_type, start, queued)| busy.then_some((exec_type, start, queued)))
}

fn probe_task() -> Task {
    Task {
        id: TaskId(99),
        type_id: TaskTypeId(0),
        arrival: 0.0,
        deadline: 1e9,
        quantile: 0.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The congruence property the dedup rests on: two cores on the same
    /// node carrying the same load (equal class key by construction) get
    /// bit-identical estimates for all five P-states, and equal prefix
    /// fingerprints — for the caching and the uncached evaluator alike.
    #[test]
    fn equal_class_keys_imply_bit_identical_estimates(
        load in arb_load(),
        elapsed in 0.0f64..2000.0,
    ) {
        let s = scenario();
        let (a, b) = same_node_pair();
        let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
        apply_load(&mut cores[a], &load);
        apply_load(&mut cores[b], &load);
        let now = load.as_ref().map_or(elapsed, |(_, start, _)| start + elapsed);
        let view = SystemView::new(s.cluster(), s.table(), &cores, now, 1, 60);
        let task = probe_task();
        for ev in [
            CandidateEvaluator::default(),
            CandidateEvaluator::uncached(ReductionPolicy::default()),
        ] {
            prop_assert_eq!(
                ev.prefix_fingerprint(&view, a),
                ev.prefix_fingerprint(&view, b),
                "fingerprints diverged for equal loads"
            );
            for pstate in PState::ALL {
                let ea = ev.evaluate(&view, &task, a, pstate);
                let eb = ev.evaluate(&view, &task, b, pstate);
                prop_assert!(
                    ea.bit_eq(&eb),
                    "estimates diverged at {:?}: {:?} vs {:?}", pstate, ea, eb
                );
            }
        }
    }

    /// Deduplicated `evaluate_all` is bit-identical to independent
    /// per-core evaluation over arbitrary loads — drawn from a small pool
    /// so duplicate prefixes (real class collapses) are common, alongside
    /// idle cores and fully distinct ones.
    #[test]
    fn deduped_evaluate_all_matches_per_core(
        pool in prop::collection::vec(arb_load(), 1..4),
        picks in prop::collection::vec(0usize..4, 24),
        elapsed in 0.0f64..500.0,
    ) {
        let s = scenario();
        let n = s.cluster().total_cores();
        let mut cores = vec![CoreState::new(); n];
        for (core, pick) in cores.iter_mut().zip(picks) {
            apply_load(core, &pool[pick % pool.len()]);
        }
        let now = 100.0 + elapsed; // past every start in the pool
        let view = SystemView::new(s.cluster(), s.table(), &cores, now, 1, 60);
        let task = probe_task();
        for (deduped, per_core) in [
            (
                CandidateEvaluator::default(),
                CandidateEvaluator::default().without_candidate_dedup(),
            ),
            (
                CandidateEvaluator::uncached(ReductionPolicy::default()),
                CandidateEvaluator::uncached(ReductionPolicy::default())
                    .without_candidate_dedup(),
            ),
        ] {
            let dd = deduped.evaluate_all(&view, &task);
            let pc = per_core.evaluate_all(&view, &task);
            prop_assert_eq!(dd.len(), n * NUM_PSTATES);
            prop_assert!(candidates_bit_eq(&dd, &pc));
            // The class partition never exceeds one class per core and
            // accounts for every skipped evaluation.
            let (classes, events) = deduped.dedup_stats().expect("dedup on");
            prop_assert_eq!(events, 1);
            prop_assert!(classes >= 1 && classes <= n as u64);
            prop_assert_eq!(
                deduped.dedup_skipped_evaluations(),
                (n as u64 - classes) * NUM_PSTATES as u64
            );
        }
    }
}
