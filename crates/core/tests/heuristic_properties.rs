//! Property tests of the heuristic/filter/scheduler pipeline: for
//! arbitrary candidate sets, every heuristic must choose a valid index and
//! every filter must only ever shrink the set.

use ecds_cluster::PState;
use ecds_core::AssignmentEstimate;
use ecds_core::{
    DeterministicMct, EnergyFilter, EvaluatedCandidate, Filter, FilterCtx, Heuristic, KPercentBest,
    LightestLoad, MinimumExecutionTime, MinimumExpectedCompletionTime, OpportunisticLoadBalancing,
    RandomChoice, RobustnessFilter, ShortestQueue,
};
use ecds_sim::{CoreState, Scenario, SystemView};
use ecds_workload::{Task, TaskId, TaskTypeId};
use proptest::prelude::*;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::small_for_tests(55))
}

fn idle_cores() -> &'static Vec<CoreState> {
    static C: OnceLock<Vec<CoreState>> = OnceLock::new();
    C.get_or_init(|| vec![CoreState::new(); scenario().cluster().total_cores()])
}

fn task() -> Task {
    Task {
        id: TaskId(0),
        type_id: TaskTypeId(0),
        arrival: 0.0,
        deadline: 5000.0,
        quantile: 0.5,
    }
}

/// Arbitrary candidate annotated with plausible (finite, positive)
/// estimates on valid cores of the small scenario.
fn arb_candidates() -> impl Strategy<Value = Vec<EvaluatedCandidate>> {
    let cores = scenario().cluster().total_cores();
    prop::collection::vec(
        (
            0..cores,
            0usize..5,
            1.0f64..5000.0,    // eet
            0.0f64..5000.0,    // queue delay (ect = eet + delay)
            1.0f64..500_000.0, // eec
            0.0f64..1.0,       // rho
        ),
        1..24,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(core, ps, eet, delay, eec, rho)| EvaluatedCandidate {
                core,
                pstate: PState::from_index(ps),
                est: AssignmentEstimate {
                    eet,
                    ect: eet + delay,
                    eec,
                    rho,
                },
            })
            .collect()
    })
}

fn all_heuristics() -> Vec<Box<dyn Heuristic>> {
    vec![
        Box::new(ShortestQueue),
        Box::new(MinimumExpectedCompletionTime),
        Box::new(LightestLoad),
        Box::new(RandomChoice::new(7)),
        Box::new(OpportunisticLoadBalancing),
        Box::new(MinimumExecutionTime),
        Box::new(KPercentBest::default()),
        Box::new(DeterministicMct),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_heuristic_returns_a_valid_index(cands in arb_candidates()) {
        let s = scenario();
        let view = SystemView::new(s.cluster(), s.table(), idle_cores(), 0.0, 1, 60);
        for mut h in all_heuristics() {
            let idx = h.choose(&task(), &view, &cands);
            let idx = idx.expect("non-empty candidates must yield a choice");
            prop_assert!(idx < cands.len(), "{} returned {idx}", h.name());
        }
    }

    #[test]
    fn every_heuristic_abstains_on_empty(_x in 0..1i32) {
        let s = scenario();
        let view = SystemView::new(s.cluster(), s.table(), idle_cores(), 0.0, 1, 60);
        for mut h in all_heuristics() {
            prop_assert_eq!(h.choose(&task(), &view, &[]), None);
        }
    }

    #[test]
    fn deterministic_heuristics_are_stable(cands in arb_candidates()) {
        let s = scenario();
        let view = SystemView::new(s.cluster(), s.table(), idle_cores(), 0.0, 1, 60);
        for build in [
            || Box::new(ShortestQueue) as Box<dyn Heuristic>,
            || Box::new(MinimumExpectedCompletionTime) as Box<dyn Heuristic>,
            || Box::new(LightestLoad) as Box<dyn Heuristic>,
            || Box::new(MinimumExecutionTime) as Box<dyn Heuristic>,
        ] {
            let a = build().choose(&task(), &view, &cands);
            let b = build().choose(&task(), &view, &cands);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn mect_choice_minimizes_ect(cands in arb_candidates()) {
        let s = scenario();
        let view = SystemView::new(s.cluster(), s.table(), idle_cores(), 0.0, 1, 60);
        let idx = MinimumExpectedCompletionTime
            .choose(&task(), &view, &cands)
            .unwrap();
        let min = cands.iter().map(|c| c.est.ect).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(cands[idx].est.ect, min);
    }

    #[test]
    fn ll_choice_minimizes_load(cands in arb_candidates()) {
        let s = scenario();
        let view = SystemView::new(s.cluster(), s.table(), idle_cores(), 0.0, 1, 60);
        let idx = LightestLoad.choose(&task(), &view, &cands).unwrap();
        let load = |c: &EvaluatedCandidate| c.est.eec * (1.0 - c.est.rho);
        let min = cands.iter().map(load).fold(f64::INFINITY, f64::min);
        prop_assert!((load(&cands[idx]) - min).abs() < 1e-12);
    }

    #[test]
    fn filters_only_shrink_and_preserve_membership(
        cands in arb_candidates(),
        remaining in 0.0f64..1e8,
        thresh in 0.0f64..1.0,
    ) {
        let s = scenario();
        let view = SystemView::new(s.cluster(), s.table(), idle_cores(), 0.0, 1, 60);
        let ctx = FilterCtx {
            remaining_energy: remaining,
            budget: 1e8,
        };
        let filters: Vec<Box<dyn Filter>> = vec![
            Box::new(EnergyFilter::paper()),
            Box::new(RobustnessFilter::with_threshold(thresh)),
        ];
        for f in filters {
            let mut filtered = cands.clone();
            f.retain(&task(), &view, &ctx, &mut filtered);
            prop_assert!(filtered.len() <= cands.len());
            for c in &filtered {
                prop_assert!(
                    cands.iter().any(|k| k.bit_eq(c)),
                    "{} invented a candidate",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn robustness_filter_is_exact(cands in arb_candidates(), thresh in 0.0f64..1.0) {
        let s = scenario();
        let view = SystemView::new(s.cluster(), s.table(), idle_cores(), 0.0, 1, 60);
        let ctx = FilterCtx { remaining_energy: 1.0, budget: 1.0 };
        let f = RobustnessFilter::with_threshold(thresh);
        let mut filtered = cands.clone();
        f.retain(&task(), &view, &ctx, &mut filtered);
        let expected = cands.iter().filter(|c| c.est.rho >= thresh).count();
        prop_assert_eq!(filtered.len(), expected);
    }

    #[test]
    fn kpb_respects_its_shortlist(cands in arb_candidates(), k in 1.0f64..100.0) {
        let s = scenario();
        let view = SystemView::new(s.cluster(), s.table(), idle_cores(), 0.0, 1, 60);
        let idx = KPercentBest::new(k).choose(&task(), &view, &cands).unwrap();
        let keep = ((cands.len() as f64 * k / 100.0).ceil() as usize).max(1);
        // The chosen candidate's EET rank must be within the shortlist.
        let chosen_eet = cands[idx].est.eet;
        let strictly_better = cands.iter().filter(|c| c.est.eet < chosen_eet).count();
        prop_assert!(strictly_better < keep,
            "choice ranked {strictly_better} by EET but shortlist is {keep}");
    }
}
