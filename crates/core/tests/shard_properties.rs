//! Property tests of the persistent shard index: over *arbitrary mutation
//! sequences* (starts, completions, queue pushes/pops, uneven time
//! advances) driven through an epoch-bump mailbox, the incrementally
//! maintained index must stay bit-identical to the full-scan reference —
//! both the materialized candidate stream (`candidates_bit_eq`) and the
//! index-selected top choice for every indexed heuristic (SQ, MECT, LL)
//! under every filter variant.

use ecds_cluster::{PState, NUM_PSTATES};
use ecds_core::{
    candidates_bit_eq, CandidateEvaluator, ClassCandidate, EnergyFilter, EvaluatedCandidate,
    Filter, FilterCtx, Heuristic, LightestLoad, MinimumExpectedCompletionTime, RobustnessFilter,
    ShortestQueue,
};
use ecds_sim::{CoreState, DirtyCores, ExecutingTask, QueuedTask, Scenario, SystemView};
use ecds_workload::{Task, TaskId, TaskTypeId};
use proptest::prelude::*;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::small_for_tests(31))
}

/// One mutation against one core. Ops that do not apply to the core's
/// current state (completing an idle core, starting a busy one) degrade to
/// the legal neighbour so every drawn sequence is executable.
#[derive(Debug, Clone)]
enum Op {
    /// Start executing (or enqueue, if already busy).
    Start { type_id: usize },
    /// Enqueue behind the executing task.
    Enqueue { type_id: usize, pstate: usize },
    /// Complete the executing task, auto-starting the next queued one.
    Complete,
}

fn arb_step() -> impl Strategy<Value = (Vec<(usize, Op)>, f64, usize)> {
    let op =
        (0usize..3, 0usize..10, 0usize..NUM_PSTATES).prop_map(
            |(which, type_id, pstate)| match which {
                0 => Op::Start { type_id },
                1 => Op::Enqueue { type_id, pstate },
                _ => Op::Complete,
            },
        );
    (
        prop::collection::vec((0usize..64, op), 0..6),
        0.1f64..300.0,
        // Extra unmutated core to over-mark (always legal).
        0usize..64,
    )
}

fn apply(core: &mut CoreState, op: &Op, id: usize, now: f64) {
    match op {
        Op::Start { type_id } => {
            let exec = ExecutingTask {
                task: TaskId(id),
                type_id: TaskTypeId(*type_id),
                pstate: PState::P1,
                start: now,
                deadline: now + 5_000.0,
            };
            if core.executing().is_none() {
                core.start(exec);
            } else {
                core.enqueue(QueuedTask {
                    task: exec.task,
                    type_id: exec.type_id,
                    pstate: PState::P2,
                    deadline: exec.deadline,
                });
            }
        }
        Op::Enqueue { type_id, pstate } => {
            if core.executing().is_some() {
                core.enqueue(QueuedTask {
                    task: TaskId(id),
                    type_id: TaskTypeId(*type_id),
                    pstate: PState::from_index(*pstate),
                    deadline: now + 6_000.0,
                });
            }
        }
        Op::Complete => {
            if core.executing().is_some() {
                let (_, next) = core.complete();
                if let Some(q) = next {
                    core.start(ExecutingTask {
                        task: q.task,
                        type_id: q.type_id,
                        pstate: q.pstate,
                        start: now,
                        deadline: q.deadline,
                    });
                }
            }
        }
    }
}

fn probe_task(step: usize, deadline_slack: f64, now: f64) -> Task {
    Task {
        id: TaskId(10_000 + step),
        type_id: TaskTypeId(step % 10),
        arrival: now,
        deadline: now + deadline_slack,
        quantile: 0.5,
    }
}

/// The full-scan selection: filters applied with [`Filter::retain`] on the
/// materialized stream, then [`Heuristic::choose`].
fn full_scan_choice(
    h: &mut dyn Heuristic,
    filters: &[&dyn Filter],
    task: &Task,
    view: &SystemView<'_>,
    ctx: &FilterCtx,
    all: &[EvaluatedCandidate],
) -> Option<(usize, PState)> {
    let mut cands = all.to_vec();
    for f in filters {
        f.retain(task, view, ctx, &mut cands);
    }
    h.choose(task, view, &cands)
        .map(|i| (cands[i].core, cands[i].pstate))
}

/// The indexed selection: [`Filter::retain_indexed`] on the class form,
/// then [`Heuristic::choose_indexed`], resolved to the class's minimum
/// member core (the representative the full scan would pick).
fn indexed_choice(
    h: &mut dyn Heuristic,
    filters: &[&dyn Filter],
    task: &Task,
    view: &SystemView<'_>,
    ctx: &FilterCtx,
    classes: &[ClassCandidate],
) -> Option<(usize, PState)> {
    let mut classes = classes.to_vec();
    for f in filters {
        f.retain_indexed(task, view, ctx, &mut classes);
    }
    h.choose_indexed(task, view, &classes)
        .map(|(ci, ps)| (classes[ci].min_core, ps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary mutation sequences ⇒ at every step the shard-indexed
    /// evaluator reproduces the full-scan reference bit-for-bit: the
    /// materialized stream, the exact hit/miss/dedup counters, and the
    /// top-k selection of every indexed heuristic under every filter
    /// variant.
    #[test]
    fn indexed_top_k_matches_full_scan_over_arbitrary_mutations(
        steps in prop::collection::vec(arb_step(), 1..8),
        remaining_energy in 1.0f64..2_000.0,
        deadline_slack in 100.0f64..4_000.0,
    ) {
        let s = scenario();
        let n = s.cluster().total_cores();
        let mut cores = vec![CoreState::new(); n];
        let mut dirty = DirtyCores::default();
        let mut now = 0.0f64;
        let mut next_id = 0usize;

        let sharded = CandidateEvaluator::default();
        prop_assert!(sharded.has_shard_index());
        let full = CandidateEvaluator::default().without_shard_index();

        let mut out: Vec<EvaluatedCandidate> = Vec::new();
        let mut classes: Vec<ClassCandidate> = Vec::new();

        for (step, (ops, dt, extra_mark)) in steps.iter().enumerate() {
            now += dt;
            for (pick, op) in ops {
                let core = pick % n;
                apply(&mut cores[core], op, next_id, now);
                next_id += 1;
                dirty.mark(core);
            }
            // Over-marking an untouched core must be harmless.
            dirty.mark(extra_mark % n);

            let view = SystemView::new(s.cluster(), s.table(), &cores, now, 1, 60)
                .with_dirty(&dirty);
            let task = probe_task(step, deadline_slack, now);

            // Materialized stream: bit-identical, and the per-call dedup
            // counter deltas arithmetically exact (cumulative totals
            // differ only because the sharded evaluator answers two
            // queries per step here — the class/skip arithmetic per
            // `evaluate_all` must match the reference exactly).
            let s0 = sharded.dedup_stats().expect("dedup on");
            let sk0 = sharded.dedup_skipped_evaluations();
            sharded.evaluate_all_into(&view, &task, &mut out);
            let s1 = sharded.dedup_stats().expect("dedup on");
            let f0 = full.dedup_stats().expect("dedup on");
            let fk0 = full.dedup_skipped_evaluations();
            let reference = full.evaluate_all(&view, &task);
            let f1 = full.dedup_stats().expect("dedup on");
            prop_assert_eq!(out.len(), n * NUM_PSTATES);
            prop_assert!(
                candidates_bit_eq(&out, &reference),
                "stream diverged at step {}", step
            );
            prop_assert_eq!(
                (s1.0 - s0.0, s1.1 - s0.1),
                (f1.0 - f0.0, f1.1 - f0.1),
                "class counters diverged at step {}", step
            );
            prop_assert_eq!(
                sharded.dedup_skipped_evaluations() - sk0,
                full.dedup_skipped_evaluations() - fk0,
                "skip counters diverged at step {}", step
            );

            // Indexed top-k: same choice as the full scan for every
            // indexed heuristic × filter variant.
            prop_assert!(sharded.evaluate_indexed_into(&view, &task, &mut classes));
            let ctx = FilterCtx { remaining_energy, budget: 2_000.0 };
            let en = EnergyFilter::paper();
            let rob = RobustnessFilter::paper();
            let variants: [&[&dyn Filter]; 3] =
                [&[], &[&en], &[&en, &rob]];
            let mut heuristics: [Box<dyn Heuristic>; 3] = [
                Box::new(ShortestQueue),
                Box::new(MinimumExpectedCompletionTime),
                Box::new(LightestLoad),
            ];
            for h in heuristics.iter_mut() {
                prop_assert!(h.supports_indexed());
                for filters in variants {
                    let want = full_scan_choice(
                        h.as_mut(), filters, &task, &view, &ctx, &reference,
                    );
                    let got = indexed_choice(
                        h.as_mut(), filters, &task, &view, &ctx, &classes,
                    );
                    prop_assert_eq!(
                        got, want,
                        "{} selection diverged at step {}", h.name(), step
                    );
                }
            }
        }
    }
}
